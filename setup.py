"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
only so that editable installs work in fully offline environments where the
``wheel`` package (required by PEP 660 editable installs) is unavailable:
``python setup.py develop`` and ``pip install -e . --no-build-isolation``
both fall back to it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the package ships inline type annotations; the marker makes
    # mypy in downstream projects consume them.
    package_data={"repro": ["py.typed"]},
    # The distribution kernel (repro.core.distributions) is array-backed.
    install_requires=["numpy>=1.22"],
)
