"""Figure 10(a): number of T-paths when varying the trajectory threshold τ."""

import pytest

from repro.evaluation.experiments import fig10a_tpath_counts

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig10a_tpath_counts(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return fig10a_tpath_counts(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig10a_tpath_counts_{dataset}.txt")
    totals = [row[1] for row in report.rows]
    # Larger tau requires more trajectory support, so T-path counts must not increase.
    assert totals == sorted(totals, reverse=True)
