"""Table 9: total budget-specific heuristic pre-computation for all destinations."""

import pytest

from repro.evaluation.experiments import table9_budget_precompute_total

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table09_budget_precompute_total(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return table9_budget_precompute_total(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"table09_budget_precompute_total_{dataset}.txt")
    for regime in ("peak", "off-peak"):
        storage_by_delta = {row[1]: row[3] for row in report.rows if row[0] == regime}
        assert storage_by_delta[30] >= storage_by_delta[240]
