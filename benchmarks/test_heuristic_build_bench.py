"""Micro-benchmark: vectorized Eq. 5 table builder vs the scalar reference.

The budget-specific heuristic build (Algorithms 3–4) is the paper's dominant
offline cost (Fig. 12, Table 9): per destination, a Bellman sweep evaluates
``U(v, x) = max_e Σ_c pdf(c) · U(z, x − c)`` for every vertex and budget
column.  This benchmark times exactly that workload on a synthetic city-scale
graph in the regime where it is expensive — a fine budget grid over
wide-spread (congestion-style) edge distributions, so rows store wide
``l``/``s`` bands instead of saturating immediately:

* a ~580-vertex arterial/residential grid city with 8–12-point edge cost
  distributions spanning 1–4x free-flow time, and
* a δ=20 grid with 150 budget columns, built once with the paper's fixed
  two sweeps and once to convergence (``sweeps=None``, where the dirty
  worklist re-sweeps only rows whose successors changed while the scalar
  reference must re-sweep everything).

The acceptance bar for the NumPy rewrite is a >= 3x speed-up over the seed's
cell-at-a-time implementation (preserved verbatim in
:mod:`repro.heuristics._scalar_reference`) on the convergent build; in
practice the margin is far larger.  Both builders must agree cell-for-cell
before being timed.  A report with the measured timings is written to
``results/``.
"""

from __future__ import annotations

import random
import time

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.pace_graph import PaceGraph
from repro.evaluation.reporting import render_report, write_report
from repro.heuristics._scalar_reference import build_heuristic_table_scalar
from repro.heuristics.binary import PaceBinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, build_heuristic_table
from repro.network.generators import GridCityConfig, generate_grid_city

#: Workload shape: the expensive corner of Fig. 12 (fine grid, wide bands).
GRID_ROWS = 24
GRID_COLS = 24
DELTA = 20.0
MAX_BUDGET = 3000.0
SPEEDUP_FLOOR = 3.0
AGREEMENT_TOLERANCE = 1e-7


def _city_scale_pace_graph() -> tuple[PaceGraph, int]:
    """A deterministic city-scale PACE graph with congestion-style edge costs."""
    network = generate_grid_city(GridCityConfig(rows=GRID_ROWS, cols=GRID_COLS, seed=11))
    rng = random.Random(99)
    weights = {}
    for edge in network.edges():
        base = max(5.0, edge.free_flow_time())
        support = rng.randint(8, 12)
        values = sorted({round(base * (1.0 + 3.0 * rng.random() ** 1.5), 1) for _ in range(support)})
        masses = [rng.random() + 0.1 for _ in values]
        total = sum(masses)
        weights[edge.edge_id] = Distribution(
            [(value, mass / total) for value, mass in zip(values, masses)]
        )
    destination = sorted(network.vertex_ids())[0]
    return PaceGraph(EdgeGraph(network, weights), tau=10), destination


def _assert_tables_agree(vectorized, scalar, network, delta: float, eta: int) -> None:
    worst = 0.0
    for vertex in network.vertex_ids():
        for column in range(0, eta + 1):
            budget = column * delta
            worst = max(worst, abs(vectorized.value(vertex, budget) - scalar.value(vertex, budget)))
    assert worst <= AGREEMENT_TOLERANCE, (
        f"vectorized and scalar Eq. 5 builders disagree by {worst:.2e} "
        f"(tolerance {AGREEMENT_TOLERANCE:.0e})"
    )


def _time(function, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_heuristic_build_bench():
    pace, destination = _city_scale_pace_graph()
    binary = PaceBinaryHeuristic(pace, destination)
    network = pace.network

    rows = []
    speedups = {}
    for label, sweeps in (("2 sweeps (paper default)", 2), ("converged (sweeps=None)", None)):
        config = BudgetHeuristicConfig(delta=DELTA, max_budget=MAX_BUDGET, sweeps=sweeps)
        vectorized = build_heuristic_table(pace, destination, config, binary=binary)
        scalar = build_heuristic_table_scalar(pace, destination, config, binary=binary)
        # Same workload, same inputs: the kernels must agree before being timed.
        _assert_tables_agree(vectorized, scalar, network, DELTA, config.eta)

        vector_seconds = _time(lambda c=config: build_heuristic_table(pace, destination, c, binary=binary))
        scalar_seconds = _time(
            lambda c=config: build_heuristic_table_scalar(pace, destination, c, binary=binary)
        )
        speedup = scalar_seconds / max(vector_seconds, 1e-12)
        speedups[sweeps] = (speedup, scalar_seconds, vector_seconds)
        rows.append(
            (
                label,
                round(scalar_seconds * 1000, 1),
                round(vector_seconds * 1000, 1),
                f"{speedup:.1f}x",
                vectorized.storage_cells(),
                vectorized.sweeps_performed,
            )
        )

    report = render_report(
        f"Heuristic-build micro-benchmark: Eq. 5 Bellman sweep, "
        f"{network.num_vertices} vertices, eta={BudgetHeuristicConfig(delta=DELTA, max_budget=MAX_BUDGET).eta}",
        ("build", "scalar (ms)", "vectorized (ms)", "speedup", "stored cells", "sweeps"),
        tuple(rows),
    )
    write_report(report, "heuristic_build_bench.txt")

    speedup, scalar_seconds, vector_seconds = speedups[None]
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized Eq. 5 builder is only {speedup:.2f}x faster than the scalar seed "
        f"(expected >= {SPEEDUP_FLOOR}x on the convergent build): "
        f"scalar {scalar_seconds * 1000:.1f} ms, vectorized {vector_seconds * 1000:.1f} ms"
    )
