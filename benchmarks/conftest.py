"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
heavy inputs — the two synthetic city datasets, their PACE models, V-path
closures, query workloads and per-method routing records — are built once per
session and shared, because the paper slices the same measurements along
several axes (figure by distance, figure by budget, peak vs. off-peak,
summary table).

Each benchmark prints the rows the corresponding paper figure/table reports
and also writes them to ``results/<experiment>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves a readable artefact behind.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import aalborg_like, xian_like
from repro.evaluation.experiments import ExperimentContext, ExperimentScale
from repro.evaluation.reporting import write_report

#: Datasets benchmarked; the Xi'an stand-in uses fewer trajectories to stay laptop-sized.
DATASET_NAMES = ("aalborg-like", "xian-like")


def _scale() -> ExperimentScale:
    return ExperimentScale(
        tau=30,
        taus=(15, 30, 50, 100),
        deltas=(30.0, 60.0, 120.0, 240.0),
        pairs_per_bucket=2,
        budget_fractions=(0.5, 0.75, 1.0, 1.25, 1.5),
        sample_destinations=2,
        max_explored=1000,
        accuracy_folds=3,
    )


@pytest.fixture(scope="session")
def contexts() -> dict[str, ExperimentContext]:
    """One fully built experiment context per dataset."""
    built: dict[str, ExperimentContext] = {}
    built["aalborg-like"] = ExperimentContext.build(aalborg_like(), _scale())
    built["xian-like"] = ExperimentContext.build(xian_like(scale=0.6), _scale())
    return built


@pytest.fixture(scope="session")
def report_cache() -> dict[str, object]:
    """Session cache so figure pairs sharing a computation (e.g. 10c/10d) do it once."""
    return {}


@pytest.fixture(scope="session")
def emit():
    """Print a report and persist it under results/."""

    def _emit(report, filename: str) -> None:
        write_report(report.render(), filename)

    return _emit
