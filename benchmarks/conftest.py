"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
heavy inputs — the two synthetic city datasets, their PACE models, V-path
closures, query workloads and per-method routing records — are built once per
session and shared, because the paper slices the same measurements along
several axes (figure by distance, figure by budget, peak vs. off-peak,
summary table).

Each benchmark prints the rows the corresponding paper figure/table reports
and also writes them to ``results/<experiment>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves a readable artefact behind.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.errors import DataError
from repro.datasets.synthetic import aalborg_like, xian_like
from repro.evaluation.experiments import ExperimentContext, ExperimentScale
from repro.evaluation.reporting import write_report
from repro.persistence.store import ArtifactStore
from repro.routing import DatasetRecipe, RouterSettings, RoutingQuery
from repro.routing.dijkstra import shortest_path_cost

#: Environment variable naming a pre-built city artifact store.  CI builds the
#: store once (``repro build-artifacts``), caches it, and shares it across the
#: serving benchmarks so no job pays the city re-mine twice.
ARTIFACT_STORE_ENV = "REPRO_ARTIFACT_STORE"

#: The city-scale offline build the serving benchmarks share.  The recipe and
#: settings must match a candidate store's manifest exactly — a store built
#: for different settings would serve differently-sized heuristic tables.
CITY_RECIPE = DatasetRecipe(dataset="aalborg-like", regime="peak", tau=30)
CITY_SETTINGS = RouterSettings(max_budget=2500.0, max_explored=1500, heuristic_sweeps=1)


def city_artifact_store(fallback_dir: Path):
    """The shared city-scale artifact store: reuse it or mine it now.

    Returns ``(store_root, mined_engine, mine_seconds)``.  When
    ``$REPRO_ARTIFACT_STORE`` (or ``fallback_dir``) already holds a valid
    store whose manifest matches :data:`CITY_RECIPE` / :data:`CITY_SETTINGS`,
    it is reused — ``mined_engine`` is ``None`` and ``mine_seconds`` comes
    from the manifest's build provenance.  Otherwise the city is mined fresh
    (timed), persisted to that location (populating the CI cache for the next
    job) and the freshly mined engine is returned for parity checks.
    """
    root = Path(os.environ.get(ARTIFACT_STORE_ENV) or (fallback_dir / "city-store"))
    try:
        manifest = ArtifactStore.open(root).manifest
        mine_seconds = manifest.provenance.get("mine_seconds")
        if (
            manifest.recipe == asdict(CITY_RECIPE)
            and manifest.settings == asdict(CITY_SETTINGS)
            and isinstance(mine_seconds, (int, float))
        ):
            return root, None, float(mine_seconds)
    except DataError:
        pass
    started = time.perf_counter()
    engine = CITY_RECIPE.build_engine(settings=CITY_SETTINGS)
    mine_seconds = time.perf_counter() - started
    engine.save_artifacts(root, provenance={"mine_seconds": round(mine_seconds, 3)})
    return root, engine, mine_seconds


@pytest.fixture(scope="session")
def city_store(tmp_path_factory):
    """Session-shared ``(store_root, mined_engine | None, mine_seconds)``."""
    return city_artifact_store(tmp_path_factory.mktemp("city-artifacts"))


def _make_city_batch(
    engine, *, source_stride: int, destination_stride: int, target: int, min_distance: float
):
    """A deterministic long-haul query batch over the engine's city network.

    Shared by the serving benchmarks (each picks its own strides/size so the
    two workloads differ, but the generation logic — endpoint selection by
    euclidean distance, budgets at 1.2x the expected shortest-path cost —
    stays in one place).
    """
    network = engine.pace_graph.network
    edge_graph = engine.pace_graph.edge_graph
    vertices = sorted(network.vertex_ids())
    queries: list[RoutingQuery] = []
    for source in vertices[::source_stride]:
        for destination in vertices[::destination_stride]:
            if source == destination:
                continue
            if network.euclidean_distance(source, destination) < min_distance:
                continue
            expected = shortest_path_cost(
                network, source, destination,
                lambda edge: edge_graph.expected_cost(edge.edge_id),
            )
            queries.append(RoutingQuery(source, destination, budget=expected * 1.2))
            if len(queries) >= target:
                return queries
    return queries


@pytest.fixture(scope="session")
def city_batch_factory():
    """The shared city-workload generator, exposed as a fixture (see above)."""
    return _make_city_batch

#: Datasets benchmarked; the Xi'an stand-in uses fewer trajectories to stay laptop-sized.
DATASET_NAMES = ("aalborg-like", "xian-like")


def _scale() -> ExperimentScale:
    return ExperimentScale(
        tau=30,
        taus=(15, 30, 50, 100),
        deltas=(30.0, 60.0, 120.0, 240.0),
        pairs_per_bucket=2,
        budget_fractions=(0.5, 0.75, 1.0, 1.25, 1.5),
        sample_destinations=2,
        max_explored=1000,
        accuracy_folds=3,
    )


@pytest.fixture(scope="session")
def contexts() -> dict[str, ExperimentContext]:
    """One fully built experiment context per dataset."""
    built: dict[str, ExperimentContext] = {}
    built["aalborg-like"] = ExperimentContext.build(aalborg_like(), _scale())
    built["xian-like"] = ExperimentContext.build(xian_like(scale=0.6), _scale())
    return built


@pytest.fixture(scope="session")
def report_cache() -> dict[str, object]:
    """Session cache so figure pairs sharing a computation (e.g. 10c/10d) do it once."""
    return {}


@pytest.fixture(scope="session")
def emit():
    """Print a report and persist it under results/."""

    def _emit(report, filename: str) -> None:
        write_report(report.render(), filename)

    return _emit
