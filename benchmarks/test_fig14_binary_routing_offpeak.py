"""Figure 14: stochastic routing with binary heuristics at off-peak hours."""

import statistics

import pytest

from repro.evaluation.experiments import (
    BINARY_ROUTING_METHODS,
    routing_report_by_budget,
    routing_report_by_distance,
)

DATASET_NAMES = ("aalborg-like", "xian-like")
REGIME = "off-peak"


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig14_binary_routing_offpeak(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        by_distance = routing_report_by_distance(
            context,
            BINARY_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 14 (a/b)",
            title=f"Binary-heuristic routing by distance ({dataset}, {REGIME})",
        )
        by_budget = routing_report_by_budget(
            context,
            BINARY_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 14 (c/d)",
            title=f"Binary-heuristic routing by budget ({dataset}, {REGIME})",
        )
        return by_distance, by_budget

    by_distance, by_budget = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(by_distance, f"fig14_binary_routing_offpeak_distance_{dataset}.txt")
    emit(by_budget, f"fig14_binary_routing_offpeak_budget_{dataset}.txt")

    def mean_runtime(method: str) -> float:
        records = context.routing_records(REGIME, method)
        return statistics.fmean(r.runtime_seconds for r in records)

    baseline = mean_runtime("T-None")
    for method in BINARY_ROUTING_METHODS[1:]:
        assert mean_runtime(method) <= baseline
