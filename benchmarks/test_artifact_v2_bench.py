"""Benchmark: columnar v2 artifacts vs v1 JSON, and band vs dense Bellman memory.

Two measurements pin the country-scale refactor on the city-scale build:

1. **Store format** — the same engine (index plus prewarmed Eq. 5 budget
   tables) is persisted once as a v1 JSON store and once as a v2 columnar
   store; the benchmark reports both sizes and cold-boot times and asserts
   the v2 store is strictly smaller.  (Parity and ``misses == 0`` for both
   formats are asserted in ``tests/test_artifact_v2.py``; this file only
   measures.)

2. **Bellman build memory** — one destination's budget table is built over a
   fine, country-style budget grid (wide ``l``/``s`` bands, the expensive
   corner of Fig. 12) twice: with the historical dense ``V × (η+1)`` U mirror
   and with the band-compressed mirror that replaced it.  ``tracemalloc``
   peaks must show the band build **measurably below** the dense baseline,
   and the two tables must agree cell for cell (the dense path is itself
   pinned to the scalar oracle by ``tests/test_heuristic_reference.py``, so
   equality here chains band -> dense -> scalar).

A combined report is written to ``results/artifact_v2_bench.txt``.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.evaluation.experiments import ExperimentScale
from repro.evaluation.reporting import render_report, write_report
from repro.heuristics.budget import BudgetHeuristicConfig, build_heuristic_table
from repro.routing import RoutingEngine

#: Destinations whose budget tables make the stores' heuristic payload real.
PREWARM_DESTINATIONS = 4
#: The country-scale stress preset supplies the memory-comparison grid: its
#: fine δ over the city store's budgets yields η = 250 — wide l/s bands, the
#: regime the band-compressed mirror exists for.  Running the preset here (on
#: the cached city graph) keeps it exercised without a minutes-long
#: country-like mine in CI; the full run is the same code path at larger V.
COUNTRY = ExperimentScale.country()
#: The v2 store must undercut the v1 store by at least this factor.
SIZE_RATIO_CEILING = 0.9


def _store_bytes(root):
    return sum(path.stat().st_size for path in root.iterdir() if path.is_file())


def _best_of(function, repeats: int = 3) -> tuple[float, object]:
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def _traced_build(pace, destination, config, mirror) -> tuple[object, int]:
    tracemalloc.start()
    try:
        table = build_heuristic_table(pace, destination, config, mirror=mirror)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return table, peak


def test_columnar_store_and_band_memory(city_store, tmp_path):
    store_root, mined, _ = city_store
    origin = mined if mined is not None else RoutingEngine.from_artifacts(store_root)
    vertices = sorted(origin.pace_graph.network.vertex_ids())
    destinations = vertices[:: max(1, len(vertices) // PREWARM_DESTINATIONS)][
        :PREWARM_DESTINATIONS
    ]
    origin.prewarm("T-BS-60", destinations)

    # ---------------------------------------------------------------- #
    # 1. Store format: size and cold-boot time, v1 vs v2
    # ---------------------------------------------------------------- #
    v1_root, v2_root = tmp_path / "v1", tmp_path / "v2"
    origin.save_artifacts(v1_root, format_version=1)
    origin.save_artifacts(v2_root, format_version=2)
    v1_bytes, v2_bytes = _store_bytes(v1_root), _store_bytes(v2_root)
    ratio = v2_bytes / v1_bytes
    v1_boot, _ = _best_of(lambda: RoutingEngine.from_artifacts(v1_root))
    v2_boot, booted = _best_of(lambda: RoutingEngine.from_artifacts(v2_root))
    assert booted.stats().cache_misses == 0

    # ---------------------------------------------------------------- #
    # 2. Bellman build memory: band-compressed vs dense U mirror
    # ---------------------------------------------------------------- #
    pace = origin.pace_graph
    destination = destinations[0]
    config = BudgetHeuristicConfig(
        delta=COUNTRY.delta,
        max_budget=origin.settings.max_budget,
        sweeps=COUNTRY.heuristic_sweeps,
    )
    band_table, band_peak = _traced_build(pace, destination, config, "band")
    dense_table, dense_peak = _traced_build(pace, destination, config, "dense")
    assert band_table.rows.keys() == dense_table.rows.keys()
    for vertex, row in band_table.rows.items():
        assert row == dense_table.rows[vertex], f"mirrors disagree at vertex {vertex}"
    dense_matrix_bytes = len(vertices) * (config.eta + 1) * 8

    report = render_report(
        "Columnar v2 artifacts and band-compressed Bellman build: aalborg-like",
        ("metric", "value"),
        [
            ("v1 store (KB)", round(v1_bytes / 1024.0, 1)),
            ("v2 store (KB)", round(v2_bytes / 1024.0, 1)),
            ("v2 / v1 size", round(ratio, 3)),
            ("v1 cold boot (s)", round(v1_boot, 3)),
            ("v2 cold boot (s)", round(v2_boot, 3)),
            ("prewarmed budget tables", len(destinations)),
            ("memory grid (delta / eta)", f"{COUNTRY.delta:g} / {config.eta}"),
            ("dense-mirror build peak (KB)", round(dense_peak / 1024.0, 1)),
            ("band-mirror build peak (KB)", round(band_peak / 1024.0, 1)),
            ("band / dense peak", round(band_peak / dense_peak, 3)),
            ("dense U matrix alone (KB)", round(dense_matrix_bytes / 1024.0, 1)),
            ("stored band cells", band_table.storage_cells()),
        ],
    )
    write_report(report, "artifact_v2_bench.txt")

    assert ratio <= SIZE_RATIO_CEILING, (
        f"v2 store ({v2_bytes} bytes) is {ratio:.2f}x the v1 store ({v1_bytes} "
        f"bytes); the columnar format must stay below {SIZE_RATIO_CEILING:.0%}"
    )
    assert band_peak < dense_peak, (
        f"band-compressed build peaked at {band_peak} bytes, not below the "
        f"dense-mirror baseline's {dense_peak} bytes"
    )
