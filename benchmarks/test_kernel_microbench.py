"""Micro-benchmark: vectorized distribution kernel vs the scalar reference.

The routing algorithms bottom out in chained ``convolve`` (candidate
extension) and ``stochastically_dominates`` (pruning) calls, so this
benchmark times exactly that workload on both kernels:

* build a pool of random distributions on a 5-second resolution grid,
* run convolution chains bounded by ``max_support`` (the router's usage), and
* run all-pairs dominance checks over the chain results.

The acceptance bar for the NumPy rewrite is a >= 3x speed-up over the seed's
dict/tuple-scan implementation (preserved verbatim in
:mod:`repro.core._scalar_reference`); in practice the margin is far larger.
A report with the measured timings is written to ``results/``.
"""

from __future__ import annotations

import random
import time

from repro.core._scalar_reference import ScalarDistribution
from repro.core.distributions import Distribution
from repro.evaluation.reporting import render_report, write_report

#: Workload shape: convolution chains as the V-path router produces them.
POOL_SIZE = 24
SUPPORT_SIZE = 48
CHAIN_LENGTH = 12
MAX_SUPPORT = 128
SPEEDUP_FLOOR = 3.0


def _random_pairs(rng: random.Random) -> list[tuple[float, float]]:
    values = rng.sample(range(0, 4000, 5), SUPPORT_SIZE)
    weights = [rng.random() + 0.05 for _ in values]
    total = sum(weights)
    return [(float(v), w / total) for v, w in zip(values, weights)]


def _workload(kernel, pool) -> float:
    """Run the chained convolve + dominance workload; return a checksum."""
    chained = []
    for start in range(0, POOL_SIZE, CHAIN_LENGTH):
        acc = pool[start]
        for other in pool[start + 1 : start + CHAIN_LENGTH]:
            acc = acc.convolve(other, max_support=MAX_SUPPORT)
        chained.append(acc)
    checksum = sum(d.expectation() for d in chained)
    dominance_hits = 0
    for a in chained:
        for b in pool:
            if a.stochastically_dominates(b):
                dominance_hits += 1
            if b.stochastically_dominates(a):
                dominance_hits += 1
    return checksum + dominance_hits


def _time(function, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_microbench():
    rng = random.Random(1234)
    pair_lists = [_random_pairs(rng) for _ in range(POOL_SIZE)]
    vector_pool = [Distribution.from_pairs(pairs) for pairs in pair_lists]
    scalar_pool = [ScalarDistribution(pairs) for pairs in pair_lists]

    # Same workload, same inputs: the kernels must agree before being timed.
    vector_checksum = _workload(Distribution, vector_pool)
    scalar_checksum = _workload(ScalarDistribution, scalar_pool)
    assert abs(vector_checksum - scalar_checksum) <= 1e-6 * max(abs(scalar_checksum), 1.0)

    vector_seconds = _time(_workload, Distribution, vector_pool)
    scalar_seconds = _time(_workload, ScalarDistribution, scalar_pool)
    speedup = scalar_seconds / max(vector_seconds, 1e-12)

    report = render_report(
        "Kernel micro-benchmark: chained convolve + stochastic dominance",
        ("kernel", "best-of-3 (ms)", "speedup"),
        (
            ("scalar (seed)", round(scalar_seconds * 1000, 2), "1.0x"),
            ("vectorized (NumPy)", round(vector_seconds * 1000, 2), f"{speedup:.1f}x"),
        ),
    )
    write_report(report, "kernel_microbench.txt")

    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized kernel is only {speedup:.2f}x faster than the scalar seed "
        f"(expected >= {SPEEDUP_FLOOR}x): scalar {scalar_seconds * 1000:.1f} ms, "
        f"vectorized {vector_seconds * 1000:.1f} ms"
    )
