"""Benchmark: boot peak memory and time-to-first-route, eager vs lazy residency.

Country-scale stores hold far more heuristic mass than any one serving
process touches.  ``RoutingEngine.from_artifacts(prewarm="none")`` exists so
boot cost scales with the *touched* artifacts, not the store size: the index
loads, every heuristic table stays on disk, and tables fault in on first
use.  This benchmark pins that contract on the shared ``aalborg-like`` city
store after packing it with per-destination tables:

1. obtain the shared city artifact store and densify it (budget tables plus
   binary getMin maps for a spread of destinations, re-saved into the store),
2. measure **boot peak memory** with tracemalloc for an eager ``"all"`` boot
   and a lazy ``"none"`` boot and assert lazy <= 25% of eager,
3. measure wall-clock and assert a lazy **boot + first route** completes
   before a bare eager boot does,
4. prove the lazy engine is the *same* engine: a mixed-method batch answers
   identically to the eager boot, with the resident tier holding only the
   touched entries (resident counters, not just tracemalloc).

A report with the measured numbers is written to
``results/boot_memory_bench.txt``.
"""

from __future__ import annotations

import gc
import time
import tracemalloc

from repro.evaluation.reporting import render_report, write_report
from repro.routing import RoutingEngine

#: Lazy boot peak must stay under this fraction of the eager boot peak.
LAZY_PEAK_CEILING = 0.25
#: The methods the serving batch exercises (and lazily faults tables for).
METHODS = ("T-B-P", "T-BS-10")
#: Everything persisted into the store: the served methods plus the V-graph
#: tables no query here touches — a lazy boot must not pay for them.
DENSIFY_METHODS = ("T-B-P", "T-BS-10", "V-BS-10")
QUERY_TARGET = 10
MIN_PAIR_DISTANCE = 1100.0


def _boot_peak(store_root, **kwargs) -> tuple[int, RoutingEngine]:
    """Peak traced bytes during one cold ``from_artifacts`` boot."""
    gc.collect()
    tracemalloc.start()
    try:
        engine = RoutingEngine.from_artifacts(store_root, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, engine


def _timed(function) -> tuple[float, object]:
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def test_lazy_boot_memory_and_first_route(city_store, city_batch_factory):
    store_root, mined, mine_seconds = city_store

    # 1. Densify the store to the country-scale shape — heuristic mass
    #    dominating the index: fine-δ tables (both graphs) and getMin maps
    #    for *every* vertex, even though the batch will touch a handful.
    origin = mined if mined is not None else RoutingEngine.from_artifacts(store_root)
    queries = city_batch_factory(
        origin,
        source_stride=5,
        destination_stride=7,
        target=QUERY_TARGET,
        min_distance=MIN_PAIR_DISTANCE,
    )
    assert len(queries) >= QUERY_TARGET // 2, "workload generation came up short"
    destinations = sorted({query.destination for query in queries})
    every_vertex = sorted(origin.pace_graph.network.vertex_ids())
    for method in DENSIFY_METHODS:
        origin.prewarm(method, every_vertex)
    origin.save_artifacts(store_root, provenance={"mine_seconds": round(mine_seconds, 3)})
    expected = {method: origin.route_many(queries, method=method) for method in METHODS}
    entry_count = len(origin.heuristic_cache.snapshot())
    del origin
    first = queries[0]

    # 2. Boot peaks (tracemalloc traces the Python heap; the streaming
    #    reader's mmap pages are page cache, which is exactly the point).
    eager_peak, eager = _boot_peak(store_root)
    eager_resident = eager.heuristic_cache.counters().resident_bytes
    del eager
    lazy_peak, lazy = _boot_peak(store_root, prewarm="none")
    assert lazy.heuristic_cache.counters().entries == 0

    # 3. Wall-clock: a lazy boot answers its first query before an eager
    #    boot has even finished loading tables it may never serve.
    del lazy
    gc.collect()
    eager_boot_seconds, eager = _timed(lambda: RoutingEngine.from_artifacts(store_root))

    def lazy_first_route():
        engine = RoutingEngine.from_artifacts(store_root, prewarm="none")
        engine.route(first, method=METHODS[0])
        return engine

    lazy_first_seconds, lazy = _timed(lazy_first_route)

    # 4. Differential serving + residency counters: identical answers, and
    #    the resident tier holds only what the batch touched.
    for method in METHODS:
        actual = lazy.route_many(queries, method=method)
        for a, b in zip(expected[method], actual):
            assert a.path == b.path
            assert a.probability == b.probability
            assert a.distribution == b.distribution
    counters = lazy.heuristic_cache.counters()
    assert counters.misses == 0, "every table was persisted; nothing may rebuild"
    assert counters.faults == counters.entries == len(destinations) * len(METHODS)
    assert 0 < counters.resident_bytes <= eager_resident

    ratio = lazy_peak / eager_peak if eager_peak else float("inf")
    report = render_report(
        "Boot memory and time-to-first-route: aalborg-like store",
        ("metric", "value"),
        [
            ("heuristic entries in store", entry_count),
            ("eager boot peak (MB)", round(eager_peak / 1e6, 2)),
            ("lazy boot peak (MB)", round(lazy_peak / 1e6, 2)),
            ("lazy/eager peak ratio", round(ratio, 3)),
            ("eager boot (s)", round(eager_boot_seconds, 3)),
            ("lazy boot + first route (s)", round(lazy_first_seconds, 3)),
            ("eager resident bytes", eager_resident),
            ("lazy resident bytes after batch", counters.resident_bytes),
            ("lazy faults after batch", counters.faults),
        ],
    )
    write_report(report, "boot_memory_bench.txt")

    assert lazy_peak <= LAZY_PEAK_CEILING * eager_peak, (
        f"lazy boot peak {lazy_peak / 1e6:.2f} MB is {ratio:.0%} of the eager "
        f"{eager_peak / 1e6:.2f} MB peak; the ceiling is {LAZY_PEAK_CEILING:.0%}"
    )
    assert lazy_first_seconds < eager_boot_seconds, (
        f"lazy boot + first route ({lazy_first_seconds:.3f}s) should beat a bare "
        f"eager boot ({eager_boot_seconds:.3f}s)"
    )
