"""Table 8: total binary-heuristic pre-computation cost for all destinations."""

import pytest

from repro.evaluation.experiments import table8_binary_precompute_total

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table08_binary_precompute_total(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return table8_binary_precompute_total(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"table08_binary_precompute_total_{dataset}.txt")
    # Both regimes are covered and T-B-EU stays the cheapest variant within each regime.
    for regime in ("peak", "off-peak"):
        rows = {row[1]: row[2] for row in report.rows if row[0] == regime}
        assert set(rows) == {"T-B-EU", "T-B-E", "T-B-P"}
        assert rows["T-B-EU"] <= rows["T-B-P"] + 1e-9
