"""Figure 16: stochastic routing with budget-specific heuristics (δ sweep) at off-peak hours."""

import pytest

from repro.evaluation.experiments import (
    BUDGET_ROUTING_METHODS,
    routing_report_by_budget,
    routing_report_by_distance,
)

DATASET_NAMES = ("aalborg-like", "xian-like")
REGIME = "off-peak"


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig16_budget_routing_offpeak(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        by_distance = routing_report_by_distance(
            context,
            BUDGET_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 16 (a/b)",
            title=f"Budget-specific routing by distance ({dataset}, {REGIME})",
        )
        by_budget = routing_report_by_budget(
            context,
            BUDGET_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 16 (c/d)",
            title=f"Budget-specific routing by budget ({dataset}, {REGIME})",
        )
        return by_distance, by_budget

    by_distance, by_budget = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(by_distance, f"fig16_budget_routing_offpeak_distance_{dataset}.txt")
    emit(by_budget, f"fig16_budget_routing_offpeak_budget_{dataset}.txt")
    for method in BUDGET_ROUTING_METHODS:
        assert len(context.routing_records(REGIME, method)) == len(context.workloads[REGIME])
