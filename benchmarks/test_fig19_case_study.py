"""Figure 19: case study — stochastic route vs. an expected-time ("commercial") route."""

import pytest

from repro.evaluation.experiments import fig19_case_study

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig19_case_study(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return fig19_case_study(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig19_case_study_{dataset}.txt")
    for row in report.rows:
        stochastic_probability, baseline_probability = row[2], row[3]
        assert stochastic_probability >= baseline_probability - 1e-6
