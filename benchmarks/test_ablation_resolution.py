"""Ablation: histogram resolution used when estimating distributions.

The reproduction bins travel times onto a resolution grid when estimating edge
and T-path distributions; this ablation sweeps the bin width and reports the
held-out accuracy and the index size, exposing the accuracy/space trade-off.
"""

import statistics

import pytest

from repro.core.distributions import Distribution
from repro.evaluation.accuracy import path_groups
from repro.evaluation.experiments import ExperimentReport
from repro.evaluation.reporting import write_report
from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph
from repro.trajectories.splits import k_fold_split

DATASET_NAMES = ("aalborg-like",)
RESOLUTIONS = (2.5, 5.0, 10.0, 20.0)


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_ablation_resolution(benchmark, contexts, dataset):
    context = contexts[dataset]
    network = context.dataset.network
    trajectories = list(context.dataset.peak)
    fold = k_fold_split(trajectories, folds=3, seed=13)[0]

    def run():
        rows = []
        for resolution in RESOLUTIONS:
            config = TPathMinerConfig(tau=30, max_cardinality=4, resolution=resolution)
            pace = build_pace_graph(network, list(fold.train), config)
            divergences = []
            outcome_cells = sum(len(t.joint) for t in pace.tpaths())
            for edges, group in sorted(path_groups(list(fold.test), min_support=5).items())[:30]:
                if len(edges) < 2:
                    continue
                path = network.path_from_edge_ids(edges)
                estimated = pace.path_cost_distribution(path, max_support=64)
                truth = Distribution.from_samples(
                    [t.total_cost for t in group], resolution=resolution
                )
                divergences.append(truth.kl_divergence(estimated))
            rows.append(
                (
                    resolution,
                    round(statistics.fmean(divergences), 4) if divergences else float("nan"),
                    pace.num_tpaths,
                    outcome_cells,
                )
            )
        return ExperimentReport(
            experiment="Ablation",
            title=f"Histogram resolution sweep ({dataset}, peak)",
            headers=("resolution (s)", "mean KL", "#T-paths", "stored joint outcomes"),
            rows=tuple(rows),
            notes="Coarser bins shrink the stored joints; the KL is measured on the matching grid.",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(report.render(), f"ablation_resolution_{dataset}.txt")
    cells = [row[3] for row in report.rows]
    assert cells[0] >= cells[-1]
