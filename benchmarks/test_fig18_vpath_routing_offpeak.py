"""Figure 18: V-path based stochastic routing at off-peak hours."""

import statistics

import pytest

from repro.evaluation.experiments import (
    VPATH_ROUTING_METHODS,
    routing_report_by_budget,
    routing_report_by_distance,
)

DATASET_NAMES = ("aalborg-like", "xian-like")
REGIME = "off-peak"


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig18_vpath_routing_offpeak(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        by_distance = routing_report_by_distance(
            context,
            VPATH_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 18 (a/b)",
            title=f"V-path routing by distance ({dataset}, {REGIME})",
        )
        by_budget = routing_report_by_budget(
            context,
            VPATH_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 18 (c/d)",
            title=f"V-path routing by budget ({dataset}, {REGIME})",
        )
        return by_distance, by_budget

    by_distance, by_budget = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(by_distance, f"fig18_vpath_routing_offpeak_distance_{dataset}.txt")
    emit(by_budget, f"fig18_vpath_routing_offpeak_budget_{dataset}.txt")

    def mean_runtime(method: str) -> float:
        records = context.routing_records(REGIME, method)
        return statistics.fmean(r.runtime_seconds for r in records)

    assert mean_runtime("V-BS-60") <= mean_runtime("T-B-P") * 1.25
