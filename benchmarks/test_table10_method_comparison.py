"""Table 10: storage, pre-computation and routing runtime of all heuristic methods."""

import pytest

from repro.evaluation.experiments import table10_method_comparison

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table10_method_comparison(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return table10_method_comparison(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"table10_method_comparison_{dataset}.txt")

    routing = {row[0]: row[3] for row in report.rows}
    storage = {row[0]: row[1] for row in report.rows}
    # Paper's qualitative ordering: the budget-specific V-path method routes fastest,
    # while needing at least as much storage as the binary heuristics (small slack
    # absorbs per-run noise on the laptop-scale workload).
    assert routing["V-BS-60"] <= routing["T-B-EU"] * 1.1
    assert routing["V-BS-60"] <= routing["T-B-P"] * 1.25
    assert storage["T-BS-60"] >= storage["T-B-P"]
