"""Figure 17: V-path based stochastic routing at peak hours.

Compares V-None, T-B-P vs V-B-P and T-BS-60 vs V-BS-60; the V-path variants
should be at least as fast as their T-path counterparts.
"""

import statistics

import pytest

from repro.evaluation.experiments import (
    VPATH_ROUTING_METHODS,
    routing_report_by_budget,
    routing_report_by_distance,
)

DATASET_NAMES = ("aalborg-like", "xian-like")
REGIME = "peak"


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig17_vpath_routing_peak(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        by_distance = routing_report_by_distance(
            context,
            VPATH_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 17 (a/b)",
            title=f"V-path routing by distance ({dataset}, {REGIME})",
        )
        by_budget = routing_report_by_budget(
            context,
            VPATH_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 17 (c/d)",
            title=f"V-path routing by budget ({dataset}, {REGIME})",
        )
        return by_distance, by_budget

    by_distance, by_budget = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(by_distance, f"fig17_vpath_routing_peak_distance_{dataset}.txt")
    emit(by_budget, f"fig17_vpath_routing_peak_budget_{dataset}.txt")

    def mean_runtime(method: str) -> float:
        records = context.routing_records(REGIME, method)
        return statistics.fmean(r.runtime_seconds for r in records)

    # The headline result (Table 10 / Fig 17): V-BS-60 is the fastest method overall,
    # and V-path routing does not lose to its T-path counterpart (small slack absorbs
    # per-run noise on the laptop-scale workload).
    assert mean_runtime("V-BS-60") <= mean_runtime("T-BS-60") * 1.5
    assert mean_runtime("V-BS-60") <= mean_runtime("T-B-P") * 1.25
