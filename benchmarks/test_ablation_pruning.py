"""Ablation: effect of stochastic-dominance pruning in V-path routing.

Runs the same workload with the pruner enabled and disabled (everything else
identical) and reports candidate-path counts and runtimes — isolating the
contribution of the second speed-up technique of the paper.
"""

import statistics

import pytest

from repro.evaluation.experiments import ExperimentReport
from repro.evaluation.reporting import write_report
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig

DATASET_NAMES = ("aalborg-like", "xian-like")
REGIME = "peak"


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_ablation_dominance_pruning(benchmark, contexts, dataset):
    context = contexts[dataset]
    updated = context.updated_graphs[REGIME]
    queries = [wq.query for wq in context.workloads[REGIME].queries]

    def run():
        rows = []
        for use_dominance in (True, False):
            router = VPathRouter(
                updated,
                None,
                method_name="V-None",
                config=VPathRouterConfig(
                    max_support=context.scale.max_support,
                    max_explored=context.scale.max_explored,
                    use_dominance=use_dominance,
                ),
            )
            results = [router.route(query) for query in queries]
            rows.append(
                (
                    "with dominance" if use_dominance else "without dominance",
                    round(statistics.fmean(r.explored for r in results), 1),
                    round(statistics.fmean(r.runtime_seconds for r in results), 4),
                    round(statistics.fmean(r.probability for r in results), 4),
                )
            )
        return ExperimentReport(
            experiment="Ablation",
            title=f"Stochastic-dominance pruning in V-path routing ({dataset}, {REGIME})",
            headers=("configuration", "mean explored", "mean runtime (s)", "mean probability"),
            rows=tuple(rows),
            notes=(
                "Pruning pops fewer candidates and never hurts result quality; the pairwise "
                "dominance checks themselves cost CPU time in pure Python, so its value shows "
                "when the un-pruned search hits the exploration cap."
            ),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(report.render(), f"ablation_pruning_{dataset}.txt")
    with_pruning, without_pruning = report.rows
    # Fewer candidates are popped with pruning, and the answers are never worse.
    assert with_pruning[1] <= without_pruning[1] * 1.05
    assert with_pruning[3] >= without_pruning[3] - 0.02
