"""Ablation: PACE assembly (dependency-aware) vs. EDGE convolution (independence).

Quantifies, on held-out trajectories, how much accuracy the path-centric joint
distributions buy over the edge-centric independence assumption — the premise
of the whole paper (and the reason T-paths and V-paths exist at all).
"""

import statistics

import pytest

from repro.core.distributions import Distribution
from repro.evaluation.accuracy import path_groups
from repro.evaluation.experiments import ExperimentReport
from repro.evaluation.reporting import write_report
from repro.tpaths.extraction import TPathMinerConfig, build_edge_graph, build_pace_graph
from repro.trajectories.splits import k_fold_split

DATASET_NAMES = ("aalborg-like", "xian-like")
RESOLUTION = 5.0


def _mean_kl(network, train, test, *, use_pace: bool, tau: int) -> float:
    config = TPathMinerConfig(tau=tau, max_cardinality=4, resolution=RESOLUTION)
    if use_pace:
        graph = build_pace_graph(network, train, config)
    else:
        graph = build_edge_graph(network, train, config)
    divergences = []
    for edges, group in sorted(path_groups(test, min_support=5).items())[:40]:
        if len(edges) < 2:
            continue
        path = network.path_from_edge_ids(edges)
        estimated = graph.path_cost_distribution(path, max_support=64)
        truth = Distribution.from_samples([t.total_cost for t in group], resolution=RESOLUTION)
        divergences.append(truth.kl_divergence(estimated))
    return statistics.fmean(divergences) if divergences else float("nan")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_ablation_assembly_vs_convolution(benchmark, contexts, dataset):
    context = contexts[dataset]
    network = context.dataset.network
    trajectories = list(context.dataset.peak)
    fold = k_fold_split(trajectories, folds=3, seed=7)[0]

    def run():
        rows = []
        for tau in (15, 30):
            pace_kl = _mean_kl(network, list(fold.train), list(fold.test), use_pace=True, tau=tau)
            edge_kl = _mean_kl(network, list(fold.train), list(fold.test), use_pace=False, tau=tau)
            rows.append((tau, round(pace_kl, 4), round(edge_kl, 4)))
        return ExperimentReport(
            experiment="Ablation",
            title=f"PACE assembly vs EDGE convolution accuracy ({dataset})",
            headers=("tau", "KL PACE", "KL EDGE (independence)"),
            rows=tuple(rows),
            notes="The dependency-aware PACE estimate should be at least as accurate (lower KL).",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(report.render(), f"ablation_assembly_{dataset}.txt")
    # At very small tau the joints are estimated from few trips and can be noisy (the same
    # effect as the paper's Fig. 10b), so the claim is checked at the default threshold.
    default_tau_row = [row for row in report.rows if row[0] == 30][0]
    _, pace_kl, edge_kl = default_tau_row
    assert pace_kl <= edge_kl + 0.05
