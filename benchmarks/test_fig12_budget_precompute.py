"""Figure 12: offline construction cost of the budget-specific heuristic tables per δ."""

import pytest

from repro.evaluation.experiments import fig12_budget_precompute

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig12_budget_precompute(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return fig12_budget_precompute(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig12_budget_precompute_{dataset}.txt")
    storages = [row[2] for row in report.rows]  # ordered by increasing delta
    # Smaller delta -> more columns -> larger tables (the paper's Fig. 12 shape).
    assert storages[0] >= storages[-1]
