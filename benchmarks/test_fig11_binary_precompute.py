"""Figure 11: offline construction cost of the binary heuristics (per destination)."""

import pytest

from repro.evaluation.experiments import fig11_binary_precompute

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig11_binary_precompute(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return fig11_binary_precompute(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig11_binary_precompute_{dataset}.txt")
    runtimes = {row[0]: row[1] for row in report.rows}
    storages = {row[0]: row[2] for row in report.rows}
    # The Euclidean heuristic needs no graph search, so it is never slower than T-B-P,
    # and all variants store the same per-vertex getMin values.
    assert runtimes["T-B-EU"] <= runtimes["T-B-P"] + 1e-6
    assert len(set(storages.values())) == 1
