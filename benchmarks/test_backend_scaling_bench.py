"""Benchmark: multiprocess serving throughput vs serial and thread fan-out.

The ROADMAP's top serving item is process-based parallelism for
``route_many``: the best-first search loops are pure Python, so threads are
GIL-bound and cannot scale them — worker *processes* can.  This benchmark
drives the full serving path on a city-scale batch:

1. a parent engine is booted from the shared city **artifact store**
   (``aalborg-like``; mined on the spot only when no cached store exists —
   see :func:`benchmarks.conftest.city_artifact_store`), its hot-destination
   heuristics are prewarmed and saved to a bundle,
2. a :class:`~repro.routing.ProcessBackend` pool initialises each worker from
   the engine's spec — an :class:`~repro.routing.ArtifactRef`, so workers
   cold-boot from disk instead of re-mining — plus that *bundle*: the
   cross-process prewarm path, keyed and verified by the graph content
   fingerprints, so workers run zero Bellman builds — and
3. the same destination-grouped batch is timed on the serial backend, the
   thread backend (for comparison; expected ≈ 1x) and the steady-state
   process pool (warm workers, as in a serving deployment).

Acceptance bar: the process backend must be >= 2x faster than serial
wall-clock on the batch, with results identical to serial query for query.
The timing (and the bar) only runs with >= 4 usable cores — on smaller
machines the GIL has nothing to scale across and the numbers would be noise —
but result parity is asserted wherever at least 2 cores exist (and again, at
unit scale, in ``tests/test_backends.py``).  A report with the measured
timings is written to ``results/``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.evaluation.reporting import render_report, write_report
from repro.routing import (
    ProcessBackend,
    RoutingEngine,
    ThreadBackend,
)

WORKERS = 4
SPEEDUP_FLOOR = 2.0
#: The search method timed: heuristic-guided but pure-Python (GIL-bound).
METHOD = "T-B-P"
QUERY_TARGET = 32
MIN_PAIR_DISTANCE = 1100.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _best_of(function, repeats: int = 2) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (noisy-neighbour tolerance on CI)."""
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def _build_engine(city_store):
    """The parent engine, always booted from the shared artifact store.

    Even on a fresh mine the store was just saved, and booting from it (not
    reusing the mined engine) gives the parent an :class:`ArtifactRef` spec —
    so the pool workers cold-boot from disk instead of each re-mining the
    city, and cache-hit and fresh runs measure the same configuration.
    """
    root, _, _ = city_store
    return RoutingEngine.from_artifacts(root)


def _assert_parity(serial, other, queries) -> None:
    for query, a, b in zip(queries, serial, other):
        assert b.query is query
        assert b.probability == pytest.approx(a.probability, abs=1e-12)
        assert (a.path is None) == (b.path is None)
        if a.path is not None:
            assert b.path.edges == a.path.edges


@pytest.mark.skipif(
    _usable_cpus() < 2,
    reason="process fan-out needs at least 2 usable cores to be meaningful",
)
def test_process_backend_scales_route_many(tmp_path, city_store, city_batch_factory):
    cpus = _usable_cpus()
    engine = _build_engine(city_store)
    queries = city_batch_factory(
        engine,
        source_stride=5,
        destination_stride=6,
        target=QUERY_TARGET,
        min_distance=MIN_PAIR_DISTANCE,
    )
    assert len(queries) >= QUERY_TARGET // 2, "workload generation came up short"
    destinations = sorted({query.destination for query in queries})

    # Offline investment once, shared with every worker via the bundle.
    engine.prewarm(METHOD, destinations)
    bundle = tmp_path / "heuristics.json"
    saved = engine.save_heuristics(bundle)
    assert saved >= len(destinations)

    serial_seconds, serial_results = _best_of(
        lambda: engine.route_many(queries, method=METHOD)
    )

    started = time.perf_counter()
    thread_results = engine.route_many(
        queries, method=METHOD, backend=ThreadBackend(workers=WORKERS)
    )
    thread_seconds = time.perf_counter() - started
    _assert_parity(serial_results, thread_results, queries)

    with ProcessBackend(workers=WORKERS, heuristics_path=bundle) as backend:
        started = time.perf_counter()
        warm_up = engine.route_many(queries[:1], method=METHOD, backend=backend)
        warmup_seconds = time.perf_counter() - started
        _assert_parity(serial_results[:1], warm_up, queries[:1])

        # Best-of-3 on the measurement that gates CI: hosted runners are
        # shared, and one noisy-neighbour window must not fail the build.
        process_seconds, process_results = _best_of(
            lambda: engine.route_many(queries, method=METHOD, backend=backend), repeats=3
        )
    _assert_parity(serial_results, process_results, queries)

    thread_speedup = serial_seconds / thread_seconds if thread_seconds else float("inf")
    process_speedup = serial_seconds / process_seconds if process_seconds else float("inf")
    rows = [
        ("serial", round(serial_seconds, 2), 1.0),
        (f"thread x{WORKERS}", round(thread_seconds, 2), round(thread_speedup, 2)),
        (f"process x{WORKERS} (steady state)", round(process_seconds, 2), round(process_speedup, 2)),
    ]
    report = render_report(
        f"Backend scaling: {len(queries)} {METHOD} queries, "
        f"{len(destinations)} destinations, aalborg-like ({cpus} cores)",
        ("backend", "wall (s)", "speedup"),
        rows,
    )
    report += (
        f"\nworker warm-up (spec rebuild + bundle prewarm, once per pool): "
        f"{warmup_seconds:.1f}s; bundle entries: {saved}\n"
    )
    write_report(report, "backend_scaling.txt")

    if cpus >= WORKERS:
        assert process_speedup >= SPEEDUP_FLOOR, (
            f"ProcessBackend speedup {process_speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor on {cpus} cores "
            f"(serial {serial_seconds:.2f}s vs process {process_seconds:.2f}s)"
        )
