"""Benchmark: cold-starting an engine from artifacts vs re-mining the city.

The artifact store exists so deployments pay the offline pipeline exactly
once: T-path mining and the V-path closure run minutes at city scale, while
booting from the persisted index is a JSON parse plus a fingerprint check.
This benchmark pins that contract on the ``aalborg-like`` city build:

1. obtain the shared city artifact store (``$REPRO_ARTIFACT_STORE`` when CI
   provides the cached store; mined fresh — and timed — otherwise, with the
   mining wall-clock recorded in the manifest provenance so later runs keep
   an honest baseline),
2. time :meth:`~repro.routing.RoutingEngine.from_artifacts` cold starts and
   assert they are **>= 5x faster** than the recorded re-mine, and
3. prove the booted engine is the *same* engine: a mixed-method city batch
   answers identically to the store's origin engine with **zero**
   heuristic-cache misses and the mining entry points poisoned (any attempt
   to re-mine fails the test).

A report with the measured timings is written to ``results/``.
"""

from __future__ import annotations

import time

import pytest

from repro.evaluation.reporting import render_report, write_report
from repro.routing import RoutingEngine

#: Artifact boot must beat the re-mine by at least this factor (measured
#: locally: ~400x; the floor leaves two orders of magnitude of slack for
#: pathological CI filesystems).
BOOT_SPEEDUP_FLOOR = 5.0
#: One guided method per family — binary getMin and Eq. 5 budget tables.
METHODS = ("T-B-P", "T-BS-60")
QUERY_TARGET = 12
MIN_PAIR_DISTANCE = 1100.0


def _best_of(function, repeats: int = 2) -> tuple[float, object]:
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def test_artifact_boot_beats_remine(city_store, city_batch_factory, monkeypatch):
    store_root, mined, mine_seconds = city_store

    # 1. Cold-start timing: best of a few boots of the store as CI shares it.
    boot_seconds, reference = _best_of(
        lambda: RoutingEngine.from_artifacts(store_root), repeats=3
    )
    speedup = mine_seconds / boot_seconds if boot_seconds else float("inf")

    # 2. Serving equivalence: prewarm the batch's heuristics once, persist
    #    them into the store, and boot a *serving* engine that must answer a
    #    mixed-method batch identically — without mining and without a single
    #    heuristic build.
    origin = mined if mined is not None else reference
    queries = city_batch_factory(
        origin,
        source_stride=7,
        destination_stride=9,
        target=QUERY_TARGET,
        min_distance=MIN_PAIR_DISTANCE,
    )
    assert len(queries) >= QUERY_TARGET // 2, "workload generation came up short"
    destinations = sorted({query.destination for query in queries})
    for method in METHODS:
        origin.prewarm(method, destinations)
    # Re-state mine_seconds explicitly: when ``origin`` is the freshly mined
    # engine its provenance has no prior manifest to carry it from, and the
    # cache contract (conftest.city_artifact_store) requires it to survive.
    origin.save_artifacts(store_root, provenance={"mine_seconds": round(mine_seconds, 3)})

    import repro.tpaths.extraction as extraction

    def _no_mining(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("artifact boot must not re-run T-path mining")

    monkeypatch.setattr(extraction, "build_pace_graph", _no_mining)
    monkeypatch.setattr(extraction, "mine_tpaths", _no_mining)
    serving = RoutingEngine.from_artifacts(store_root)
    for method in METHODS:
        expected = origin.route_many(queries, method=method)
        actual = serving.route_many(queries, method=method)
        for a, b in zip(expected, actual):
            assert (a.path is None) == (b.path is None)
            if a.path is not None:
                assert b.path.edges == a.path.edges
            assert b.probability == pytest.approx(a.probability, abs=1e-12)
    stats = serving.stats()
    assert stats.cache_misses == 0, "artifact boot rebuilt heuristics it should have loaded"
    assert stats.provenance["source"] == "artifacts"

    origin_kind = "re-mined this run" if mined is not None else "cached store"
    report = render_report(
        "Artifact cold start vs re-mine: aalborg-like",
        ("metric", "value"),
        [
            ("re-mine (s)", round(mine_seconds, 2)),
            ("artifact boot (s)", round(boot_seconds, 3)),
            ("speedup", round(speedup, 1)),
            ("origin engine", origin_kind),
            (f"parity batch ({'+'.join(METHODS)})", len(queries)),
            ("serving cache misses", stats.cache_misses),
        ],
    )
    write_report(report, "artifact_boot_bench.txt")

    assert speedup >= BOOT_SPEEDUP_FLOOR, (
        f"artifact boot ({boot_seconds:.2f}s) is only {speedup:.1f}x faster than "
        f"re-mining ({mine_seconds:.2f}s); the floor is {BOOT_SPEEDUP_FLOOR:.0f}x"
    )
