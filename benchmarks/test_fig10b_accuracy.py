"""Figure 10(b): accuracy (KL divergence) of PACE estimates when varying τ."""

import math

import pytest

from repro.evaluation.experiments import fig10b_accuracy

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig10b_accuracy(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        return fig10b_accuracy(context)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig10b_accuracy_{dataset}.txt")
    kls = [row[1] for row in report.rows if not math.isnan(row[1])]
    assert kls and all(kl >= 0 for kl in kls)
