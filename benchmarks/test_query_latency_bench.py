"""Benchmark: single-query routing latency, scalar vs batched frontier expansion.

The batched expansion mode (:mod:`repro.routing.accel`) compiles the routers'
per-pop successor walk into ndarray kernels, resumes PACE chain evaluation
from per-candidate chain trails, and memoizes finished chain evaluations on
the per-graph accelerator (a path's cost distribution depends only on the
graph, so repeated queries over the same network reuse each other's work —
the paper's offline/online split taken to its conclusion).  This benchmark
measures what that buys on the shared city store for the guided methods the
paper's online phase runs — one binary-guided and one budget-guided T-path
method plus the guided V-path method — routing the same long-haul workload
through a scalar-mode and a batched-mode router that share one heuristic
cache (so only the search loop differs).

Each method is timed in three passes over the identical workload:

* ``scalar`` — the pre-accelerator per-edge reference loop,
* ``batched cold`` — ndarray kernels and chain trails starting from an
  emptied evaluation memo: a cold-started process (queries within the pass
  still reuse each other's evaluations, as they would in any process),
* ``batched warm`` — the same pass repeated with the memo populated: the
  serving-tier steady state, where most frontier paths were already
  evaluated by earlier queries.

Reported to ``results/query_latency_bench.txt``: per-method p50/p95 latency
per pass and the p50 speedups.  Gated on three things: all passes must
return identical results query for query (the parity contract of
``tests/test_expansion_parity.py``, re-checked here on city scale), the cold
kernels must beat scalar outright on the gated T-path methods, and at least
one budget-pruned T-path method must clear a >= 3x p50 speedup batched vs
scalar.
"""

from __future__ import annotations

import dataclasses
import time

from repro.evaluation.reporting import render_report, write_report
from repro.routing import RoutingEngine
from repro.routing.accel import accelerator_for
from repro.routing.engine import create_router

#: One binary-guided and one budget-guided T-path method, plus the guided
#: V-path method (whose distributions are already incremental convolutions,
#: so only its pruning/priorities batch — a smaller win by design).
METHODS = ("T-B-P", "T-BS-60", "V-B-P")
#: The T-path methods eligible to satisfy the speedup gates.
GATED_METHODS = ("T-B-P", "T-BS-60")
QUERY_TARGET = 16
MIN_PAIR_DISTANCE = 1100.0
#: The batched-vs-scalar p50 speedup at least one gated method must clear
#: (its warm pass — the steady state a long-lived serving process runs in).
SPEEDUP_FLOOR = 3.0
#: The cold-pass floor: the compiled kernels must beat the scalar loop
#: outright, memo aside, on every gated method.
COLD_SPEEDUP_FLOOR = 1.3


def _percentile(sorted_values: list[float], q: float) -> float:
    assert sorted_values
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _route_all(router, queries) -> tuple[list, list[float]]:
    """Route each query once; return (results, per-query seconds)."""
    results = []
    latencies = []
    for query in queries:
        started = time.perf_counter()
        results.append(router.route(query))
        latencies.append(time.perf_counter() - started)
    return results, latencies


def test_query_latency_scalar_vs_batched(city_store, city_batch_factory):
    root, _, _ = city_store
    engine = RoutingEngine.from_artifacts(root)
    queries = city_batch_factory(
        engine,
        source_stride=5,
        destination_stride=6,
        target=QUERY_TARGET,
        min_distance=MIN_PAIR_DISTANCE,
    )
    assert len(queries) >= QUERY_TARGET // 2, "workload generation came up short"

    rows = []
    cold_speedups: dict[str, float] = {}
    warm_speedups: dict[str, float] = {}
    for method in METHODS:
        routers = {}
        for mode in ("scalar", "batched"):
            routers[mode] = create_router(
                method,
                engine.pace_graph,
                engine.updated_graph,
                settings=dataclasses.replace(engine.settings, expansion=mode),
                heuristic_cache=engine.heuristic_cache,
            )
        # Warm-up pass: builds the workload's per-destination heuristics
        # (shared by both routers through the engine's cache) and the
        # frontier accelerator, so the timed passes measure search only.
        warm_results, _ = _route_all(routers["scalar"], queries)

        scalar_results, scalar_latencies = _route_all(routers["scalar"], queries)
        # Cold pass: evaluation memos emptied — a cold-started batched
        # process.  (T and V routers accelerate different graphs; clear
        # both.)
        accelerator_for(engine.pace_graph).clear_evaluations()
        accelerator_for(engine.updated_graph).clear_evaluations()
        cold_results, cold_latencies = _route_all(routers["batched"], queries)
        # Warm pass: the previous pass populated the memo — the steady state
        # of a serving tier answering overlapping workloads.
        hot_results, hot_latencies = _route_all(routers["batched"], queries)

        # Parity gate: every pass answered every query identically — path,
        # probability, explored count.
        for scalar, cold, hot, warm in zip(
            scalar_results, cold_results, hot_results, warm_results
        ):
            assert cold.path == scalar.path == hot.path == warm.path
            assert cold.probability == scalar.probability == hot.probability
            assert cold.explored == scalar.explored == hot.explored

        scalar_sorted = sorted(scalar_latencies)
        cold_sorted = sorted(cold_latencies)
        hot_sorted = sorted(hot_latencies)
        scalar_p50 = _percentile(scalar_sorted, 0.50)
        cold_p50 = _percentile(cold_sorted, 0.50)
        hot_p50 = _percentile(hot_sorted, 0.50)
        cold_speedups[method] = scalar_p50 / max(cold_p50, 1e-12)
        warm_speedups[method] = scalar_p50 / max(hot_p50, 1e-12)
        rows.append(
            (
                method,
                round(scalar_p50 * 1000, 1),
                round(_percentile(scalar_sorted, 0.95) * 1000, 1),
                round(cold_p50 * 1000, 1),
                f"{cold_speedups[method]:.1f}x",
                round(hot_p50 * 1000, 1),
                round(_percentile(hot_sorted, 0.95) * 1000, 1),
                f"{warm_speedups[method]:.1f}x",
            )
        )

    report = render_report(
        f"Single-query latency: scalar vs batched expansion "
        f"({len(queries)} city queries)",
        (
            "method",
            "scalar p50 (ms)",
            "scalar p95 (ms)",
            "cold p50 (ms)",
            "cold speedup",
            "warm p50 (ms)",
            "warm p95 (ms)",
            "warm speedup",
        ),
        tuple(rows),
    )
    write_report(report, "query_latency_bench.txt")

    for method in GATED_METHODS:
        assert cold_speedups[method] >= COLD_SPEEDUP_FLOOR, (
            f"cold batched expansion does not pay for itself on {method}: "
            f"{cold_speedups[method]:.2f}x (expected >= {COLD_SPEEDUP_FLOOR}x)"
        )
    best = max(warm_speedups[method] for method in GATED_METHODS)
    assert best >= SPEEDUP_FLOOR, (
        f"batched expansion best T-method speedup is only {best:.2f}x "
        f"(expected >= {SPEEDUP_FLOOR}x): {warm_speedups}"
    )
