"""Figure 10(c): number of V-paths when varying τ."""

import pytest

from repro.evaluation.experiments import fig10cd_vpaths

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig10c_vpath_counts(benchmark, contexts, emit, report_cache, dataset):
    context = contexts[dataset]

    def run():
        key = f"fig10cd::{dataset}"
        if key not in report_cache:
            report_cache[key] = fig10cd_vpaths(context)
        return report_cache[key]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig10c_vpath_counts_{dataset}.txt")
    vpath_counts = [row[2] for row in report.rows]
    tpath_counts = [row[1] for row in report.rows]
    # Fewer T-paths (larger tau) cannot produce more V-paths.
    assert all(
        later_v <= earlier_v or later_t > earlier_t
        for (earlier_t, earlier_v), (later_t, later_v) in zip(
            zip(tpath_counts, vpath_counts), zip(tpath_counts[1:], vpath_counts[1:])
        )
    )
