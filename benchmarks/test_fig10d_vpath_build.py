"""Figure 10(d): V-path construction runtime and resulting out-degrees when varying τ."""

import pytest

from repro.evaluation.experiments import fig10cd_vpaths

DATASET_NAMES = ("aalborg-like", "xian-like")


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig10d_vpath_build(benchmark, contexts, emit, report_cache, dataset):
    context = contexts[dataset]

    def run():
        key = f"fig10cd::{dataset}"
        if key not in report_cache:
            report_cache[key] = fig10cd_vpaths(context)
        return report_cache[key]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, f"fig10d_vpath_build_{dataset}.txt")
    for row in report.rows:
        tau, _, _, _, _, build_seconds, avg_degree, max_degree = row
        assert build_seconds >= 0
        assert max_degree >= avg_degree
