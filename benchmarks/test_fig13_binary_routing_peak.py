"""Figure 13: stochastic routing with binary heuristics at peak hours.

Plots T-None against the three binary-heuristic variants and T-BS-60, grouped
both by source–destination distance and by budget level.
"""

import statistics

import pytest

from repro.evaluation.experiments import (
    BINARY_ROUTING_METHODS,
    routing_report_by_budget,
    routing_report_by_distance,
)

DATASET_NAMES = ("aalborg-like", "xian-like")
REGIME = "peak"


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig13_binary_routing_peak(benchmark, contexts, emit, dataset):
    context = contexts[dataset]

    def run():
        by_distance = routing_report_by_distance(
            context,
            BINARY_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 13 (a/b)",
            title=f"Binary-heuristic routing by distance ({dataset}, {REGIME})",
        )
        by_budget = routing_report_by_budget(
            context,
            BINARY_ROUTING_METHODS,
            regime=REGIME,
            experiment="Figure 13 (c/d)",
            title=f"Binary-heuristic routing by budget ({dataset}, {REGIME})",
        )
        return by_distance, by_budget

    by_distance, by_budget = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(by_distance, f"fig13_binary_routing_peak_distance_{dataset}.txt")
    emit(by_budget, f"fig13_binary_routing_peak_budget_{dataset}.txt")

    # Shape check: the un-guided baseline is slower on average than every heuristic variant.
    def mean_runtime(method: str) -> float:
        records = context.routing_records(REGIME, method)
        return statistics.fmean(r.runtime_seconds for r in records)

    baseline = mean_runtime("T-None")
    for method in BINARY_ROUTING_METHODS[1:]:
        assert mean_runtime(method) <= baseline
