"""Benchmark: HTTP serving-tier throughput and latency on the city store.

The serving tier (:mod:`repro.serving`, ``repro serve``) wraps the routing
service in admission control, deadlines and reload machinery — this benchmark
measures what that wrapper costs on the wire.  A :class:`RouteServer` boots
from the shared city artifact store (cached in CI, mined on the spot
otherwise), a warm-up pass builds the workload's per-destination heuristics,
and then concurrent HTTP clients storm ``POST /route`` with single-query
requests while per-request latencies are recorded.

Reported to ``results/serving_bench.txt``: requests/second and the p50/p99
latency of the storm.  Gated (loosely — hosted runners are noisy): every
answer must be HTTP 200 and structured, nothing may be shed by admission at
this concurrency, and the answers must match a directly-computed
:class:`~repro.routing.RoutingService` pass query for query.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from repro.evaluation.reporting import render_report, write_report
from repro.routing import RoutingEngine, RoutingService
from repro.serving import RouteServer, ServerConfig

#: Binary-heuristic guided search: cheap per-destination builds, so the
#: warm-up pass is short and the storm measures steady-state serving.
METHOD = "T-B-P"
QUERY_TARGET = 24
MIN_PAIR_DISTANCE = 1100.0
CLIENTS = 4
PASSES = 3  # timed storm re-sends the workload this many times


def _post_route(url: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + "/route",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.status, json.loads(response.read())


def _percentile(sorted_values: list[float], q: float) -> float:
    assert sorted_values
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _storm(url: str, payloads: list[dict], clients: int) -> tuple[float, list[float], list]:
    """Fire all payloads from ``clients`` threads; per-request latencies in seconds."""
    latencies: list[float] = []
    problems: list = []
    lock = threading.Lock()
    chunks = [payloads[i::clients] for i in range(clients)]

    def client(chunk: list[dict]) -> None:
        for payload in chunk:
            started = time.perf_counter()
            status, body = _post_route(url, payload)
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if status != 200 or not body.get("ok"):
                    problems.append((status, body))

    threads = [threading.Thread(target=client, args=(chunk,)) for chunk in chunks]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - wall_started, latencies, problems


def test_serving_tier_throughput(city_store, city_batch_factory):
    root, _, _ = city_store
    engine = RoutingEngine.from_artifacts(root)
    queries = city_batch_factory(
        engine,
        source_stride=5,
        destination_stride=6,
        target=QUERY_TARGET,
        min_distance=MIN_PAIR_DISTANCE,
    )
    assert len(queries) >= QUERY_TARGET // 2, "workload generation came up short"
    payloads = [
        {
            "source": query.source,
            "destination": query.destination,
            "budget": query.budget,
            "method": METHOD,
            "request_id": f"bench-{index}",
        }
        for index, query in enumerate(queries)
    ]

    server = RouteServer(
        root,
        ServerConfig(
            default_method=METHOD,
            max_concurrency=CLIENTS,
            queue_limit=2 * CLIENTS,
            default_deadline_ms=300_000.0,  # measuring latency, not enforcing it
            reload_poll_seconds=3600.0,
        ),
    )
    server.start()
    try:
        url = server.url
        # Warm-up pass: builds each destination's heuristic once (the offline
        # investment), so the timed storm measures steady-state serving.
        warmup_seconds, _, warmup_problems = _storm(url, payloads, CLIENTS)
        assert warmup_problems == [], f"warm-up answers not structured: {warmup_problems[:3]}"

        wall_seconds, latencies, problems = _storm(url, payloads * PASSES, CLIENTS)
        assert problems == [], f"storm answers not structured: {problems[:3]}"
        assert len(latencies) == len(payloads) * PASSES

        # Nothing was shed: this concurrency fits the admission window.
        stats = server.stats()
        assert stats["admission"]["rejected"] == 0
        assert stats["deadlines"]["deadline_exceeded"] == 0
        assert stats["resilience"]["healthy"] is True

        # Parity: the HTTP answers match a direct in-process service pass.
        service = RoutingService(engine, default_method=METHOD)
        for payload, expected in zip(payloads[:5], service.handle_batch(payloads[:5])):
            status, body = _post_route(url, payload)
            assert status == 200
            assert body["ok"] == expected.ok
            if expected.ok:
                assert body["path_vertices"] == list(expected.path_vertices or ())
    finally:
        server.stop()

    ordered = sorted(latencies)
    throughput = len(latencies) / wall_seconds if wall_seconds else float("inf")
    rows = [
        ("requests", len(latencies)),
        ("client threads", CLIENTS),
        ("distinct queries", len(payloads)),
        ("storm wall (s)", round(wall_seconds, 2)),
        ("throughput (req/s)", round(throughput, 1)),
        ("latency p50 (ms)", round(1000.0 * _percentile(ordered, 0.50), 1)),
        ("latency p99 (ms)", round(1000.0 * _percentile(ordered, 0.99), 1)),
        ("warm-up pass (s)", round(warmup_seconds, 2)),
    ]
    report = render_report(
        f"Serving tier: {len(latencies)} {METHOD} requests over HTTP, "
        f"{CLIENTS} concurrent clients, aalborg-like",
        ("metric", "value"),
        rows,
    )
    write_report(report, "serving_bench.txt")

    assert throughput > 0.0
