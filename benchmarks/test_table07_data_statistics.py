"""Table 7: data statistics of the two datasets."""

from repro.evaluation.experiments import table7_data_statistics


def test_table07_data_statistics(benchmark, contexts, emit):
    def run():
        return table7_data_statistics([context.dataset for context in contexts.values()])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, "table07_data_statistics.txt")
    assert len(report.rows) == 7
