"""Tests for T-path mining and PACE/EDGE model construction from trajectories."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.paths import Path
from repro.network.road_network import RoadNetwork
from repro.tpaths.extraction import (
    TPathMinerConfig,
    build_edge_graph,
    build_pace_graph,
    mine_tpaths,
)
from repro.tpaths.time_dependent import build_time_dependent_index
from repro.trajectories.model import Trajectory


@pytest.fixture(scope="module")
def chain_network() -> RoadNetwork:
    """A simple 5-vertex chain 0 -> 1 -> 2 -> 3 -> 4."""
    network = RoadNetwork()
    for vertex in range(5):
        network.add_vertex(vertex, vertex * 100.0, 0.0)
    for vertex in range(4):
        network.add_edge(vertex, vertex + 1, length=100, speed_limit=36)
    return network


def make_trips(network: RoadNetwork, edge_ids, costs_list, *, departure=8 * 3600.0) -> list[Trajectory]:
    path = network.path_from_edge_ids(list(edge_ids))
    return [
        Trajectory(i, path, tuple(costs), departure_time=departure)
        for i, costs in enumerate(costs_list)
    ]


class TestMining:
    def test_threshold_controls_tpath_creation(self, chain_network):
        trips = make_trips(chain_network, [0, 1], [(10, 10)] * 8 + [(15, 15)] * 2)
        config_low = TPathMinerConfig(tau=5, max_cardinality=3, resolution=5)
        config_high = TPathMinerConfig(tau=20, max_cardinality=3, resolution=5)
        assert any(m.cardinality == 2 for m in mine_tpaths(chain_network, trips, config_low))
        assert not any(m.cardinality == 2 for m in mine_tpaths(chain_network, trips, config_high))

    def test_every_subpath_above_threshold_is_mined(self, chain_network):
        trips = make_trips(chain_network, [0, 1, 2], [(10, 10, 10)] * 6)
        mined = mine_tpaths(chain_network, trips, TPathMinerConfig(tau=5, max_cardinality=3, resolution=5))
        keys = {m.edge_ids for m in mined}
        assert keys == {(0,), (1,), (2,), (0, 1), (1, 2), (0, 1, 2)}

    def test_max_cardinality_caps_tpath_length(self, chain_network):
        trips = make_trips(chain_network, [0, 1, 2, 3], [(10, 10, 10, 10)] * 6)
        mined = mine_tpaths(chain_network, trips, TPathMinerConfig(tau=5, max_cardinality=2, resolution=5))
        assert max(m.cardinality for m in mined) == 2

    def test_joint_preserves_dependency(self, chain_network):
        """Fast-fast and slow-slow trips must stay correlated, as in the paper's intro."""
        trips = make_trips(chain_network, [0, 1], [(10, 10)] * 8 + [(15, 15)] * 2)
        mined = mine_tpaths(chain_network, trips, TPathMinerConfig(tau=5, max_cardinality=2, resolution=5))
        joint = next(m.joint for m in mined if m.edge_ids == (0, 1))
        assert joint.probability_of((10.0, 10.0)) == pytest.approx(0.8)
        assert joint.probability_of((15.0, 15.0)) == pytest.approx(0.2)
        assert joint.probability_of((10.0, 15.0)) == 0.0

    def test_support_is_recorded(self, chain_network):
        trips = make_trips(chain_network, [0, 1], [(10, 10)] * 7)
        mined = mine_tpaths(chain_network, trips, TPathMinerConfig(tau=5, max_cardinality=2, resolution=5))
        assert all(m.support == 7 for m in mined)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TPathMinerConfig(tau=0).validate()
        with pytest.raises(ConfigurationError):
            TPathMinerConfig(max_cardinality=0).validate()
        with pytest.raises(ConfigurationError):
            TPathMinerConfig(resolution=0).validate()


class TestModelConstruction:
    def test_edge_graph_estimates_covered_edges(self, chain_network):
        trips = make_trips(chain_network, [0, 1], [(10, 20)] * 6)
        edge_graph = build_edge_graph(chain_network, trips, TPathMinerConfig(tau=5, resolution=5))
        assert edge_graph.weight(0).expectation() == pytest.approx(10.0)
        assert edge_graph.weight(1).expectation() == pytest.approx(20.0)
        # Edge 3 is uncovered: falls back to the deterministic free-flow time.
        assert len(edge_graph.weight(3)) == 1

    def test_edge_graph_splits_trajectories_independently(self, chain_network):
        """The EDGE model loses the fast-fast / slow-slow structure (paper's motivating example)."""
        trips = make_trips(chain_network, [0, 1], [(10, 10)] * 8 + [(15, 15)] * 2)
        edge_graph = build_edge_graph(chain_network, trips, TPathMinerConfig(tau=5, resolution=5))
        combined = edge_graph.path_cost_distribution(chain_network.path_from_edge_ids([0, 1]))
        # Independence smears probability onto the 25-minute total, which never happened.
        assert combined.pdf(25) > 0

    def test_pace_graph_keeps_dependency(self, chain_network):
        trips = make_trips(chain_network, [0, 1], [(10, 10)] * 8 + [(15, 15)] * 2)
        pace = build_pace_graph(chain_network, trips, TPathMinerConfig(tau=5, resolution=5))
        distribution = pace.path_cost_distribution(chain_network.path_from_edge_ids([0, 1]))
        assert distribution.pdf(20) == pytest.approx(0.8)
        assert distribution.pdf(30) == pytest.approx(0.2)
        assert distribution.pdf(25) == 0.0

    def test_pace_graph_contains_only_multi_edge_tpaths(self, chain_network):
        trips = make_trips(chain_network, [0, 1, 2], [(10, 10, 10)] * 6)
        pace = build_pace_graph(chain_network, trips, TPathMinerConfig(tau=5, resolution=5))
        assert pace.num_tpaths == 3  # (0,1), (1,2), (0,1,2)
        assert all(t.cardinality >= 2 for t in pace.tpaths())

    def test_pace_graph_on_small_dataset(self, small_pace_graph):
        assert small_pace_graph.num_tpaths > 0
        for tpath in small_pace_graph.tpaths():
            assert tpath.support >= small_pace_graph.tau
            assert tpath.joint is not None

    def test_time_dependent_index(self, chain_network):
        peak_trips = make_trips(chain_network, [0, 1], [(20, 20)] * 6, departure=8 * 3600.0)
        off_peak_trips = make_trips(chain_network, [0, 1], [(10, 10)] * 6, departure=12 * 3600.0)
        index = build_time_dependent_index(
            chain_network, peak_trips + off_peak_trips, TPathMinerConfig(tau=5, resolution=5)
        )
        peak_graph = index.graph_for(7.5 * 3600)
        off_peak_graph = index.graph_for(13 * 3600)
        path = chain_network.path_from_edge_ids([0, 1])
        assert peak_graph.path_expected_cost(path) > off_peak_graph.path_expected_cost(path)
        assert index.graph_named("peak") is peak_graph

    def test_time_dependent_unknown_regime(self, chain_network):
        trips = make_trips(chain_network, [0, 1], [(10, 10)] * 6)
        index = build_time_dependent_index(chain_network, trips, TPathMinerConfig(tau=5, resolution=5))
        with pytest.raises(ConfigurationError):
            index.graph_named("weekend")
