"""Tests for weighted graph elements (edges, T-paths, V-paths)."""

from __future__ import annotations

import pytest

from repro.core.distributions import Distribution
from repro.core.elements import ElementKind, WeightedElement
from repro.core.joint import JointDistribution
from repro.core.paths import Path


@pytest.fixture
def edge_element() -> WeightedElement:
    return WeightedElement(
        kind=ElementKind.EDGE,
        path=Path([7], [0, 1]),
        distribution=Distribution.from_pairs([(5, 0.5), (9, 0.5)]),
    )


@pytest.fixture
def tpath_element() -> WeightedElement:
    joint = JointDistribution((7, 8), {(5.0, 5.0): 0.5, (9.0, 9.0): 0.5})
    return WeightedElement(
        kind=ElementKind.TPATH,
        path=Path([7, 8], [0, 1, 2]),
        distribution=joint.total_cost_distribution(),
        joint=joint,
        support=60,
    )


class TestWeightedElement:
    def test_endpoints_and_cardinality(self, tpath_element):
        assert tpath_element.source == 0
        assert tpath_element.target == 2
        assert tpath_element.cardinality == 2

    def test_min_cost(self, edge_element):
        assert edge_element.min_cost == 5

    def test_kind_predicates(self, edge_element, tpath_element):
        assert edge_element.is_edge() and not edge_element.is_tpath()
        assert tpath_element.is_tpath() and not tpath_element.is_vpath()

    def test_joint_of_tpath_is_stored_joint(self, tpath_element):
        assert tpath_element.joint_distribution() is tpath_element.joint

    def test_joint_of_edge_synthesised_from_marginal(self, edge_element):
        joint = edge_element.joint_distribution()
        assert joint.edge_ids == (7,)
        assert joint.probability_of((5.0,)) == pytest.approx(0.5)

    def test_multi_edge_element_without_joint_raises(self):
        element = WeightedElement(
            kind=ElementKind.VPATH,
            path=Path([1, 2], [0, 1, 2]),
            distribution=Distribution.point(10),
        )
        with pytest.raises(ValueError):
            element.joint_distribution()

    def test_kind_enum_values(self):
        assert ElementKind.EDGE.value == "edge"
        assert ElementKind.TPATH.value == "tpath"
        assert ElementKind.VPATH.value == "vpath"
