"""Property tests: the vectorized Eq. 5 builder agrees with the scalar oracle.

:func:`repro.heuristics.budget.build_heuristic_table` evaluates Eq. 5 as a
batched NumPy Bellman kernel over lazily evaluated column blocks with a
dirty-worklist sweep schedule; the seed's cell-at-a-time implementation is
preserved in :mod:`repro.heuristics._scalar_reference`.  Both are Gauss–Seidel
iterations in the same deterministic vertex order, so for any sweep budget —
including ``sweeps=None`` (run to the fixpoint) — their tables must agree at
every (vertex, grid budget) cell up to floating-point summation noise.

The graphs exercised here include random directed graphs with cycles
(multi-sweep convergence), random T-paths on top of the edges, fractional
``δ`` grids, both grid roundings, and the mined PACE model of the synthetic
test city.
"""

from __future__ import annotations

import random

import pytest

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.joint import JointDistribution
from repro.core.pace_graph import PaceGraph
from repro.heuristics._scalar_reference import build_heuristic_table_scalar
from repro.heuristics.binary import PaceBinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, build_heuristic_table
from repro.network.road_network import RoadNetwork

#: Numpy dot products and the scalar accumulation loop round differently; at
#: a fixpoint the saturation threshold can additionally flip a 1-ulp-sized
#: difference into stored-vs-implicit-1 cells, so agreement is asserted to a
#: tolerance rather than bit-exactly.
TOLERANCE = 1e-7


def _random_pace_graph(seed: int, *, cost_grid: float) -> tuple[PaceGraph, int]:
    """A small random directed graph with cycles, random weights and T-paths."""
    rng = random.Random(seed)
    network = RoadNetwork(name=f"random-{seed}")
    n = rng.randint(7, 12)
    for vertex in range(n):
        network.add_vertex(vertex, x=rng.uniform(0, 1000), y=rng.uniform(0, 1000))
    # A ring keeps everything connected (and cyclic); chords add shortcuts and
    # extra cycles.
    for vertex in range(n):
        network.add_edge(vertex, (vertex + 1) % n)
    for _ in range(2 * n):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and not network.has_edge_between(a, b):
            network.add_edge(a, b)

    def random_distribution() -> Distribution:
        support = rng.randint(1, 4)
        values = sorted({cost_grid * rng.randint(1, 12) for _ in range(support)})
        masses = [rng.random() + 0.1 for _ in values]
        total = sum(masses)
        return Distribution([(v, m / total) for v, m in zip(values, masses)])

    weights = {edge.edge_id: random_distribution() for edge in network.edges()}
    pace = PaceGraph(EdgeGraph(network, weights), tau=5)

    # Random 2-edge T-paths with independent per-edge joints.
    edges = list(network.edges())
    for _ in range(n // 2):
        first = rng.choice(edges)
        outgoing = network.out_edges(first.target)
        if not outgoing:
            continue
        second = rng.choice(outgoing)
        if second.target == first.source:  # Path requires simple vertex sequences
            continue
        path = network.path_from_edge_ids([first.edge_id, second.edge_id])
        if pace.has_tpath(path.edges):
            continue
        marginal_a = random_distribution()
        marginal_b = random_distribution()
        outcomes = {
            (va, vb): pa * pb
            for va, pa in marginal_a.items()
            for vb, pb in marginal_b.items()
        }
        pace.add_tpath(path, JointDistribution(path.edges, outcomes), support=5)
    destination = rng.randrange(n)
    return pace, destination


def _assert_tables_agree(pace, destination, config, *, context: str) -> None:
    binary = PaceBinaryHeuristic(pace, destination)
    vectorized = build_heuristic_table(pace, destination, config, binary=binary)
    scalar = build_heuristic_table_scalar(pace, destination, config, binary=binary)
    assert set(vectorized.rows) == set(scalar.rows), context
    rounding = config.grid_rounding
    for vertex in pace.network.vertex_ids():
        for column in range(0, config.eta + 2):
            budget = column * config.delta
            got = vectorized.value(vertex, budget, rounding=rounding)
            expected = scalar.value(vertex, budget, rounding=rounding)
            assert got == pytest.approx(expected, abs=TOLERANCE), (
                f"{context}: U({vertex}, {budget}) = {got} != {expected}"
            )
    # Off-grid budgets must agree as well (they read the same columns).
    for vertex in pace.network.vertex_ids():
        for column in range(1, config.eta + 1, 3):
            budget = (column - 0.5) * config.delta
            got = vectorized.value(vertex, budget, rounding=rounding)
            expected = scalar.value(vertex, budget, rounding=rounding)
            assert got == pytest.approx(expected, abs=TOLERANCE), context


class TestVectorizedAgainstScalarReference:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("rounding", ["ceil", "floor"])
    def test_random_cyclic_graphs_fixed_sweeps(self, seed, rounding):
        pace, destination = _random_pace_graph(seed, cost_grid=1.0)
        for sweeps in (1, 2):
            config = BudgetHeuristicConfig(
                delta=3.0, max_budget=36.0, sweeps=sweeps, grid_rounding=rounding
            )
            _assert_tables_agree(
                pace, destination, config, context=f"seed={seed} {rounding} sweeps={sweeps}"
            )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("rounding", ["ceil", "floor"])
    def test_random_cyclic_graphs_converged(self, seed, rounding):
        """Multi-sweep convergence: both builders reach the same fixpoint."""
        pace, destination = _random_pace_graph(seed, cost_grid=1.0)
        config = BudgetHeuristicConfig(
            delta=2.0, max_budget=30.0, sweeps=None, grid_rounding=rounding
        )
        _assert_tables_agree(pace, destination, config, context=f"seed={seed} {rounding} converged")

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("rounding", ["ceil", "floor"])
    def test_fractional_delta_grids(self, seed, rounding):
        """Fractional δ over fractional costs: column rounding must not drift."""
        pace, destination = _random_pace_graph(seed + 100, cost_grid=0.1)
        config = BudgetHeuristicConfig(
            delta=0.3, max_budget=3.6, sweeps=2, grid_rounding=rounding
        )
        _assert_tables_agree(pace, destination, config, context=f"seed={seed} {rounding} fractional")

    @pytest.mark.parametrize("rounding", ["ceil", "floor"])
    def test_mined_pace_graph(self, small_pace_graph, rounding):
        """The mined synthetic city (real T-paths, cycles), fixed and convergent sweeps."""
        destination = sorted(small_pace_graph.network.vertex_ids())[-1]
        for sweeps in (2, None):
            config = BudgetHeuristicConfig(
                delta=30.0, max_budget=600.0, sweeps=sweeps, grid_rounding=rounding
            )
            _assert_tables_agree(
                small_pace_graph, destination, config, context=f"city {rounding} sweeps={sweeps}"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_band_mirror_matches_dense_mirror_cell_for_cell(self, seed):
        """The band-compressed U mirror is an exact drop-in for the dense one.

        ``mirror="dense"`` is the pre-refactor ``V x (eta+1)`` working matrix
        kept as the benchmark baseline; both must produce *identical* rows
        (same bits, not just same values) on converged cyclic builds.
        """
        pace, destination = _random_pace_graph(seed, cost_grid=1.0)
        config = BudgetHeuristicConfig(delta=2.0, max_budget=30.0, sweeps=None)
        band = build_heuristic_table(pace, destination, config, mirror="band")
        dense = build_heuristic_table(pace, destination, config, mirror="dense")
        assert band.rows.keys() == dense.rows.keys()
        for vertex, row in band.rows.items():
            other = dense.rows[vertex]
            assert row.first_index == other.first_index
            assert row.values.tobytes() == other.values.tobytes()

    def test_unknown_mirror_is_rejected(self):
        from repro.core.errors import ConfigurationError

        pace, destination = _random_pace_graph(0, cost_grid=1.0)
        with pytest.raises(ConfigurationError, match="mirror"):
            build_heuristic_table(
                pace, destination, BudgetHeuristicConfig(delta=2.0, max_budget=30.0),
                mirror="sparse",
            )

    def test_convergence_stops_and_tightens(self):
        """sweeps=None reaches a fixpoint no looser than any fixed sweep count."""
        pace, destination = _random_pace_graph(3, cost_grid=1.0)
        binary = PaceBinaryHeuristic(pace, destination)
        fixed = build_heuristic_table(
            pace, destination, BudgetHeuristicConfig(delta=2.0, max_budget=30.0, sweeps=2),
            binary=binary,
        )
        converged = build_heuristic_table(
            pace, destination, BudgetHeuristicConfig(delta=2.0, max_budget=30.0, sweeps=None),
            binary=binary,
        )
        assert converged.sweeps_performed >= 1
        for vertex in pace.network.vertex_ids():
            for column in range(0, 16):
                budget = column * 2.0
                assert converged.value(vertex, budget) <= fixed.value(vertex, budget) + 1e-12

        # Rebuilding from the converged state must be a no-op after one check pass.
        again = build_heuristic_table(
            pace, destination, BudgetHeuristicConfig(delta=2.0, max_budget=30.0, sweeps=None),
            binary=binary,
        )
        for vertex in pace.network.vertex_ids():
            for column in range(0, 16):
                assert again.value(vertex, column * 2.0) == converged.value(vertex, column * 2.0)
