"""Property tests: batched frontier expansion is result-identical to the scalar loop.

The batched expansion mode (:mod:`repro.routing.accel`) re-implements the
routers' inner loops — budget pruning, cycle masking, Eq. 3 priorities,
checkpointed PACE evaluation — as ndarray kernels that are designed to
perform *the same float arithmetic in the same order* as the scalar
reference.  These tests pin that claim exactly: for random cyclic PACE
graphs, every heuristic family and random budgets, the two modes must return
identical :class:`~repro.routing.queries.RoutingResult`\\ s — same path, same
(bitwise) probability, same explored count, same distribution — including
when ``max_explored`` truncates the search mid-frontier.

Also here: the regression test for the unified Eq. 3 kernel
(:func:`~repro.heuristics.base.max_prob_segments`), pinning its scalar
small-support strategy bitwise equal to the vectorized one across the
``_BATCH_THRESHOLD`` boundary.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.distributions import Distribution
from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import _BATCH_THRESHOLD, NoHeuristic, max_prob, max_prob_segments
from repro.heuristics.binary import PaceBinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.network.road_network import RoadNetwork
from repro.routing.engine import HeuristicCache, RouterSettings, create_router
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph
from repro.trajectories.model import Trajectory
from repro.vpaths.updated_graph import UpdatedPaceGraph

#: Every routing method with a batched/scalar expansion switch: the guided
#: T-path routers over each heuristic family, and the V-path router guided,
#: budget-guided and unguided (V-None exercises the NoHeuristic kernel path).
METHODS = ("T-B-EU", "T-B-E", "T-B-P", "T-BS-60", "V-None", "V-B-P", "V-BS-60")


def _random_instance(seed: int) -> tuple[PaceGraph, UpdatedPaceGraph, int, int]:
    """A small random grid PACE graph (cyclic: all edges bidirectional)."""
    rng = random.Random(seed)
    rows, cols = 3, 4
    network = RoadNetwork(name=f"parity-{seed}")
    for row in range(rows):
        for col in range(cols):
            network.add_vertex(row * cols + col, col * 100.0, row * 100.0)
    for row in range(rows):
        for col in range(cols):
            here = row * cols + col
            if col + 1 < cols:
                network.add_edge(here, here + 1, speed_limit=50)
                network.add_edge(here + 1, here, speed_limit=50)
            if row + 1 < rows:
                network.add_edge(here, here + cols, speed_limit=50)
                network.add_edge(here + cols, here, speed_limit=50)

    trajectories = []
    source, destination = 0, rows * cols - 1
    for trip in range(40):
        walk = [source]
        current = source
        while current != destination and len(walk) < 12:
            candidates = [
                e.target
                for e in network.out_edges(current)
                if e.target not in walk
                and (e.target % cols >= current % cols)
                and (e.target // cols >= current // cols)
            ]
            if not candidates:
                break
            current = rng.choice(candidates)
            walk.append(current)
        if current != destination:
            continue
        path = network.path_from_vertex_ids(walk)
        slowness = rng.choice([1.0, 1.0, 1.4])
        costs = tuple(
            max(5.0, round((10 + 4 * rng.random()) * slowness / 5) * 5) for _ in path.edges
        )
        trajectories.append(Trajectory(trip, path, costs, departure_time=8 * 3600.0))
    pace = build_pace_graph(
        network, trajectories, TPathMinerConfig(tau=4, max_cardinality=3, resolution=5.0)
    )
    updated, _ = UpdatedPaceGraph.build(pace)
    return pace, updated, source, destination


def _route_both(
    pace: PaceGraph,
    updated: UpdatedPaceGraph,
    method: str,
    query: RoutingQuery,
    *,
    max_explored: int = 4000,
) -> tuple[RoutingResult, RoutingResult]:
    """Route ``query`` with ``method`` in scalar and in batched expansion mode.

    One shared heuristic cache so both modes search with the exact same
    heuristic instances (they are deterministic anyway; sharing just makes
    the test cheap).
    """
    results = {}
    cache = HeuristicCache()
    for expansion in ("scalar", "batched"):
        router = create_router(
            method,
            pace,
            updated,
            settings=RouterSettings(
                max_explored=max_explored,
                max_budget=600.0,
                heuristic_sweeps=1,
                expansion=expansion,
            ),
            heuristic_cache=cache,
        )
        results[expansion] = router.route(query)
    return results["scalar"], results["batched"]


def _assert_identical(scalar: RoutingResult, batched: RoutingResult) -> None:
    """The two results are the same, bitwise — no tolerances anywhere."""
    assert batched.explored == scalar.explored
    assert batched.path == scalar.path
    assert batched.probability == scalar.probability
    if scalar.distribution is None:
        assert batched.distribution is None
    else:
        assert batched.distribution is not None
        assert np.array_equal(
            batched.distribution.values_array, scalar.distribution.values_array
        )
        assert np.array_equal(
            batched.distribution.probabilities_array, scalar.distribution.probabilities_array
        )


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    budget=st.sampled_from([45.0, 75.0, 120.0, 250.0]),
)
def test_batched_expansion_matches_scalar_on_random_graphs(seed, budget):
    """Every method, random graph, random budget: identical RoutingResults."""
    pace, updated, source, destination = _random_instance(seed)
    query = RoutingQuery(source, destination, budget=budget)
    for method in METHODS:
        scalar, batched = _route_both(pace, updated, method, query)
        _assert_identical(scalar, batched)


@pytest.mark.parametrize("method", ["T-B-P", "T-BS-60", "V-B-P", "V-None"])
@pytest.mark.parametrize("max_explored", [1, 7, 23])
def test_batched_expansion_matches_scalar_under_truncation(method, max_explored):
    """A tiny ``max_explored`` cuts both searches at the same pop, same result."""
    pace, updated, source, destination = _random_instance(424242)
    query = RoutingQuery(source, destination, budget=150.0)
    scalar, batched = _route_both(
        pace, updated, method, query, max_explored=max_explored
    )
    _assert_identical(scalar, batched)


# --------------------------------------------------------------------------- #
# Satellite regression: the unified Eq. 3 kernel across _BATCH_THRESHOLD
# --------------------------------------------------------------------------- #
def _reference_max_prob(distribution, heuristic, vertex, budget):
    """The Eq. 3 definition, written as the plainest possible loop."""
    total = 0.0
    for cost, probability in distribution.items():
        remaining = budget - cost
        if remaining < 0:
            continue
        total += probability * heuristic.probability(vertex, float(remaining))
    return total


@pytest.mark.parametrize("support_size", list(range(1, 17)))
def test_max_prob_scalar_and_vectorized_strategies_agree_bitwise(support_size):
    """Supports 1..16 (across the threshold at 8): one kernel, one answer.

    ``max_prob`` takes the scalar strategy for a single segment at or below
    ``_BATCH_THRESHOLD`` support points and the vectorized one above; a
    two-segment call always vectorizes.  All of them — and the plain
    reference loop — must produce the same float, bit for bit, for every
    heuristic family the routers use.
    """
    assert 1 <= _BATCH_THRESHOLD < 16  # the parametrisation really straddles it
    pace, _, source, destination = _random_instance(7)
    heuristics = [
        NoHeuristic(destination),
        PaceBinaryHeuristic(pace, destination),
        BudgetSpecificHeuristic(
            pace, destination, BudgetHeuristicConfig(delta=15, max_budget=600, sweeps=1)
        ),
    ]
    budget = 80.0
    # Support straddling the budget so some outcomes are infeasible.
    distribution = Distribution.from_pairs(
        [(7.0 + 11.0 * k, 1.0 / support_size) for k in range(support_size)]
    )
    values = distribution.values_array
    probabilities = distribution.probabilities_array
    for heuristic in heuristics:
        single = max_prob(distribution, heuristic, source, budget)
        # Two identical segments force the vectorized strategy even below
        # the threshold; both lanes must reproduce the single-segment value.
        double = max_prob_segments(
            np.concatenate([values, values]),
            np.concatenate([probabilities, probabilities]),
            np.array([0, len(values), 2 * len(values)]),
            np.array([source, source]),
            heuristic,
            budget,
        )
        assert double[0] == single
        assert double[1] == single
        # The plain loop sums in a different association order than numpy's
        # reduction, so this check is semantic (tolerance of a few ulps),
        # unlike the exact pins above.
        assert single == pytest.approx(
            _reference_max_prob(distribution, heuristic, source, budget), rel=1e-12
        )
