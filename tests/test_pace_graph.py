"""Tests for the PACE graph: T-path indexing, coarsest sequences and path costs."""

from __future__ import annotations

import pytest

from repro.core.distributions import Distribution
from repro.core.errors import GraphError
from repro.core.joint import JointDistribution
from repro.core.pace_graph import PaceGraph


class TestTpathManagement:
    def test_tpath_registration_and_lookup(self, paper_example):
        pace = paper_example.pace_graph
        assert pace.num_tpaths == 5
        assert pace.has_tpath((1, 4))
        assert not pace.has_tpath((1, 9))
        assert pace.tpath((1, 4)).distribution.pdf(16) == pytest.approx(0.2)

    def test_unknown_tpath_raises(self, paper_example):
        with pytest.raises(GraphError):
            paper_example.pace_graph.tpath((999,))

    def test_tau_validation(self, paper_example):
        with pytest.raises(GraphError):
            PaceGraph(paper_example.edge_graph, tau=0)

    def test_joint_must_match_path(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([2, 3])
        wrong_joint = JointDistribution((2, 99), {(1.0, 1.0): 1.0})
        with pytest.raises(GraphError):
            pace.add_tpath(path, wrong_joint)

    def test_single_edge_tpath_updates_edge_weight(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([10])
        joint = JointDistribution((10,), {(9.0,): 1.0})
        pace.add_tpath(path, joint)
        assert pace.edge_weight(10).support == (9.0,)
        # restore the original weight for other tests sharing the session fixture
        pace.edge_graph.set_weight(10, Distribution.point(7.0))

    def test_tpaths_from_and_into(self, paper_example):
        pace = paper_example.pace_graph
        from_vs = {t.path.edges for t in pace.tpaths_from(paper_example.source)}
        assert (1, 4) in from_vs
        into_vd = {t.path.edges for t in pace.tpaths_into(paper_example.destination)}
        assert (6, 8) in into_vd and (3, 6, 8) in into_vd

    def test_outgoing_elements_include_edges_and_tpaths(self, paper_example):
        pace = paper_example.pace_graph
        elements = pace.outgoing_elements(paper_example.source)
        kinds = {(e.kind.value, e.path.edges) for e in elements}
        assert ("edge", (1,)) in kinds
        assert ("edge", (2,)) in kinds
        assert ("tpath", (1, 4)) in kinds

    def test_out_degree_with_tpaths(self, paper_example):
        pace = paper_example.pace_graph
        assert pace.out_degree_with_tpaths(paper_example.source) == 3

    def test_incoming_elements(self, paper_example):
        pace = paper_example.pace_graph
        incoming = pace.incoming_elements(paper_example.destination)
        assert {e.path.edges for e in incoming} >= {(8,), (10,), (6, 8), (3, 6, 8)}


class TestCoarsestSequence:
    def test_overlapping_tpaths_preferred(self, paper_example):
        """CPS(<e1, e4, e9>) = (p1, p2), the coarsest combination of the paper."""
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 4, 9])
        sequence = pace.coarsest_sequence(path)
        assert [element.path.edges for element in sequence] == [(1, 4), (4, 9)]

    def test_single_edges_used_when_no_tpath(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([2, 3])
        sequence = pace.coarsest_sequence(path)
        assert [element.path.edges for element in sequence] == [(2,), (3,)]

    def test_longest_tpath_wins(self, paper_example):
        """For v4 -> vd the three-edge T-path p5 covers the whole path."""
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([3, 6, 8])
        sequence = pace.coarsest_sequence(path)
        assert [element.path.edges for element in sequence] == [(3, 6, 8)]

    def test_mixed_sequence(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([2, 3, 6, 8])
        sequence = pace.coarsest_sequence(path)
        assert [element.path.edges for element in sequence] == [(2,), (3, 6, 8)]

    def test_sequence_covers_every_edge(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 4, 9, 10])
        sequence = pace.coarsest_sequence(path)
        covered = set()
        for element in sequence:
            covered.update(element.path.edges)
        assert covered == set(path.edges)


class TestPathCost:
    def test_joint_distribution_via_assembly(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 4, 9])
        joint = pace.path_joint_distribution(path)
        assert joint.edge_ids == (1, 4, 9)
        total = joint.total_cost_distribution()
        assert total.pdf(21) == pytest.approx(0.14)
        assert total.pdf(23) == pytest.approx(0.62)
        assert total.pdf(25) == pytest.approx(0.24)

    def test_incremental_matches_full_joint(self, paper_example):
        pace = paper_example.pace_graph
        for edge_ids in [(1, 4, 9), (1, 4, 9, 10), (2, 3, 6, 8), (1, 5, 6, 8)]:
            path = paper_example.network.path_from_edge_ids(list(edge_ids))
            full = pace.path_joint_distribution(path).total_cost_distribution()
            incremental = pace.path_cost_distribution(path, max_states=None)
            assert full.support == incremental.support
            for value in full.support:
                assert full.pdf(value) == pytest.approx(incremental.pdf(value), abs=1e-9)

    def test_non_overlapping_elements_are_convolved(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 5, 6, 8])
        # CPS = e1, e5, p4 with no overlaps -> plain convolution of their totals.
        expected = (
            pace.edge_weight(1)
            .convolve(pace.edge_weight(5))
            .convolve(pace.tpath((6, 8)).distribution)
        )
        actual = pace.path_cost_distribution(path)
        assert actual == expected

    def test_prob_within_budget_on_full_route(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 5, 6, 8])
        assert pace.path_cost_distribution(path).prob_at_most(30) == pytest.approx(0.94)

    def test_expected_and_min_cost(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 4, 9])
        assert pace.path_min_cost(path) == pytest.approx(8 + 6 + 5)
        assert pace.path_expected_cost(path) == pytest.approx(0.14 * 21 + 0.62 * 23 + 0.24 * 25)

    def test_max_support_compression(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 4, 9, 10])
        compressed = pace.path_cost_distribution(path, max_support=2)
        assert len(compressed) <= 2

    def test_max_states_pruning_keeps_probability_mass(self, paper_example):
        pace = paper_example.pace_graph
        path = paper_example.network.path_from_edge_ids([1, 4, 9, 10])
        pruned = pace.path_cost_distribution(path, max_states=1)
        assert sum(pruned.probabilities) == pytest.approx(1.0)

    def test_repr(self, paper_example):
        assert "tpaths=5" in repr(paper_example.pace_graph)
