"""Tests for the synthetic network generator, JSON I/O and Table-7 statistics."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.network.generators import GridCityConfig, generate_grid_city
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.statistics import compute_statistics
from repro.trajectories.model import Trajectory


@pytest.fixture(scope="module")
def city():
    return generate_grid_city(GridCityConfig(rows=6, cols=6, seed=3))


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=9))
        b = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=9))
        assert a.num_vertices == b.num_vertices
        assert a.num_edges == b.num_edges
        assert [e.length for e in a.edges()] == [e.length for e in b.edges()]

    def test_different_seed_changes_layout(self):
        a = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=9))
        b = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=10))
        assert [round(v.x, 3) for v in a.vertices()] != [round(v.x, 3) for v in b.vertices()]

    def test_two_way_streets(self, city):
        forward = [(e.source, e.target) for e in city.edges()]
        assert all((b, a) in set(forward) for a, b in forward)

    def test_speed_hierarchy(self, city):
        speeds = {e.speed_limit for e in city.edges()}
        assert len(speeds) == 2  # arterials and residential streets

    def test_no_isolated_vertices(self, city):
        for vertex in city.vertex_ids():
            assert city.out_degree(vertex) + city.in_degree(vertex) > 0

    def test_average_degree_in_reasonable_range(self, city):
        degree = city.num_edges / city.num_vertices
        assert 1.5 <= degree <= 4.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_grid_city(GridCityConfig(rows=1, cols=5))
        with pytest.raises(ConfigurationError):
            generate_grid_city(GridCityConfig(spacing=-1))
        with pytest.raises(ConfigurationError):
            generate_grid_city(GridCityConfig(removal_probability=1.0))
        with pytest.raises(ConfigurationError):
            generate_grid_city(GridCityConfig(arterial_every=0))


class TestIo:
    def test_round_trip_dict(self, city):
        rebuilt = network_from_dict(network_to_dict(city))
        assert rebuilt.num_vertices == city.num_vertices
        assert rebuilt.num_edges == city.num_edges
        sample = next(iter(city.edges()))
        clone = rebuilt.edge(sample.edge_id)
        assert (clone.source, clone.target, clone.length) == (
            sample.source,
            sample.target,
            sample.length,
        )

    def test_round_trip_file(self, city, tmp_path):
        path = tmp_path / "network.json"
        save_network(city, path)
        rebuilt = load_network(path)
        assert rebuilt.num_edges == city.num_edges

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_network(tmp_path / "missing.json")

    def test_malformed_payload(self):
        with pytest.raises(DataError):
            network_from_dict({"format_version": 1, "vertices": []})

    def test_unknown_version(self):
        with pytest.raises(DataError):
            network_from_dict({"format_version": 99, "vertices": [], "edges": []})


class TestStatistics:
    def test_without_trajectories(self, city):
        stats = compute_statistics(city)
        assert stats.num_vertices == city.num_vertices
        assert stats.num_trajectories == 0
        assert stats.edge_coverage == 0.0

    def test_with_trajectories(self, city):
        edge = next(iter(city.edges()))
        path = city.path_from_edge_ids([edge.edge_id])
        trajectory = Trajectory(trajectory_id=0, path=path, edge_costs=(30.0,))
        stats = compute_statistics(city, [trajectory])
        assert stats.num_trajectories == 1
        assert stats.avg_vertices_per_trajectory == 2
        assert 0 < stats.edge_coverage < 1

    def test_as_rows_covers_table7_metrics(self, city):
        labels = [label for label, _ in compute_statistics(city).as_rows()]
        assert "Number of vertices" in labels
        assert "Number of edges" in labels
        assert "AVG vertex degree" in labels
        assert "AVG edge length (m)" in labels
        assert "Number of traj." in labels
