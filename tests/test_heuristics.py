"""Tests for the admissible search heuristics (binary and budget-specific)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import Distribution
from repro.core.errors import ConfigurationError, HeuristicError, UnknownVertexError
from repro.datasets.paper_example import (
    EDGE_ONLY_GET_MIN,
    PACE_GET_MIN,
    V1,
    V2,
    V3,
    V4,
    V5,
    V6,
    VD,
    VS,
)
from repro.heuristics.base import NoHeuristic, max_prob
from repro.heuristics.binary import (
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    PaceBinaryHeuristic,
)
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic, build_heuristic_table
from repro.heuristics.sptree import build_pace_shortest_path_tree
from repro.heuristics.tables import HeuristicRow, HeuristicTable


# --------------------------------------------------------------------------- #
# Budget heuristic configuration (eta grid sizing)
# --------------------------------------------------------------------------- #
class TestBudgetConfigEta:
    def test_eta_integer_grids(self):
        assert BudgetHeuristicConfig(delta=60.0, max_budget=5000.0).eta == 84
        assert BudgetHeuristicConfig(delta=60.0, max_budget=4800.0).eta == 80
        assert BudgetHeuristicConfig(delta=60.0, max_budget=60.0).eta == 1

    def test_eta_fractional_grids(self):
        """Regression: float // and % misfire on fractional deltas.

        ``max_budget = 0.1 + 0.2`` has ``max_budget % 0.1 == 4e-17``, which the
        old computation turned into a spurious fourth column.
        """
        assert BudgetHeuristicConfig(delta=0.1, max_budget=0.1 + 0.2).eta == 3
        assert BudgetHeuristicConfig(delta=0.1, max_budget=0.3).eta == 3
        assert BudgetHeuristicConfig(delta=0.1, max_budget=0.35).eta == 4
        assert BudgetHeuristicConfig(delta=0.25, max_budget=1.0).eta == 4
        assert BudgetHeuristicConfig(delta=1.1, max_budget=3.3).eta == 3

    def test_eta_covers_max_budget(self):
        for delta in (0.1, 0.25, 1.1, 7.0, 60.0):
            for steps in range(1, 12):
                config = BudgetHeuristicConfig(delta=delta, max_budget=delta * steps)
                assert config.eta == steps
                # The grid must reach the configured budget (within float noise).
                assert config.eta * delta >= config.max_budget - 1e-9 * config.max_budget


# --------------------------------------------------------------------------- #
# Base heuristic and Eq. 3
# --------------------------------------------------------------------------- #
class TestBase:
    def test_no_heuristic_is_trivially_admissible(self):
        heuristic = NoHeuristic(destination=9)
        assert heuristic.destination == 9
        assert heuristic.min_cost(3) == 0.0
        assert heuristic.probability(3, 100) == 1.0
        assert heuristic.probability(3, -1) == 0.0

    def test_max_prob_matches_paper_formula(self, paper_example):
        """Figure 4(b): maxProb = 0.9 * U(v1, 17) + 0.1 * U(v1, 15)."""
        heuristic = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        candidate = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        # v1.getMin() = 19, so both residual budgets (17 and 15) are infeasible -> 0.
        assert max_prob(candidate, heuristic, V1, 25) == pytest.approx(0.0)
        # With budget 28 only the 8-cost outcome leaves 20 >= 19, so only its 0.9 contributes.
        assert max_prob(candidate, heuristic, V1, 28) == pytest.approx(0.9)
        # With budget 29 both outcomes leave at least getMin, so the bound reaches 1.
        assert max_prob(candidate, heuristic, V1, 29) == pytest.approx(1.0)

    def test_max_prob_with_no_heuristic_is_cdf(self):
        distribution = Distribution.from_pairs([(10, 0.4), (30, 0.6)])
        assert max_prob(distribution, NoHeuristic(0), 5, 20) == pytest.approx(0.4)


# --------------------------------------------------------------------------- #
# Algorithm 2 (shortest-path tree over edges and T-paths)
# --------------------------------------------------------------------------- #
class TestSpTree:
    def test_matches_figure_6b(self, paper_example):
        tree = build_pace_shortest_path_tree(paper_example.pace_graph, VD)
        for vertex, expected in PACE_GET_MIN.items():
            assert tree.get_min(vertex) == pytest.approx(expected), vertex

    def test_prefers_tpath_costs_over_cheaper_edges(self, paper_example):
        """v5 is annotated 15 (via reversed T-path p4), not 13 (via the two edges)."""
        tree = build_pace_shortest_path_tree(paper_example.pace_graph, VD)
        assert tree.get_min(V5) == 15
        assert tree.tpath_edge_count(V5) == 2

    def test_destination_label(self, paper_example):
        tree = build_pace_shortest_path_tree(paper_example.pace_graph, VD)
        assert tree.get_min(VD) == 0

    def test_reachable_vertices(self, paper_example):
        tree = build_pace_shortest_path_tree(paper_example.pace_graph, VD)
        assert tree.reachable_vertices() == set(range(8))

    def test_unreachable_vertices_are_infinite(self, paper_example):
        # vs has no incoming edges, so with vs as "destination" nothing else can reach it.
        tree = build_pace_shortest_path_tree(paper_example.pace_graph, VS)
        assert tree.get_min(VD) == float("inf")

    def test_unknown_destination(self, paper_example):
        with pytest.raises(UnknownVertexError):
            build_pace_shortest_path_tree(paper_example.pace_graph, 99)


# --------------------------------------------------------------------------- #
# Binary heuristics
# --------------------------------------------------------------------------- #
class TestBinary:
    def test_edge_only_matches_figure_6a(self, paper_example):
        heuristic = EdgeOnlyBinaryHeuristic(paper_example.pace_graph, VD)
        for vertex, expected in EDGE_ONLY_GET_MIN.items():
            assert heuristic.min_cost(vertex) == pytest.approx(expected)

    def test_pace_variant_matches_figure_6b(self, paper_example):
        heuristic = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        for vertex, expected in PACE_GET_MIN.items():
            assert heuristic.min_cost(vertex) == pytest.approx(expected)

    def test_euclidean_is_a_lower_bound(self, paper_example):
        heuristic = EuclideanBinaryHeuristic(paper_example.network, VD)
        for vertex, expected in PACE_GET_MIN.items():
            assert heuristic.min_cost(vertex) <= expected + 1e-9

    def test_binary_probability_is_step_function(self, paper_example):
        heuristic = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        assert heuristic.probability(V1, 18.9) == 0.0
        assert heuristic.probability(V1, 19.0) == 1.0
        assert heuristic.probability(V1, 100.0) == 1.0

    def test_table5_binary_row(self, paper_example):
        """Table 5: with delta=3 the first budget where v1 becomes reachable is 21."""
        heuristic = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        columns = [3 * j for j in range(1, 13)]
        row = [heuristic.probability(V1, x) for x in columns]
        assert row == [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]

    def test_storage_bytes_positive(self, paper_example):
        assert PaceBinaryHeuristic(paper_example.pace_graph, VD).storage_bytes() > 0

    def test_ordering_of_variants(self, paper_example):
        """T-B-EU <= T-B-E <= T-B-P pointwise: tighter variants give larger getMin."""
        euclid = EuclideanBinaryHeuristic(paper_example.network, VD)
        edge_only = EdgeOnlyBinaryHeuristic(paper_example.pace_graph, VD)
        pace = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        for vertex in range(8):
            assert euclid.min_cost(vertex) <= edge_only.min_cost(vertex) + 1e-9
            assert edge_only.min_cost(vertex) <= pace.min_cost(vertex) + 1e-9


# --------------------------------------------------------------------------- #
# Heuristic tables
# --------------------------------------------------------------------------- #
class TestTables:
    def test_row_compression_semantics(self):
        row = HeuristicRow(first_index=3, values=(0.2, 0.7))
        assert row.value_at_column(1) == 0.0
        assert row.value_at_column(2) == 0.0
        assert row.value_at_column(3) == 0.2
        assert row.value_at_column(4) == 0.7
        assert row.value_at_column(5) == 1.0
        assert row.storage_cells() == 2

    def test_table_lookup_roundings(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=5)
        table.set_row(1, HeuristicRow(first_index=2, values=(0.5,)))
        assert table.value(1, 15, rounding="ceil") == 0.5   # column 2
        assert table.value(1, 15, rounding="floor") == 0.0  # column 1
        assert table.value(1, 20) == 0.5
        assert table.value(1, 1000) == 1.0

    def test_table_destination_row_is_one(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=5)
        assert table.value(0, 0) == 1.0
        assert table.value(0, 50) == 1.0

    def test_table_unknown_vertex_defaults_to_one(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=5)
        assert table.value(42, 10) == 1.0

    def test_table_negative_budget(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=5)
        table.set_row(1, HeuristicRow(first_index=1, values=(0.5,)))
        assert table.value(1, -5) == 0.0

    def test_table_validation(self):
        with pytest.raises(HeuristicError):
            HeuristicTable(destination=0, delta=0, eta=5)
        with pytest.raises(HeuristicError):
            HeuristicTable(destination=0, delta=10, eta=0)

    def test_storage_accounting(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=5)
        table.set_row(1, HeuristicRow(first_index=1, values=(0.1, 0.2, 0.3)))
        assert table.storage_cells() == 3
        assert table.storage_bytes() > 0

    def test_storage_bytes_counts_eight_bytes_per_cell(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=100)
        table.set_row(1, HeuristicRow(first_index=1, values=tuple([0.5] * 10)))
        small = table.storage_bytes()
        table.set_row(2, HeuristicRow(first_index=1, values=tuple([0.5] * 60)))
        assert table.storage_bytes() >= small + 60 * 8

    def test_column_for_floor_fractional_grid_regression(self):
        """Regression: ``int(budget // delta)`` misfires on fractional grids.

        ``0.3 // 0.1 == 2.0`` because 0.3/0.1 divides to just below 3; the
        floor column must be computed from the rounded ratio like ``eta`` is.
        """
        table = HeuristicTable(destination=0, delta=0.1, eta=10)
        assert table.column_for(0.3, rounding="floor") == 3
        assert table.column_for(0.1 + 0.2, rounding="floor") == 3
        assert table.column_for(0.7, rounding="floor") == 7
        assert table.column_for(0.25, rounding="floor") == 2
        for steps in range(1, 11):
            assert table.column_for(steps * 0.1, rounding="floor") == steps
            assert table.column_for(steps * 0.1, rounding="ceil") == steps
        # Floor stays a floor: strictly between grid points it rounds down.
        assert table.column_for(0.35, rounding="floor") == 3
        assert table.column_for(0.05, rounding="floor") == 0
        assert table.column_for(-1.0, rounding="floor") == 0

    def test_row_values_are_read_only_arrays(self):
        row = HeuristicRow(first_index=2, values=(0.2, 0.7))
        assert isinstance(row.values, np.ndarray)
        with pytest.raises(ValueError):
            row.values[0] = 0.9

    def test_row_construction_does_not_freeze_callers_array(self):
        mine = np.array([0.1, 0.5])
        row = HeuristicRow(first_index=1, values=mine)
        mine[0] = 0.9  # the caller's buffer stays writable...
        assert row.value_at_column(1) == 0.1  # ...and the row kept its own copy

    def test_rows_stay_hashable_and_equal_by_value(self):
        row = HeuristicRow(first_index=2, values=(0.2, 0.7))
        twin = HeuristicRow(first_index=2, values=(0.2, 0.7))
        other = HeuristicRow(first_index=2, values=(0.2, 0.8))
        assert row == twin and row != other
        assert len({row, twin, other}) == 2

    def test_row_vectorized_column_lookup_matches_scalar(self):
        row = HeuristicRow(first_index=3, values=(0.2, 0.7))
        columns = np.arange(0, 9)
        batch = row.values_at_columns(columns)
        assert batch.tolist() == [row.value_at_column(int(c)) for c in columns]

    def test_row_dense_expansion(self):
        row = HeuristicRow(first_index=3, values=(0.2, 0.7))
        assert row.dense(6).tolist() == [0.0, 0.0, 0.0, 0.2, 0.7, 1.0, 1.0]
        # first_index beyond eta: all zeros.
        assert HeuristicRow(first_index=9, values=()).dense(4).tolist() == [0.0] * 5

    def test_table_vectorized_value_lookup_matches_scalar(self):
        table = HeuristicTable(destination=0, delta=10.0, eta=5)
        table.set_row(1, HeuristicRow(first_index=2, values=(0.4, 0.8)))
        budgets = [-5.0, 0.0, 3.0, 10.0, 15.0, 20.0, 25.0, 49.0, 50.0, 1000.0]
        for rounding in ("ceil", "floor"):
            batch = table.values_at(1, budgets, rounding=rounding)
            assert batch.tolist() == [table.value(1, b, rounding=rounding) for b in budgets]
        # Destination and unknown-vertex fallbacks.
        assert table.values_at(0, budgets).tolist() == [table.value(0, b) for b in budgets]
        assert table.values_at(42, budgets).tolist() == [table.value(42, b) for b in budgets]


# --------------------------------------------------------------------------- #
# Budget-specific heuristic (Algorithms 3-4)
# --------------------------------------------------------------------------- #
class TestBudgetSpecific:
    @pytest.fixture(scope="class")
    def floor_table(self, paper_example):
        return build_heuristic_table(
            paper_example.pace_graph,
            VD,
            BudgetHeuristicConfig(delta=3, max_budget=36, sweeps=2, grid_rounding="floor"),
        )

    def test_matches_consistent_cells_of_table4(self, floor_table):
        """Rows of Table 4 that are internally consistent with Eq. 5 are reproduced exactly."""
        assert floor_table.value(V6, 6, rounding="floor") == pytest.approx(1.0)
        assert floor_table.value(V6, 3, rounding="floor") == pytest.approx(0.0)
        assert floor_table.value(V3, 9, rounding="floor") == pytest.approx(1.0)
        assert floor_table.value(V5, 15, rounding="floor") == pytest.approx(0.5)
        assert floor_table.value(V5, 18, rounding="floor") == pytest.approx(1.0)
        assert floor_table.value(V2, 15, rounding="floor") == pytest.approx(0.6)
        assert floor_table.value(V2, 18, rounding="floor") == pytest.approx(1.0)

    def test_rows_are_monotone_in_budget(self, floor_table):
        for vertex in range(8):
            values = [floor_table.value(vertex, 3 * j, rounding="floor") for j in range(1, 13)]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_zero_below_getmin_one_at_max_budget(self, paper_example, floor_table):
        for vertex, get_min in PACE_GET_MIN.items():
            if get_min > 0:
                assert floor_table.value(vertex, get_min - 3, rounding="floor") == 0.0
            assert floor_table.value(vertex, 36, rounding="floor") == pytest.approx(1.0)

    def test_heuristic_admissibility_against_true_probabilities(self, paper_example):
        """U(v, x) must never under-estimate the true best on-time probability from v."""
        pace = paper_example.pace_graph
        heuristic = BudgetSpecificHeuristic(pace, VD, BudgetHeuristicConfig(delta=3, max_budget=36))
        routes_from = {
            VS: [[1, 5, 6, 8], [1, 4, 9, 10], [2, 3, 6, 8]],
            V1: [[5, 6, 8], [4, 9, 10], [4, 7, 8]],
            V2: [[9, 10], [7, 8]],
            V5: [[6, 8]],
            V4: [[3, 6, 8]],
        }
        for vertex, routes in routes_from.items():
            for budget in (12, 18, 24, 30, 36):
                best = max(
                    pace.path_cost_distribution(
                        paper_example.network.path_from_edge_ids(route)
                    ).prob_at_most(budget)
                    for route in routes
                )
                assert heuristic.probability(vertex, budget) >= best - 1e-9

    def test_budget_specific_tighter_than_binary(self, paper_example):
        """The budget-specific heuristic refines the binary one (never looser)."""
        pace = paper_example.pace_graph
        binary = PaceBinaryHeuristic(pace, VD)
        budget_specific = BudgetSpecificHeuristic(
            pace, VD, BudgetHeuristicConfig(delta=3, max_budget=36), binary=binary
        )
        for vertex in range(8):
            for budget in range(0, 39, 3):
                assert (
                    budget_specific.probability(vertex, budget)
                    <= binary.probability(vertex, budget) + 1e-9
                )

    def test_build_seconds_and_storage(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        assert heuristic.build_seconds >= 0
        assert heuristic.storage_bytes() > 0
        assert heuristic.delta == 6

    def test_smaller_delta_gives_no_fewer_cells(self, paper_example):
        fine = build_heuristic_table(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=3, max_budget=36)
        )
        coarse = build_heuristic_table(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=12, max_budget=36)
        )
        assert fine.storage_cells() >= coarse.storage_cells()

    def test_destination_probability_is_always_one(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        assert heuristic.probability(VD, 0) == 1.0
        assert heuristic.probability(VD, -1) == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BudgetHeuristicConfig(delta=0).validate()
        with pytest.raises(ConfigurationError):
            BudgetHeuristicConfig(delta=10, max_budget=5).validate()
        with pytest.raises(ConfigurationError):
            BudgetHeuristicConfig(sweeps=0).validate()
        with pytest.raises(ConfigurationError):
            BudgetHeuristicConfig(grid_rounding="nearest").validate()

    def test_eta_computation(self):
        assert BudgetHeuristicConfig(delta=60, max_budget=3600).eta == 60
        assert BudgetHeuristicConfig(delta=60, max_budget=3601).eta == 61

    def test_sweeps_none_means_convergence(self, paper_example):
        config = BudgetHeuristicConfig(delta=3, max_budget=36, sweeps=None)
        config.validate()
        table = build_heuristic_table(paper_example.pace_graph, VD, config)
        assert table.sweeps_performed >= 1
        # The paper example converges immediately: the fixpoint equals sweeps=2.
        fixed = build_heuristic_table(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=3, max_budget=36, sweeps=2)
        )
        for vertex in range(8):
            for budget in range(0, 39, 3):
                assert table.value(vertex, budget) == pytest.approx(fixed.value(vertex, budget))

    def test_probability_batch_matches_scalar(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=3, max_budget=36)
        )
        budgets = np.array([-3.0, 0.0, 1.0, 3.0, 14.5, 18.0, 36.0, 50.0])
        for vertex in [*range(8), VD]:
            batch = heuristic.probability_batch(vertex, budgets)
            expected = [heuristic.probability(vertex, float(b)) for b in budgets]
            assert batch.tolist() == expected

    def test_binary_probability_batch_matches_scalar(self, paper_example):
        heuristic = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        budgets = np.array([-1.0, 0.0, 18.9, 19.0, 100.0])
        for vertex in range(8):
            batch = heuristic.probability_batch(vertex, budgets)
            assert batch.tolist() == [heuristic.probability(vertex, float(b)) for b in budgets]

    def test_max_prob_vectorized_path_matches_loop(self, paper_example):
        """Supports above the batch threshold take the vectorized maxProb path."""
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=3, max_budget=36)
        )
        wide = Distribution.from_pairs([(float(c), 1.0 / 12.0) for c in range(2, 26, 2)])
        assert len(wide) > 8
        for budget in (10.0, 21.0, 30.0, 60.0):
            expected = sum(
                p * heuristic.probability(V1, budget - c) for c, p in wide.items() if budget - c >= 0
            )
            assert max_prob(wide, heuristic, V1, budget) == pytest.approx(expected, abs=1e-12)
