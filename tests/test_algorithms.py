"""Tests for the deterministic shortest-path utilities."""

from __future__ import annotations

import pytest

from repro.core.errors import NoPathError, UnknownVertexError
from repro.network.algorithms import (
    free_flow_costs,
    shortest_path,
    shortest_path_cost,
    single_source_costs,
)
from repro.network.road_network import RoadNetwork


@pytest.fixture
def line_network() -> RoadNetwork:
    """0 -> 1 -> 2 -> 3 with a costly shortcut 0 -> 3."""
    network = RoadNetwork()
    for vertex in range(4):
        network.add_vertex(vertex, vertex * 100.0, 0.0)
    network.add_edge(0, 1, length=100, speed_limit=36)  # 10 s
    network.add_edge(1, 2, length=100, speed_limit=36)  # 10 s
    network.add_edge(2, 3, length=100, speed_limit=36)  # 10 s
    network.add_edge(0, 3, length=600, speed_limit=36)  # 60 s shortcut that is not shorter
    return network


class TestSingleSource:
    def test_costs_from_source(self, line_network):
        costs = single_source_costs(line_network, 0, free_flow_costs(line_network))
        assert costs[0] == 0
        assert costs[1] == pytest.approx(10)
        assert costs[3] == pytest.approx(30)

    def test_targets_early_exit(self, line_network):
        costs = single_source_costs(line_network, 0, free_flow_costs(line_network), targets={1})
        assert 1 in costs

    def test_unknown_source(self, line_network):
        with pytest.raises(UnknownVertexError):
            single_source_costs(line_network, 99, free_flow_costs(line_network))

    def test_negative_cost_rejected(self, line_network):
        with pytest.raises(ValueError):
            single_source_costs(line_network, 0, lambda e: -1.0)

    def test_unreachable_vertices_missing(self):
        network = RoadNetwork()
        network.add_vertex(0)
        network.add_vertex(1, 10, 0)
        costs = single_source_costs(network, 0, lambda e: 1.0)
        assert 1 not in costs


class TestShortestPath:
    def test_prefers_cheaper_route(self, line_network):
        path, cost = shortest_path(line_network, 0, 3, free_flow_costs(line_network))
        assert cost == pytest.approx(30)
        assert path.vertices == (0, 1, 2, 3)

    def test_cost_function_changes_route(self, line_network):
        # Make the intermediate edges expensive so the direct edge wins.
        path, cost = shortest_path(
            line_network, 0, 3, lambda e: 1000.0 if e.edge_id != 3 else 1.0
        )
        assert path.cardinality == 1
        assert cost == pytest.approx(1.0)

    def test_no_path_raises(self, line_network):
        with pytest.raises(NoPathError):
            shortest_path(line_network, 3, 0, free_flow_costs(line_network))

    def test_same_source_destination_rejected(self, line_network):
        with pytest.raises(NoPathError):
            shortest_path(line_network, 1, 1, free_flow_costs(line_network))

    def test_unknown_vertices_rejected(self, line_network):
        with pytest.raises(UnknownVertexError):
            shortest_path(line_network, 99, 0, free_flow_costs(line_network))
        with pytest.raises(UnknownVertexError):
            shortest_path(line_network, 0, 99, free_flow_costs(line_network))

    def test_shortest_path_cost_matches_path(self, line_network):
        _, cost = shortest_path(line_network, 0, 2, free_flow_costs(line_network))
        assert shortest_path_cost(line_network, 0, 2, free_flow_costs(line_network)) == pytest.approx(cost)

    def test_shortest_path_cost_unreachable(self, line_network):
        with pytest.raises(NoPathError):
            shortest_path_cost(line_network, 3, 0, free_flow_costs(line_network))

    def test_paper_example_expected_route(self, paper_example):
        """On the paper's example, minimum-cost routing (edge minima) gives 25 from vs to vd."""
        pace = paper_example.pace_graph
        path, cost = shortest_path(
            paper_example.network,
            paper_example.source,
            paper_example.destination,
            lambda e: pace.edge_weight(e.edge_id).min(),
        )
        assert cost == pytest.approx(25.0)
        assert path.target == paper_example.destination
