"""Tests for the content-addressed ArtifactStore and the boot-from-disk path.

The store is the offline/online contract: mine once, persist index +
heuristics + manifest, then boot engines (and worker pools) from disk with
zero re-mining.  These tests cover the full round trip — build → save →
``from_artifacts`` → routing parity with the re-mined engine at zero cache
misses and zero mining calls — plus every rejection path: corrupted manifest,
corrupted artifact files, fingerprint mismatches, and format-version drift.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.persistence.store import ArtifactStore, MANIFEST_NAME
from repro.routing import (
    ArtifactRef,
    DatasetRecipe,
    RouterSettings,
    RoutingEngine,
    RoutingQuery,
    RoutingService,
)

RECIPE = DatasetRecipe(dataset="tiny", regime="peak", tau=20)
SETTINGS = RouterSettings(max_budget=900.0, max_explored=2000)
#: A guided method per family: budget tables on both graphs, binary getMin.
METHODS = ("T-BS-60", "V-BS-60", "T-B-P")


@pytest.fixture(scope="module")
def mined():
    """A re-mined engine with prewarmed heuristics, plus its query batch."""
    engine = RECIPE.build_engine(settings=SETTINGS)
    vertices = sorted(engine.pace_graph.network.vertex_ids())
    destinations = [vertices[-1], vertices[len(vertices) // 2]]
    for method in METHODS:
        engine.prewarm(method, destinations)
    queries = [
        RoutingQuery(vertices[0], destinations[0], budget=500.0),
        RoutingQuery(vertices[1], destinations[1], budget=350.0),
        RoutingQuery(vertices[2], destinations[0], budget=250.0),
    ]
    return engine, queries


@pytest.fixture(scope="module")
def store_root(mined, tmp_path_factory):
    engine, _ = mined
    root = tmp_path_factory.mktemp("artifacts") / "store"
    engine.save_artifacts(root, provenance={"mine_seconds": 0.5})
    return root


class TestManifest:
    def test_manifest_records_identity_settings_and_provenance(self, mined, store_root):
        engine, _ = mined
        manifest = ArtifactStore.open(store_root).manifest
        assert manifest.fingerprints["pace"] == engine.pace_graph.content_fingerprint()
        assert manifest.fingerprints["updated"] == engine.updated_graph.content_fingerprint()
        assert manifest.recipe == {
            "dataset": "tiny",
            "regime": "peak",
            "tau": 20,
            "resolution": 5.0,
            "max_cardinality": 4,
            "build_vpaths": True,
        }
        assert manifest.settings["max_budget"] == SETTINGS.max_budget
        assert manifest.provenance["mine_seconds"] == 0.5
        assert "created_at" in manifest.provenance
        assert manifest.provenance["heuristic_entries"] == 6
        # v2 layout: the index plus one individually addressable document per
        # heuristic entry (2 destinations x (T-BS budget, V-BS budget, binary)).
        assert "index" in manifest.artifacts
        assert len(manifest.heuristic_entry_names()) == 6
        assert set(manifest.artifacts) == {"index"} | set(manifest.heuristic_entry_names())
        for entry in manifest.artifacts.values():
            assert entry.format_version == 2
            assert (store_root / entry.filename).stat().st_size == entry.size_bytes

    def test_index_file_is_content_addressed(self, mined, store_root):
        engine, _ = mined
        entry = ArtifactStore.open(store_root).manifest.artifacts["index"]
        assert engine.updated_graph.content_fingerprint()[:16] in entry.filename

    def test_resave_is_idempotent(self, mined, store_root):
        engine, _ = mined
        before = ArtifactStore.open(store_root).manifest
        after = engine.save_artifacts(store_root, provenance={"mine_seconds": 0.5})
        assert after.artifacts == before.artifacts
        files = {p.name for p in store_root.iterdir()}
        assert files == {MANIFEST_NAME} | {e.filename for e in after.artifacts.values()}


class TestBootFromArtifacts:
    def test_boot_parity_zero_misses_zero_mining(self, mined, store_root, monkeypatch):
        """The acceptance path: identical results, no rebuild of anything.

        Mining entry points are poisoned before the boot, so any attempt to
        re-run the offline pipeline fails the test outright; routing parity
        plus ``misses == 0`` then proves every answer came from the persisted
        tables.
        """
        import repro.tpaths.extraction as extraction

        def _no_mining(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("artifact boot must not re-run T-path mining")

        monkeypatch.setattr(extraction, "build_pace_graph", _no_mining)
        monkeypatch.setattr(extraction, "mine_tpaths", _no_mining)
        engine, queries = mined
        booted = RoutingEngine.from_artifacts(store_root)
        assert booted.settings == SETTINGS  # defaults come from the manifest
        for method in METHODS:
            expected = engine.route_many(queries, method=method)
            actual = booted.route_many(queries, method=method)
            for a, b in zip(expected, actual):
                assert b.path.edges == a.path.edges
                assert b.probability == a.probability
        stats = booted.stats()
        assert stats.cache_misses == 0
        assert stats.cache_hits > 0
        assert stats.provenance["source"] == "artifacts"
        assert stats.provenance["path"] == str(store_root)
        assert stats.provenance["fingerprints"]["pace"] == (
            engine.pace_graph.content_fingerprint()
        )

    def test_spec_is_a_pinned_artifact_ref(self, mined, store_root):
        engine, _ = mined
        booted = RoutingEngine.from_artifacts(store_root)
        assert isinstance(booted.spec, ArtifactRef)
        assert booted.spec.path == str(store_root)
        assert booted.spec.pace_fingerprint == engine.pace_graph.content_fingerprint()
        # The ref alone rebuilds an equivalent engine (the worker path).
        rebuilt = booted.spec.build_engine(settings=SETTINGS)
        assert rebuilt.pace_graph.content_fingerprint() == booted.spec.pace_fingerprint

    def test_service_reports_artifact_provenance(self, store_root):
        service = RoutingService(RoutingEngine.from_artifacts(store_root))
        provenance = service.stats().provenance
        assert provenance["source"] == "artifacts"
        assert "created_at" in provenance["build"]

    def test_settings_override_skips_undersized_budget_tables(self, store_root):
        booted = RoutingEngine.from_artifacts(
            store_root, settings=RouterSettings(max_budget=5000.0, max_explored=2000)
        )
        # Budget tables cover 900s only: skipped (rebuilt on demand), binary kept.
        kinds = {key[0] for key in booted.heuristic_cache.snapshot()}
        assert kinds == {"binary"}

    def test_store_without_vpath_closure(self, tmp_path):
        recipe = DatasetRecipe(dataset="tiny", regime="peak", tau=20, build_vpaths=False)
        engine = recipe.build_engine(settings=SETTINGS)
        root = tmp_path / "pace-only"
        engine.save_artifacts(root)
        booted = RoutingEngine.from_artifacts(root)
        assert booted.updated_graph is None
        assert booted.spec.updated_fingerprint is None
        vertices = sorted(booted.pace_graph.network.vertex_ids())
        query = RoutingQuery(vertices[0], vertices[-1], budget=500.0)
        result = booted.route(query, method="T-B-P")
        assert result.path is not None
        with pytest.raises(ConfigurationError, match="updated PACE graph"):
            booted.route(query, method="V-None")


class TestRejection:
    def _copy_store(self, source, destination):
        destination.mkdir(parents=True)
        for item in source.iterdir():
            (destination / item.name).write_bytes(item.read_bytes())
        return destination

    def test_missing_store(self, tmp_path):
        with pytest.raises(DataError, match="no artifact store"):
            ArtifactStore.open(tmp_path / "nowhere")
        with pytest.raises(DataError, match="no artifact store"):
            RoutingEngine.from_artifacts(tmp_path / "nowhere")

    def test_corrupted_manifest_json(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "broken")
        (broken / MANIFEST_NAME).write_text('{"kind": "pace-artifact-store", ', encoding="utf-8")
        with pytest.raises(DataError, match="corrupted artifact manifest"):
            RoutingEngine.from_artifacts(broken)

    def test_manifest_wrong_kind_and_version(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "kindless")
        payload = json.loads((broken / MANIFEST_NAME).read_text())
        payload["kind"] = "something-else"
        (broken / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(DataError, match="not an artifact store manifest"):
            ArtifactStore.open(broken)
        payload["kind"] = "pace-artifact-store"
        payload["format_version"] = 99
        (broken / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(DataError, match=r"version 99 .*supports version 1"):
            ArtifactStore.open(broken)

    def test_manifest_artifacts_field_of_wrong_type(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "nullartifacts")
        payload = json.loads((broken / MANIFEST_NAME).read_text())
        for bad in (None, []):
            payload["artifacts"] = bad
            (broken / MANIFEST_NAME).write_text(json.dumps(payload))
            with pytest.raises(DataError, match="malformed artifact manifest"):
                ArtifactStore.open(broken)

    def test_manifest_missing_fingerprint(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "fingerprintless")
        payload = json.loads((broken / MANIFEST_NAME).read_text())
        del payload["fingerprints"]["pace"]
        (broken / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(DataError, match="'pace' content fingerprint"):
            ArtifactStore.open(broken)

    def test_corrupted_index_file(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "bitrot")
        filename = ArtifactStore.open(broken).manifest.artifacts["index"].filename
        blob = broken / filename
        blob.write_bytes(blob.read_bytes()[:-20] + b"corrupted-tail-bytes")
        # v1 stores fail the whole-file manifest checksum; v2 stores stream
        # through the mmap reader and fail the corrupted column's digest.
        with pytest.raises(DataError, match="checksum"):
            RoutingEngine.from_artifacts(broken)

    def test_fingerprint_mismatch_between_manifest_and_index(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "swapped")
        payload = json.loads((broken / MANIFEST_NAME).read_text())
        payload["fingerprints"]["pace"] = "0" * 32
        (broken / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(DataError, match="different PACE graph"):
            RoutingEngine.from_artifacts(broken)

    def test_artifact_ref_pins_fingerprints(self, store_root):
        ref = ArtifactRef(path=str(store_root), pace_fingerprint="f" * 32)
        with pytest.raises(DataError, match="different PACE graph"):
            ref.build_engine(settings=SETTINGS)

    def test_missing_artifact_file(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "gone")
        filename = ArtifactStore.open(broken).manifest.artifacts["index"].filename
        (broken / filename).unlink()
        with pytest.raises(DataError, match="missing"):
            RoutingEngine.from_artifacts(broken)

    def test_incompatible_manifest_settings(self, store_root, tmp_path):
        broken = self._copy_store(store_root, tmp_path / "settings")
        payload = json.loads((broken / MANIFEST_NAME).read_text())
        payload["settings"]["no_such_knob"] = 1
        (broken / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(DataError, match="RouterSettings"):
            RoutingEngine.from_artifacts(broken)


class TestResaveSafety:
    def test_empty_cache_resave_preserves_persisted_heuristics(self, tmp_path):
        """A saver with nothing to contribute must not destroy the prewarm investment.

        A store holding only budget tables, booted with an overridden (larger)
        ``max_budget``, skips every persisted table — the engine's cache is
        empty.  Re-saving the store from such an engine must keep the existing
        heuristic documents: the graphs are unchanged, so they are still
        valid (for any consumer whose settings the tables do cover).
        """
        engine = RECIPE.build_engine(settings=SETTINGS)
        vertices = sorted(engine.pace_graph.network.vertex_ids())
        engine.prewarm("T-BS-60", [vertices[-1]])  # budget tables only
        root = tmp_path / "budget-store"
        engine.save_artifacts(root)
        before = ArtifactStore.open(root).manifest
        names = before.heuristic_entry_names()
        assert names, "the prewarmed table must have been persisted"

        overridden = RoutingEngine.from_artifacts(
            root, settings=RouterSettings(max_budget=50000.0, max_explored=2000)
        )
        assert len(overridden.heuristic_cache) == 0  # every table was skipped
        overridden.save_artifacts(root)
        after = ArtifactStore.open(root).manifest
        assert after.heuristic_entry_names() == names
        for name in names:
            assert after.artifacts[name] == before.artifacts[name]
            assert (root / after.artifacts[name].filename).exists()
