"""Integration tests for the experiment drivers (small-scale end-to-end runs)."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    ExperimentContext,
    ExperimentScale,
    fig10a_tpath_counts,
    fig10cd_vpaths,
    fig11_binary_precompute,
    fig12_budget_precompute,
    fig19_case_study,
    routing_report_by_budget,
    routing_report_by_distance,
    table7_data_statistics,
    table8_binary_precompute_total,
    table10_method_comparison,
)


@pytest.fixture(scope="module")
def context(small_dataset):
    scale = ExperimentScale(
        tau=20,
        taus=(10, 20),
        deltas=(60.0, 240.0),
        pairs_per_bucket=1,
        budget_fractions=(0.75, 1.25),
        sample_destinations=2,
        max_explored=1500,
        accuracy_folds=3,
    )
    return ExperimentContext.build(small_dataset, scale)


class TestContext:
    def test_context_builds_both_regimes(self, context):
        assert set(context.pace_graphs) == {"peak", "off-peak"}
        assert set(context.updated_graphs) == {"peak", "off-peak"}
        assert all(len(w) > 0 for w in context.workloads.values())

    def test_routers_are_cached(self, context):
        assert context.router("peak", "T-B-P") is context.router("peak", "T-B-P")

    def test_routing_records_cached_and_complete(self, context):
        records = context.routing_records("peak", "T-B-P")
        assert len(records) == len(context.workloads["peak"])
        assert context.routing_records("peak", "T-B-P") is records


class TestDrivers:
    def test_table7(self, context, small_dataset):
        report = table7_data_statistics([small_dataset])
        assert report.experiment == "Table 7"
        assert len(report.rows) == 7
        assert "Number of vertices" in report.render()

    def test_fig10a_counts_decrease_with_tau(self, context):
        report = fig10a_tpath_counts(context)
        totals = [row[1] for row in report.rows]
        assert totals == sorted(totals, reverse=True)

    def test_fig10cd_structure(self, context):
        report = fig10cd_vpaths(context)
        assert len(report.rows) == len(context.scale.taus)
        for row in report.rows:
            assert row[6] >= 0  # average out-degree

    def test_fig11_orders_binary_variants(self, context):
        report = fig11_binary_precompute(context)
        methods = [row[0] for row in report.rows]
        assert methods == ["T-B-EU", "T-B-E", "T-B-P"]
        runtimes = {row[0]: row[1] for row in report.rows}
        assert runtimes["T-B-EU"] <= runtimes["T-B-P"] + 1e-6

    def test_table8_covers_both_regimes(self, context):
        report = table8_binary_precompute_total(context)
        regimes = {row[0] for row in report.rows}
        assert regimes == {"peak", "off-peak"}

    def test_fig12_storage_grows_with_smaller_delta(self, context):
        report = fig12_budget_precompute(context)
        storage = {row[0]: row[2] for row in report.rows}
        assert storage[60] >= storage[240]

    def test_routing_reports_have_one_row_per_group(self, context):
        methods = ("T-B-P", "V-BS-60")
        by_distance = routing_report_by_distance(
            context, methods, regime="peak", experiment="Fig 13", title="t"
        )
        assert len(by_distance.rows) == len(context.workloads["peak"].bucket_labels)
        by_budget = routing_report_by_budget(
            context, methods, regime="peak", experiment="Fig 13", title="t"
        )
        assert len(by_budget.rows) == len(context.workloads["peak"].budget_fractions())

    def test_guided_routing_is_faster_than_baseline(self, context):
        """The core claim of the paper at small scale: heuristics beat T-None."""
        baseline = context.routing_records("peak", "T-None")
        guided = context.routing_records("peak", "V-BS-60")
        baseline_mean = sum(r.runtime_seconds for r in baseline) / len(baseline)
        guided_mean = sum(r.runtime_seconds for r in guided) / len(guided)
        assert guided_mean < baseline_mean

    def test_table10_structure(self, context):
        report = table10_method_comparison(context)
        methods = [row[0] for row in report.rows]
        assert "V-BS-60" in methods and "T-B-EU" in methods
        for row in report.rows:
            assert row[1] >= 0 and row[2] >= 0 and row[3] >= 0

    def test_fig19_stochastic_at_least_as_good_as_baseline(self, context):
        report = fig19_case_study(context)
        for row in report.rows:
            assert row[2] >= row[3] - 1e-6

    def test_reports_render_to_text(self, context):
        text = fig11_binary_precompute(context).render()
        assert "Figure 11" in text and "runtime" in text
