"""Tests for the evaluation harness: workloads, accuracy, reporting."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.evaluation.accuracy import evaluate_accuracy, path_groups
from repro.evaluation.reporting import format_table, render_report, write_report
from repro.evaluation.workloads import WorkloadConfig, generate_workload


class TestWorkloads:
    @pytest.fixture(scope="class")
    def workload(self, small_edge_graph, small_dataset):
        return generate_workload(
            small_edge_graph,
            list(small_dataset.peak),
            WorkloadConfig(pairs_per_bucket=2, budget_fractions=(0.5, 1.0, 1.5), seed=5),
        )

    def test_every_pair_gets_every_budget_level(self, workload):
        assert len(workload) % 3 == 0
        assert workload.budget_fractions() == (0.5, 1.0, 1.5)

    def test_buckets_are_labelled_and_ordered(self, workload):
        assert len(workload.bucket_labels) == 4
        assert all("km" in label for label in workload.bucket_labels)

    def test_budgets_scale_with_fraction(self, workload):
        by_pair = {}
        for item in workload.queries:
            key = (item.query.source, item.query.destination)
            by_pair.setdefault(key, {})[item.budget_fraction] = item.query.budget
        for budgets in by_pair.values():
            assert budgets[0.5] < budgets[1.0] < budgets[1.5]
            assert budgets[1.0] == pytest.approx(budgets[0.5] * 2.0, rel=1e-6)

    def test_budget_equals_fraction_of_least_expected_time(self, workload):
        for item in workload.queries:
            assert item.query.budget == pytest.approx(
                item.least_expected_time * item.budget_fraction
            )

    def test_by_bucket_and_by_fraction_filters(self, workload):
        bucket = workload.bucket_labels[0]
        assert all(q.distance_bucket == bucket for q in workload.by_bucket(bucket))
        assert all(q.budget_fraction == 0.5 for q in workload.by_budget_fraction(0.5))

    def test_queries_are_routable_pairs(self, workload, small_dataset):
        for item in workload.queries:
            assert small_dataset.network.has_vertex(item.query.source)
            assert small_dataset.network.has_vertex(item.query.destination)
            assert item.query.source != item.query.destination

    def test_deterministic_given_seed(self, small_edge_graph, small_dataset):
        config = WorkloadConfig(pairs_per_bucket=2, seed=11)
        a = generate_workload(small_edge_graph, list(small_dataset.peak), config)
        b = generate_workload(small_edge_graph, list(small_dataset.peak), config)
        assert [(q.query.source, q.query.destination, q.query.budget) for q in a.queries] == [
            (q.query.source, q.query.destination, q.query.budget) for q in b.queries
        ]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(pairs_per_bucket=0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(budget_fractions=()).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(budget_fractions=(-0.5,)).validate()


class TestAccuracy:
    def test_path_groups_requires_support(self, small_dataset):
        groups = path_groups(list(small_dataset.peak), min_support=5)
        assert all(len(group) >= 5 for group in groups.values())

    def test_accuracy_result_structure(self, small_dataset):
        result = evaluate_accuracy(
            small_dataset.network,
            list(small_dataset.peak),
            tau=15,
            folds=3,
            max_paths_per_fold=10,
        )
        assert result.tau == 15
        assert result.evaluated_paths > 0
        assert result.mean_kl >= 0
        assert result.ci_low <= result.mean_kl <= result.ci_high

    def test_kl_is_finite(self, small_dataset):
        result = evaluate_accuracy(
            small_dataset.network, list(small_dataset.peak), tau=20, folds=3, max_paths_per_fold=10
        )
        assert result.mean_kl < 10.0


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(["name", "value"], [["a", 1.5], ["long-name", 20000.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_number_rendering(self):
        table = format_table(["x"], [[0.12345], [1234.5], [0.0]])
        assert "0.1234" in table or "0.1235" in table
        assert "1,234" in table or "1,235" in table

    def test_render_report_contains_title(self):
        report = render_report("My title", ["a"], [[1]])
        assert report.startswith("My title")

    def test_write_report(self, tmp_path, capsys):
        path = write_report("hello", "report.txt", directory=tmp_path, echo=True)
        assert path.read_text() == "hello"
        assert "hello" in capsys.readouterr().out

    def test_write_report_silent(self, tmp_path, capsys):
        write_report("quiet", "report.txt", directory=tmp_path, echo=False)
        assert capsys.readouterr().out == ""
