"""Shared fixtures for the test suite.

Heavy objects (the paper's running example, a small synthetic dataset and the
models mined from it) are built once per session; individual tests treat them
as read-only.
"""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import build_paper_example
from repro.datasets.synthetic import tiny_dataset
from repro.routing import DatasetRecipe, RouterSettings
from repro.tpaths.extraction import TPathMinerConfig, build_edge_graph, build_pace_graph
from repro.vpaths.updated_graph import UpdatedPaceGraph


@pytest.fixture(scope="session")
def paper_example():
    """The paper's Figure 2/3 running example (network, EDGE graph, PACE graph)."""
    return build_paper_example()


@pytest.fixture(scope="session")
def small_dataset():
    """A deterministic 6x6 synthetic city with ~400 trajectories."""
    return tiny_dataset()


@pytest.fixture(scope="session")
def small_miner_config():
    """Mining configuration used for the small dataset fixtures."""
    return TPathMinerConfig(tau=20, max_cardinality=4, resolution=5.0)


@pytest.fixture(scope="session")
def small_edge_graph(small_dataset, small_miner_config):
    """EDGE model mined from the small dataset's peak trajectories."""
    return build_edge_graph(small_dataset.network, list(small_dataset.peak), small_miner_config)


@pytest.fixture(scope="session")
def small_pace_graph(small_dataset, small_miner_config):
    """PACE model mined from the small dataset's peak trajectories."""
    return build_pace_graph(small_dataset.network, list(small_dataset.peak), small_miner_config)


@pytest.fixture(scope="session")
def small_updated_graph(small_pace_graph):
    """The V-path closure of the small PACE graph."""
    updated, _ = UpdatedPaceGraph.build(small_pace_graph)
    return updated


@pytest.fixture(scope="session")
def tiny_artifact_store(tmp_path_factory):
    """A persisted tiny-city artifact store, built once per session.

    Used by the serving-tier tests: servers (and their process-pool workers)
    boot from this store in milliseconds.  Treat it as READ-ONLY — tests that
    mutate the store (hot-reload scenarios) must copy it first.
    """
    root = tmp_path_factory.mktemp("serving-store") / "store"
    engine = DatasetRecipe(dataset="tiny", regime="peak", tau=20).build_engine(
        settings=RouterSettings(max_budget=900.0, max_explored=2000)
    )
    engine.save_artifacts(root, provenance={"builder": "tests"})
    return root
