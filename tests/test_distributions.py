"""Unit and property-based tests for discrete cost distributions."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import PROBABILITY_TOLERANCE, Distribution
from repro.core.errors import DistributionError


# --------------------------------------------------------------------------- #
# Construction and validation
# --------------------------------------------------------------------------- #
class TestConstruction:
    def test_from_pairs_orders_support(self):
        d = Distribution.from_pairs([(10, 0.1), (8, 0.9)])
        assert d.support == (8.0, 10.0)
        assert d.probabilities == (0.9, 0.1)

    def test_from_mapping(self):
        d = Distribution.from_mapping({5: 0.4, 7: 0.6})
        assert d.pdf(5) == pytest.approx(0.4)
        assert d.pdf(7) == pytest.approx(0.6)

    def test_point_mass(self):
        d = Distribution.point(12.5)
        assert d.support == (12.5,)
        assert d.expectation() == pytest.approx(12.5)
        assert d.variance() == pytest.approx(0.0)

    def test_duplicate_values_are_merged(self):
        d = Distribution.from_pairs([(5, 0.3), (5, 0.2), (9, 0.5)])
        assert d.pdf(5) == pytest.approx(0.5)

    def test_zero_probability_entries_are_dropped(self):
        d = Distribution.from_pairs([(5, 0.0), (9, 1.0)])
        assert d.support == (9.0,)

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            Distribution.from_pairs([])

    def test_rejects_all_zero_probabilities(self):
        with pytest.raises(DistributionError):
            Distribution.from_pairs([(5, 0.0)])

    def test_rejects_negative_cost(self):
        with pytest.raises(DistributionError):
            Distribution.from_pairs([(-1, 1.0)])

    def test_rejects_negative_probability(self):
        with pytest.raises(DistributionError):
            Distribution.from_pairs([(1, 1.5), (2, -0.5)])

    def test_rejects_unnormalised_without_flag(self):
        with pytest.raises(DistributionError):
            Distribution.from_pairs([(1, 0.4), (2, 0.4)])

    def test_normalise_flag(self):
        d = Distribution.from_pairs([(1, 2.0), (2, 6.0)], normalise=True)
        assert d.pdf(1) == pytest.approx(0.25)
        assert d.pdf(2) == pytest.approx(0.75)

    def test_rejects_non_finite_cost(self):
        with pytest.raises(DistributionError):
            Distribution.from_pairs([(math.inf, 1.0)])

    def test_rejects_non_finite_cost_on_large_inputs(self):
        """Regression: the vectorized path must not let the tolerance merge absorb NaN.

        A NaN gap compares False against the merge tolerance, so validating
        after merging would silently fold a NaN cost into the previous support
        group once the input exceeds the scalar-path threshold.
        """
        n = 40
        pairs = [(float(i), 1.0 / (n + 1)) for i in range(n)]
        for bad in (math.nan, math.inf, -1.0):
            with pytest.raises(DistributionError):
                Distribution.from_pairs([*pairs, (bad, 1.0 / (n + 1))], normalise=True)

    def test_from_samples_bins_on_resolution(self):
        d = Distribution.from_samples([10.2, 9.8, 20.1, 19.9], resolution=1.0)
        assert d.pdf(10) == pytest.approx(0.5)
        assert d.pdf(20) == pytest.approx(0.5)

    def test_from_samples_rejects_empty(self):
        with pytest.raises(DistributionError):
            Distribution.from_samples([])

    def test_from_samples_rejects_bad_resolution(self):
        with pytest.raises(DistributionError):
            Distribution.from_samples([1.0], resolution=0.0)


# --------------------------------------------------------------------------- #
# Summaries and lookups
# --------------------------------------------------------------------------- #
class TestSummaries:
    def test_table1_expectations(self):
        """The paper's Table 1: P_A averages 49 minutes, P_B averages 52."""
        p_a = Distribution.from_pairs([(40, 0.5), (50, 0.2), (60, 0.2), (70, 0.1)])
        p_b = Distribution.from_pairs([(50, 0.8), (60, 0.2)])
        assert p_a.expectation() == pytest.approx(49.0)
        assert p_b.expectation() == pytest.approx(52.0)

    def test_table1_on_time_probabilities(self):
        """With a 60-minute budget P_A is riskier than P_B despite its lower mean."""
        p_a = Distribution.from_pairs([(40, 0.5), (50, 0.2), (60, 0.2), (70, 0.1)])
        p_b = Distribution.from_pairs([(50, 0.8), (60, 0.2)])
        assert p_a.prob_at_most(60) == pytest.approx(0.9)
        assert p_b.prob_at_most(60) == pytest.approx(1.0)

    def test_cdf_between_support_points(self):
        d = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        assert d.cdf(7.9) == pytest.approx(0.0)
        assert d.cdf(8) == pytest.approx(0.9)
        assert d.cdf(9.5) == pytest.approx(0.9)
        assert d.cdf(11) == pytest.approx(1.0)

    def test_min_max(self):
        d = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        assert d.min() == 8
        assert d.max() == 10

    def test_pdf_missing_value_is_zero(self):
        d = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        assert d.pdf(9) == 0.0

    def test_quantile(self):
        d = Distribution.from_pairs([(5, 0.25), (10, 0.5), (20, 0.25)])
        assert d.quantile(0.2) == 5
        assert d.quantile(0.5) == 10
        assert d.quantile(1.0) == 20

    def test_quantile_rejects_out_of_range(self):
        d = Distribution.point(5)
        with pytest.raises(DistributionError):
            d.quantile(1.5)

    def test_variance(self):
        d = Distribution.from_pairs([(0, 0.5), (10, 0.5)])
        assert d.variance() == pytest.approx(25.0)

    def test_len_and_iteration(self):
        d = Distribution.from_pairs([(1, 0.5), (2, 0.5)])
        assert len(d) == 2
        assert list(d) == [(1.0, 0.5), (2.0, 0.5)]

    def test_equality_and_hash(self):
        a = Distribution.from_pairs([(1, 0.5), (2, 0.5)])
        b = Distribution.from_pairs([(2, 0.5), (1, 0.5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_contains_pairs(self):
        d = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        assert "8" in repr(d) and "0.9" in repr(d)


# --------------------------------------------------------------------------- #
# Arithmetic
# --------------------------------------------------------------------------- #
class TestArithmetic:
    def test_convolution_of_paper_edges(self):
        """Convolving e1 and e4 of the paper example gives the EDGE-style estimate."""
        e1 = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        e4 = Distribution.from_pairs([(6, 0.2), (10, 0.8)])
        combined = e1.convolve(e4)
        assert combined.pdf(14) == pytest.approx(0.18)
        assert combined.pdf(16) == pytest.approx(0.02)
        assert combined.pdf(18) == pytest.approx(0.72)
        assert combined.pdf(20) == pytest.approx(0.08)

    def test_convolution_preserves_expectation(self):
        a = Distribution.from_pairs([(3, 0.5), (5, 0.5)])
        b = Distribution.from_pairs([(10, 0.2), (20, 0.8)])
        assert (a + b).expectation() == pytest.approx(a.expectation() + b.expectation())

    def test_convolution_with_point_shifts(self):
        a = Distribution.from_pairs([(3, 0.5), (5, 0.5)])
        shifted = a.convolve(Distribution.point(7))
        assert shifted.support == (10.0, 12.0)

    def test_convolution_max_support_compresses(self):
        a = Distribution.from_samples(list(range(1, 30)))
        b = Distribution.from_samples(list(range(1, 30)))
        c = a.convolve(b, max_support=16)
        assert len(c) <= 16
        assert abs(c.expectation() - (a.expectation() + b.expectation())) < 2.0

    def test_shift(self):
        d = Distribution.from_pairs([(5, 1.0)]).shift(3)
        assert d.support == (8.0,)

    def test_shift_negative_guard(self):
        with pytest.raises(DistributionError):
            Distribution.point(2).shift(-5)

    def test_scale(self):
        d = Distribution.from_pairs([(4, 0.5), (8, 0.5)]).scale(0.5)
        assert d.support == (2.0, 4.0)

    def test_scale_rejects_non_positive(self):
        with pytest.raises(DistributionError):
            Distribution.point(1).scale(0)

    def test_rebin(self):
        d = Distribution.from_pairs([(9, 0.5), (11, 0.5)]).rebin(10)
        assert d.support == (10.0,)

    def test_compress_preserves_mass(self):
        d = Distribution.from_samples(list(range(100)), resolution=1.0)
        compressed = d.compress(10)
        assert len(compressed) <= 10
        assert sum(compressed.probabilities) == pytest.approx(1.0)

    def test_compress_single_value(self):
        d = Distribution.from_pairs([(1, 0.3), (2, 0.3), (3, 0.4)])
        single = d.compress(1)
        assert len(single) == 1

    def test_truncate_above_collapses_tail(self):
        d = Distribution.from_pairs([(5, 0.5), (50, 0.3), (100, 0.2)])
        truncated = d.truncate_above(10)
        assert truncated.prob_at_most(10) == pytest.approx(0.5)
        assert len(truncated) == 2

    def test_truncate_above_noop_when_within_budget(self):
        d = Distribution.from_pairs([(5, 0.5), (7, 0.5)])
        assert d.truncate_above(10) is d


# --------------------------------------------------------------------------- #
# Support merging (regression: near-duplicate floats must merge)
# --------------------------------------------------------------------------- #
class TestCloseValueMerging:
    def test_float_noise_duplicates_are_merged(self):
        """0.1 + 0.2 and 0.3 differ only by float rounding noise and must merge."""
        d = Distribution.from_pairs([(0.1 + 0.2, 0.5), (0.3, 0.5)])
        assert len(d) == 1
        assert d.pdf(0.3) == pytest.approx(1.0)

    def test_convolution_chains_do_not_bloat_support(self):
        """Convolving fractional supports must not keep near-identical sums apart.

        0.1 + 0.2 and 0.3 + 0.0 produce bit-different floats for the same
        cost; without tolerance merging the result would carry 4 support
        values and defeat ``max_support`` bounding on long chains.
        """
        a = Distribution.from_pairs([(0.1, 0.5), (0.3, 0.5)])
        b = Distribution.from_pairs([(0.0, 0.5), (0.2, 0.5)])
        convolved = a.convolve(b)
        assert len(convolved) == 3
        assert convolved.pdf(0.3) == pytest.approx(0.5)

    def test_well_separated_values_are_not_merged(self):
        d = Distribution.from_pairs([(1.0, 0.5), (1.0 + 1e-6, 0.5)])
        assert len(d) == 2

    def test_merge_tolerance_scales_with_magnitude(self):
        # The tolerance is relative (1e-9 of the value): at magnitude 1e6 a gap
        # of 1e-4 is float noise and merges, while a real gap of 10 does not.
        d = Distribution.from_pairs([(1e6, 0.5), (1e6 + 1e-4, 0.5)])
        assert len(d) == 1
        separated = Distribution.from_pairs([(1e6, 0.5), (1e6 + 10.0, 0.5)])
        assert len(separated) == 2


# --------------------------------------------------------------------------- #
# Dominance, divergence, sampling
# --------------------------------------------------------------------------- #
class TestComparisons:
    def test_dominance_basic(self):
        fast = Distribution.from_pairs([(5, 0.8), (10, 0.2)])
        slow = Distribution.from_pairs([(5, 0.2), (10, 0.8)])
        assert fast.stochastically_dominates(slow)
        assert not slow.stochastically_dominates(fast)

    def test_dominance_is_reflexive_but_not_strict(self):
        d = Distribution.from_pairs([(5, 0.5), (6, 0.5)])
        assert d.stochastically_dominates(d)
        assert not d.stochastically_dominates(d, strict=True)

    def test_dominance_incomparable(self):
        a = Distribution.from_pairs([(1, 0.5), (10, 0.5)])
        b = Distribution.from_pairs([(4, 1.0)])
        assert not a.stochastically_dominates(b)
        assert not b.stochastically_dominates(a)

    def test_dominance_preserved_by_convolution(self):
        """The EDGE-model pruning argument: dominance survives adding the same edge."""
        fast = Distribution.from_pairs([(5, 0.8), (10, 0.2)])
        slow = Distribution.from_pairs([(5, 0.2), (10, 0.8)])
        extension = Distribution.from_pairs([(3, 0.5), (4, 0.5)])
        assert (fast + extension).stochastically_dominates(slow + extension)

    def test_kl_divergence_zero_for_identical(self):
        d = Distribution.from_pairs([(5, 0.5), (10, 0.5)])
        assert d.kl_divergence(d) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive_for_different(self):
        a = Distribution.from_pairs([(5, 0.9), (10, 0.1)])
        b = Distribution.from_pairs([(5, 0.1), (10, 0.9)])
        assert a.kl_divergence(b) > 0.5

    def test_kl_divergence_handles_missing_support(self):
        a = Distribution.from_pairs([(5, 0.5), (10, 0.5)])
        b = Distribution.from_pairs([(5, 1.0)])
        assert math.isfinite(a.kl_divergence(b))

    def test_sampling_matches_distribution(self):
        d = Distribution.from_pairs([(1, 0.25), (2, 0.75)])
        rng = random.Random(5)
        samples = d.sample(rng, 4000)
        assert abs(samples.count(2) / len(samples) - 0.75) < 0.05

    def test_sample_negative_size_rejected(self):
        with pytest.raises(DistributionError):
            Distribution.point(1).sample(random.Random(0), -1)

    def test_sample_zero_size(self):
        assert Distribution.point(1).sample(random.Random(0), 0) == []

    def test_sample_inverts_cdf_exactly(self):
        """Sampling is searchsorted on the precomputed CDF (regression).

        The old linear scan re-accumulated probabilities with a running float
        sum and fell back to the last value when the accumulator stayed below
        the uniform draw; the samples must instead come from the exact stored
        CDF boundaries.
        """

        class FakeRng:
            def __init__(self, draws):
                self._draws = list(draws)

            def random(self):
                return self._draws.pop(0)

        d = Distribution.from_pairs([(1, 0.3), (2, 0.5), (3, 0.2)])
        cdf_first = d.probabilities[0]
        draws = [0.0, cdf_first, cdf_first + 1e-12, 0.999, 1.0 - 2**-53]
        samples = d.sample(FakeRng(draws), len(draws))
        assert samples == [1.0, 1.0, 2.0, 3.0, 3.0]

    def test_sample_tail_when_probabilities_sum_just_under_one(self):
        """Draws beyond the stored total mass must map to the largest cost."""

        class AlmostOneRng:
            def random(self):
                return 1.0 - 2**-53

        # Accepted as normalised (within tolerance) and renormalised internally.
        d = Distribution.from_pairs([(5, 0.25), (7, 0.75 - 5e-7)])
        assert d.sample(AlmostOneRng(), 3) == [7.0, 7.0, 7.0]

    def test_sample_accepts_numpy_generator(self):
        import numpy as np

        d = Distribution.from_pairs([(1, 0.25), (2, 0.75)])
        samples = d.sample(np.random.default_rng(7), 2000)
        assert len(samples) == 2000
        assert set(samples) <= {1.0, 2.0}
        assert abs(samples.count(2.0) / 2000 - 0.75) < 0.05

    def test_is_close(self):
        a = Distribution.from_pairs([(1, 0.5), (2, 0.5)])
        b = Distribution.from_pairs([(1, 0.5000000001), (2, 0.4999999999)])
        assert a.is_close(b)


# --------------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------------- #
def _distribution_strategy(max_size: int = 6):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=max_size,
    ).map(lambda pairs: Distribution.from_pairs(pairs, normalise=True))


@settings(max_examples=60, deadline=None)
@given(_distribution_strategy())
def test_probabilities_always_sum_to_one(distribution):
    assert sum(distribution.probabilities) == pytest.approx(1.0, abs=PROBABILITY_TOLERANCE * 10)


@settings(max_examples=60, deadline=None)
@given(_distribution_strategy())
def test_cdf_is_monotone(distribution):
    points = sorted(set(distribution.support))
    values = [distribution.cdf(p) for p in points]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(_distribution_strategy(), _distribution_strategy())
def test_convolution_is_commutative(a, b):
    left = a.convolve(b)
    right = b.convolve(a)
    assert left.support == right.support
    for value in left.support:
        assert left.pdf(value) == pytest.approx(right.pdf(value), abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(_distribution_strategy(), _distribution_strategy())
def test_convolution_bounds(a, b):
    combined = a.convolve(b)
    assert combined.min() == pytest.approx(a.min() + b.min())
    assert combined.max() == pytest.approx(a.max() + b.max())
    assert combined.expectation() == pytest.approx(a.expectation() + b.expectation(), rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(_distribution_strategy())
def test_self_dominance_always_holds(distribution):
    assert distribution.stochastically_dominates(distribution)


@settings(max_examples=40, deadline=None)
@given(_distribution_strategy(), st.integers(min_value=1, max_value=5))
def test_compress_keeps_normalisation_and_mean(distribution, max_support):
    compressed = distribution.compress(max_support)
    assert len(compressed) <= max_support
    assert sum(compressed.probabilities) == pytest.approx(1.0, abs=1e-9)
    span = max(distribution.max() - distribution.min(), 1.0)
    assert abs(compressed.expectation() - distribution.expectation()) <= span


@settings(max_examples=40, deadline=None)
@given(_distribution_strategy(), st.floats(min_value=0, max_value=250, allow_nan=False))
def test_kl_divergence_non_negative(distribution, _):
    other = distribution.rebin(5.0)
    assert distribution.kl_divergence(other) >= -1e-9
