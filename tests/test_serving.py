"""Tests for the serving tier: building blocks, wire extensions, HTTP surface.

The chaos scenarios (worker crashes, queue saturation, deadline expiry,
corrupt reloads) live in ``test_serving_faults.py``; this module covers the
components in isolation — deadlines, fault switchboard, admission control —
the wire-format extensions (``overloaded`` / ``deadline_exceeded`` codes,
``retry_after_ms``, ``deadline_ms``), the silent-degradation regression on
:meth:`RoutingService.stats`, and the happy-path HTTP API of
:class:`~repro.serving.server.RouteServer`.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.routing import RoutingEngine, RoutingService
from repro.routing.service import ERROR_CODES, RouteError, RouteRequest
from repro.serving import (
    AdmissionController,
    Deadline,
    FaultInjector,
    RouteServer,
    ServerConfig,
)


def http_get(url: str, path: str) -> tuple[int, dict | list]:
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_post(url: str, path: str, payload: object, *, raw: bytes | None = None) -> tuple[int, dict | list]:
    data = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=data, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #
class TestDeadline:
    def test_counts_down_on_the_injected_clock(self):
        now = [100.0]
        deadline = Deadline.after_ms(250.0, clock=lambda: now[0])
        assert deadline.remaining_seconds() == pytest.approx(0.25)
        assert not deadline.expired()
        now[0] += 0.2
        assert deadline.remaining_seconds() == pytest.approx(0.05)
        now[0] += 0.1
        assert deadline.expired()
        assert deadline.remaining_seconds() == pytest.approx(-0.05)

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("inf"), float("nan")])
    def test_rejects_non_positive_or_non_finite_budgets(self, bad):
        with pytest.raises(ConfigurationError):
            Deadline.after_ms(bad)


# --------------------------------------------------------------------------- #
# Fault switchboard
# --------------------------------------------------------------------------- #
class TestFaultInjector:
    def test_disabled_injector_never_arms_and_never_fires(self):
        faults = FaultInjector()
        with pytest.raises(ConfigurationError, match="disabled"):
            faults.arm("fill-queue")
        assert faults.take("fill-queue") is False

    def test_armed_count_is_consumed_exactly(self):
        faults = FaultInjector(enabled=True)
        faults.arm("crash-next-worker", count=2)
        assert faults.take("crash-next-worker") is True
        assert faults.take("crash-next-worker") is True
        assert faults.take("crash-next-worker") is False
        snapshot = faults.snapshot()
        assert snapshot["fired"] == {"crash-next-worker": 2}
        assert snapshot["armed"] == {}

    def test_rejects_unknown_faults_and_bad_parameters(self):
        faults = FaultInjector(enabled=True)
        with pytest.raises(ConfigurationError, match="unknown fault"):
            faults.arm("meteor-strike")
        with pytest.raises(ConfigurationError):
            faults.arm("fill-queue", count=0)
        with pytest.raises(ConfigurationError):
            faults.arm("delay-response", delay_seconds=-1.0)

    def test_delay_and_disarm(self):
        faults = FaultInjector(enabled=True)
        faults.arm("delay-response", delay_seconds=0.25)
        assert faults.delay_seconds() == pytest.approx(0.25)
        faults.disarm_all()
        assert faults.take("delay-response") is False


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmissionController:
    def test_rejects_beyond_capacity_and_recovers(self):
        admission = AdmissionController(max_concurrency=1, queue_limit=1)
        release = threading.Event()
        running = threading.Event()

        def blocker():
            running.set()
            release.wait(timeout=30)
            return "done"

        try:
            first = admission.admit(blocker)
            assert first is not None
            assert running.wait(timeout=10)
            queued = admission.admit(lambda: "queued")
            assert queued is not None  # fills the queue slot
            assert admission.admit(lambda: "overflow") is None  # over capacity
            snapshot = admission.snapshot()
            assert snapshot["rejected"] == 1
            assert snapshot["admitted"] == 2
            assert snapshot["in_flight"] == 2
            assert snapshot["queue_depth"] == 1
            release.set()
            assert first.result(timeout=10) == "done"
            assert queued.result(timeout=10) == "queued"
            # Capacity freed: admission works again.
            assert admission.admit(lambda: "again") is not None
        finally:
            release.set()
            admission.shutdown()
        assert admission.snapshot()["in_flight"] == 0

    def test_retry_hint_is_bounded_and_integer(self):
        admission = AdmissionController(max_concurrency=2, queue_limit=4)
        try:
            hint = admission.retry_after_hint_ms()
            assert isinstance(hint, int)
            assert 50 <= hint <= 5_000
        finally:
            admission.shutdown()

    def test_validates_limits(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_concurrency=0, queue_limit=1)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_concurrency=1, queue_limit=-1)

    def test_admit_after_shutdown_is_a_rejection(self):
        admission = AdmissionController(max_concurrency=1, queue_limit=1)
        admission.shutdown()
        assert admission.admit(lambda: "late") is None
        snapshot = admission.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["in_flight"] == 0


# --------------------------------------------------------------------------- #
# Wire-format extensions
# --------------------------------------------------------------------------- #
class TestWireExtensions:
    def test_taxonomy_gained_the_serving_codes(self):
        assert "overloaded" in ERROR_CODES
        assert "deadline_exceeded" in ERROR_CODES

    def test_retry_after_ms_round_trips(self):
        error = RouteError("overloaded", "full", retry_after_ms=125)
        payload = error.to_dict()
        assert payload["retry_after_ms"] == 125
        assert RouteError.from_dict(payload) == error
        # Omitted from the wire form when absent.
        assert "retry_after_ms" not in RouteError("not_found", "nope").to_dict()

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "100"])
    def test_retry_after_ms_must_be_a_non_negative_integer(self, bad):
        with pytest.raises((ConfigurationError, DataError)):
            RouteError("overloaded", "full", retry_after_ms=bad)

    def test_deadline_ms_round_trips_on_requests(self):
        request = RouteRequest(source=1, destination=2, budget=100.0, deadline_ms=750.0)
        payload = request.to_dict()
        assert payload["deadline_ms"] == 750.0
        assert RouteRequest.from_dict(payload) == request
        assert "deadline_ms" not in RouteRequest(source=1, destination=2, budget=9.0).to_dict()

    @pytest.mark.parametrize("bad", [0, -10.0, float("nan"), True, "fast"])
    def test_deadline_ms_must_be_a_positive_number(self, bad):
        with pytest.raises(DataError):
            RouteRequest.from_dict(
                {"source": 1, "destination": 2, "budget": 100.0, "deadline_ms": bad}
            )


# --------------------------------------------------------------------------- #
# Silent-degradation regression: backend failures must show up in stats()
# --------------------------------------------------------------------------- #
class _ExplodingBackend:
    """An execution backend that always fails as a unit."""

    def __init__(self):
        self.calls = 0

    def run(self, engine, method, queries):
        self.calls += 1
        raise RuntimeError("worker pool exploded")


class TestServiceDegradationStats:
    def test_batch_backend_failure_is_counted_not_silent(self, tiny_artifact_store):
        engine = RoutingEngine.from_artifacts(tiny_artifact_store)
        service = RoutingService(engine, default_method="V-BS-60")
        assert service.stats().backend_failures == 0
        assert service.stats().fallback_queries == 0

        backend = _ExplodingBackend()
        requests = [
            {"source": 0, "destination": 5, "budget": 500.0},
            {"source": 1, "destination": 5, "budget": 500.0},
            {"source": 2, "destination": 5, "budget": 500.0},
        ]
        responses = service.handle_batch(requests, backend=backend)
        # Every request still got a real answer through the serial fallback...
        assert backend.calls == 1
        assert all(response.ok for response in responses)
        # ...and the degradation is visible, not silent.
        stats = service.stats()
        assert stats.backend_failures == 1
        assert stats.fallback_queries == len(requests)
        # The counters accumulate across batches.
        service.handle_batch(requests[:1], backend=backend)
        stats = service.stats()
        assert stats.backend_failures == 2
        assert stats.fallback_queries == len(requests) + 1
        # The engine's own stats stay untouched; the counters live on the
        # service (stats() merges them into the snapshot it returns).
        assert engine.stats().backend_failures == 0

    def test_healthy_batches_leave_the_counters_at_zero(self, tiny_artifact_store):
        engine = RoutingEngine.from_artifacts(tiny_artifact_store)
        service = RoutingService(engine, default_method="V-BS-60")
        responses = service.handle_batch(
            [{"source": 0, "destination": 5, "budget": 500.0}]
        )
        assert responses[0].ok
        stats = service.stats()
        assert stats.backend_failures == 0
        assert stats.fallback_queries == 0


# --------------------------------------------------------------------------- #
# HTTP surface (happy paths; chaos lives in test_serving_faults.py)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serving_url(tiny_artifact_store):
    server = RouteServer(
        tiny_artifact_store,
        ServerConfig(max_concurrency=2, queue_limit=4, reload_poll_seconds=3600.0),
    )
    server.start()
    try:
        yield server.url
    finally:
        server.stop()


class TestRouteServerHTTP:
    def test_single_request_round_trip(self, serving_url):
        status, body = http_post(
            serving_url,
            "/route",
            {"source": 0, "destination": 5, "budget": 500.0, "request_id": "req-1"},
        )
        assert status == 200
        assert body["ok"] is True
        assert body["request_id"] == "req-1"
        assert body["method"] == "V-BS-60"
        assert body["path_vertices"][0] == 0
        assert body["path_vertices"][-1] == 5
        assert 0.0 < body["probability"] <= 1.0

    def test_batch_preserves_order_and_mixes_outcomes(self, serving_url):
        status, body = http_post(
            serving_url,
            "/route",
            [
                {"source": 0, "destination": 5, "budget": 500.0, "request_id": "a"},
                {"source": 0, "destination": 999999, "budget": 500.0, "request_id": "b"},
                {"source": 0, "destination": 5, "budget": 500.0, "method": "bogus"},
            ],
        )
        assert status == 200
        assert [item.get("request_id") for item in body] == ["a", "b", None]
        assert body[0]["ok"] is True
        assert body[1]["error"]["code"] == "unknown_vertex"
        assert body[2]["error"]["code"] == "invalid_method"

    def test_per_request_deadline_is_accepted(self, serving_url):
        status, body = http_post(
            serving_url,
            "/route",
            {"source": 0, "destination": 5, "budget": 500.0, "deadline_ms": 20_000.0},
        )
        assert status == 200
        assert body["ok"] is True

    def test_malformed_body_is_a_structured_400(self, serving_url):
        status, body = http_post(serving_url, "/route", None, raw=b"{not json")
        assert status == 400
        assert body["ok"] is False
        assert body["error"]["code"] == "invalid_request"

    def test_empty_batch_is_rejected(self, serving_url):
        status, body = http_post(serving_url, "/route", [])
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_unknown_path_is_a_structured_404(self, serving_url):
        status, body = http_get(serving_url, "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_stats_exposes_every_subsystem(self, serving_url):
        status, stats = http_get(serving_url, "/stats")
        assert status == 200
        for section in (
            "server",
            "engine",
            "admission",
            "deadlines",
            "resilience",
            "reload",
            "faults",
        ):
            assert section in stats
        assert stats["engine"]["provenance"]["source"] == "artifacts"
        assert stats["admission"]["max_concurrency"] == 2
        assert stats["reload"]["generation"] == 1
        assert stats["resilience"]["backend"] == "serial"
        assert stats["faults"]["enabled"] is False

    def test_healthz_is_ok_when_nothing_is_degraded(self, serving_url):
        status, body = http_get(serving_url, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["backend_healthy"] is True
        assert body["reload_healthy"] is True

    def test_faults_endpoint_is_hidden_unless_enabled(self, serving_url):
        status, body = http_post(serving_url, "/faults", {"fault": "fill-queue"})
        assert status == 404
        assert body["error"]["code"] == "invalid_request"

    def test_oversized_body_is_rejected(self, tiny_artifact_store):
        server = RouteServer(
            tiny_artifact_store,
            ServerConfig(max_body_bytes=64, reload_poll_seconds=3600.0),
        )
        with server:
            status, body = http_post(
                server.url,
                "/route",
                [{"source": 0, "destination": 5, "budget": 500.0}] * 50,
            )
        assert status == 413
        assert body["error"]["code"] == "invalid_request"


class TestServerLifecycle:
    def test_address_requires_start(self, tiny_artifact_store):
        def serving_threads() -> set[int]:
            return {
                thread.ident
                for thread in threading.enumerate()
                if thread.name.startswith("repro-serve") and thread.ident is not None
            }

        baseline = serving_threads()
        server = RouteServer(tiny_artifact_store, ServerConfig(reload_poll_seconds=3600.0))
        with pytest.raises(ConfigurationError, match="not started"):
            _ = server.address
        with server:
            host, port = server.address
            assert host == "127.0.0.1"
            assert port > 0
        # stop() tears every thread this server started back down (other
        # servers from module fixtures may still be running).
        assert serving_threads() <= baseline

    def test_boot_fails_fast_on_a_missing_store(self, tmp_path):
        with pytest.raises(DataError):
            RouteServer(tmp_path / "no-such-store")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(backend="quantum")
        with pytest.raises(ConfigurationError):
            ServerConfig(default_deadline_ms=0.0)


class TestServeCLI:
    def test_parser_wires_the_serve_command(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--artifacts", "some/store"])
        assert args.command == "serve"
        assert args.artifacts == "some/store"
        assert args.port == 8080
        assert args.backend == "serial"
        assert args.enable_fault_injection is False

    def test_serve_exits_2_on_a_missing_store(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--artifacts", str(tmp_path / "missing"), "--port", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
