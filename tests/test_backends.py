"""Tests for the execution backends and the multiprocess serving path.

These cover the route_many edge cases the serving layer relies on: duplicate
queries in one batch, input-order preservation under every backend, worker
exceptions propagating instead of hanging the pool, and heuristic bundles
crossing process boundaries via the graph content fingerprint.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, GraphError, ReproError
from repro.routing.backends import (
    ArtifactRef,
    DatasetRecipe,
    EngineSpec,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    balanced_destination_chunks,
    destination_grouped_order,
)
from repro.routing.engine import RouterSettings, RoutingEngine
from repro.routing.queries import RoutingQuery

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

TINY_SPEC = DatasetRecipe(dataset="tiny", regime="peak", tau=20)
SETTINGS = RouterSettings(max_budget=900.0, max_explored=2000)


@pytest.fixture(scope="module")
def spec_engine():
    return TINY_SPEC.build_engine(settings=SETTINGS)


@pytest.fixture(scope="module")
def tiny_queries(spec_engine):
    vertices = sorted(spec_engine.pace_graph.network.vertex_ids())
    a, b, c, d = vertices[0], vertices[-1], vertices[len(vertices) // 2], vertices[1]
    queries = [
        RoutingQuery(a, b, budget=400.0),
        RoutingQuery(a, c, budget=300.0),
        RoutingQuery(a, b, budget=400.0),  # exact duplicate of the first
        RoutingQuery(d, b, budget=350.0),
        RoutingQuery(a, c, budget=250.0),
        RoutingQuery(a, b, budget=200.0),
    ]
    # Destinations deliberately interleaved so grouped execution must reorder.
    assert [q.destination for q in queries] != sorted(q.destination for q in queries)
    return queries


def _assert_same_results(expected, actual, queries):
    assert len(actual) == len(expected) == len(queries)
    for query, a, b in zip(queries, expected, actual):
        assert b.query is query  # input order and identity preserved
        assert b.probability == pytest.approx(a.probability, abs=1e-12)
        assert (a.path is None) == (b.path is None)
        if a.path is not None:
            assert b.path.edges == a.path.edges


class TestOrderAndDuplicates:
    def test_destination_grouped_order_is_stable(self, tiny_queries):
        order = destination_grouped_order(tiny_queries)
        assert sorted(order) == list(range(len(tiny_queries)))
        destinations = [tiny_queries[i].destination for i in order]
        assert destinations == sorted(destinations)
        # Ties keep input order (indices 0, 2, 5 share a destination with equal keys).
        same_destination = [i for i in order if tiny_queries[i].destination == tiny_queries[0].destination]
        assert same_destination == sorted(same_destination)

    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadBackend(workers=3), lambda: ProcessBackend(workers=2)],
        ids=["serial", "thread", "process"],
    )
    def test_every_backend_preserves_input_order(
        self, spec_engine, tiny_queries, backend_factory
    ):
        serial = spec_engine.route_many(tiny_queries, method="T-BS-60")
        backend = backend_factory()
        try:
            results = spec_engine.route_many(tiny_queries, method="T-BS-60", backend=backend)
        finally:
            if isinstance(backend, ProcessBackend):
                backend.close()
        _assert_same_results(serial, results, tiny_queries)

    def test_balanced_chunks_split_a_dominant_destination(self, tiny_queries):
        hot = tiny_queries[0].destination
        queries = [
            *(RoutingQuery(1, hot, budget=100.0 + i) for i in range(10)),
            RoutingQuery(1, hot + 1, budget=100.0),
            RoutingQuery(1, hot + 2, budget=100.0),
        ]
        order = destination_grouped_order(queries)
        chunks = balanced_destination_chunks(queries, order, workers=4)
        # ceil(12 / 4) = 3: the hot destination's 10 queries split into shares.
        assert max(len(chunk) for chunk in chunks) == 3
        # No piece ever interleaves destinations (one heuristic per piece).
        for chunk in chunks:
            assert len({queries[i].destination for i in chunk}) == 1
        # Longest-first submission, and nothing lost or duplicated.
        assert [len(c) for c in chunks] == sorted((len(c) for c in chunks), reverse=True)
        assert sorted(i for chunk in chunks for i in chunk) == list(range(len(queries)))

    def test_balanced_chunks_leave_single_worker_batches_alone(self, tiny_queries):
        order = destination_grouped_order(tiny_queries)
        chunks = balanced_destination_chunks(tiny_queries, order, workers=1)
        destinations = [tiny_queries[chunk[0]].destination for chunk in chunks]
        assert len(destinations) == len(set(destinations))  # one chunk per destination

    def test_balanced_chunks_split_hot_destination_even_in_tiny_batches(self):
        # 4 queries, one destination, 4 workers: the even share is 1, so the
        # chunk must split into singletons — not serialise on one worker.
        queries = [RoutingQuery(1, 9, budget=100.0 + i) for i in range(4)]
        order = destination_grouped_order(queries)
        chunks = balanced_destination_chunks(queries, order, workers=4)
        assert [len(chunk) for chunk in chunks] == [1, 1, 1, 1]

    def test_process_backend_parity_on_a_skewed_batch(self, spec_engine):
        vertices = sorted(spec_engine.pace_graph.network.vertex_ids())
        hot, cold = vertices[-1], vertices[len(vertices) // 2]
        queries = [
            *(RoutingQuery(vertices[i % 3], hot, budget=250.0 + 25.0 * i) for i in range(9)),
            RoutingQuery(vertices[0], cold, budget=300.0),
        ]
        serial = spec_engine.route_many(queries, method="T-BS-60")
        with ProcessBackend(workers=2) as backend:
            results = spec_engine.route_many(queries, method="T-BS-60", backend=backend)
        _assert_same_results(serial, results, queries)

    def test_duplicate_queries_answer_identically(self, spec_engine, tiny_queries):
        results = spec_engine.route_many(tiny_queries, method="T-B-P")
        first, duplicate = results[0], results[2]
        assert duplicate.probability == first.probability
        assert (duplicate.path is None) == (first.path is None)
        if first.path is not None:
            assert duplicate.path.edges == first.path.edges
        # Each result is bound to its own query object even when queries are equal.
        assert results[0].query is tiny_queries[0]
        assert results[2].query is tiny_queries[2]

    def test_workers_and_backend_are_mutually_exclusive(self, spec_engine, tiny_queries):
        with pytest.raises(ConfigurationError, match="not both"):
            spec_engine.route_many(
                tiny_queries, method="T-B-P", workers=2, backend=SerialBackend()
            )


class TestWorkerFailures:
    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadBackend(workers=2), lambda: ProcessBackend(workers=2)],
        ids=["serial", "thread", "process"],
    )
    def test_routing_failure_propagates_instead_of_hanging(
        self, spec_engine, backend_factory
    ):
        vertices = sorted(spec_engine.pace_graph.network.vertex_ids())
        bad = max(vertices) + 1000  # passes query validation, unknown to the graph
        queries = [
            RoutingQuery(vertices[0], vertices[-1], budget=400.0),
            RoutingQuery(vertices[0], bad, budget=400.0),
        ]
        backend = backend_factory()
        try:
            with pytest.raises((GraphError, ReproError)):
                spec_engine.route_many(queries, method="T-B-P", backend=backend)
        finally:
            if isinstance(backend, ProcessBackend):
                backend.close()

    def test_process_backend_requires_an_engine_spec(self, paper_example):
        engine = RoutingEngine(paper_example.pace_graph, None, settings=SETTINGS)
        assert engine.spec is None
        queries = [RoutingQuery(0, 1, budget=30.0)]
        with ProcessBackend(workers=2) as backend:
            with pytest.raises(ConfigurationError, match="DatasetRecipe"):
                engine.route_many(queries, method="T-B-P", backend=backend)


class TestCrossProcessHeuristics:
    def test_bundle_round_trips_between_independently_built_engines(
        self, spec_engine, tiny_queries, tmp_path
    ):
        """The acceptance path: fingerprint-keyed bundles need zero rebuilds.

        The second engine is built independently from the same spec — new
        objects, new ids, exactly what a worker process sees — so this only
        passes because cache keys and bundle entries use content
        fingerprints instead of ``id(graph)``.
        """
        destinations = sorted({q.destination for q in tiny_queries})
        spec_engine.prewarm("T-BS-60", destinations)
        spec_engine.prewarm("V-BS-60", destinations)
        bundle = tmp_path / "bundle.json"
        saved = spec_engine.save_heuristics(bundle)
        assert saved == len(spec_engine.heuristic_cache)

        fresh = TINY_SPEC.build_engine(settings=SETTINGS)
        assert fresh.pace_graph is not spec_engine.pace_graph
        assert (
            fresh.pace_graph.content_fingerprint()
            == spec_engine.pace_graph.content_fingerprint()
        )
        assert (
            fresh.updated_graph.content_fingerprint()
            == spec_engine.updated_graph.content_fingerprint()
        )
        assert fresh.prewarm(bundle) == saved
        for method in ("T-BS-60", "V-BS-60"):
            expected = spec_engine.route_many(tiny_queries, method=method)
            warmed = fresh.route_many(tiny_queries, method=method)
            _assert_same_results(expected, warmed, tiny_queries)
        assert fresh.heuristic_cache.misses == 0  # nothing was rebuilt
        assert fresh.heuristic_cache.hits > 0

    def test_process_workers_prewarm_from_bundle(self, spec_engine, tiny_queries, tmp_path):
        destinations = sorted({q.destination for q in tiny_queries})
        spec_engine.prewarm("T-BS-60", destinations)
        bundle = tmp_path / "bundle.json"
        spec_engine.save_heuristics(bundle)
        serial = spec_engine.route_many(tiny_queries, method="T-BS-60")
        with ProcessBackend(workers=2, heuristics_path=bundle) as backend:
            results = spec_engine.route_many(tiny_queries, method="T-BS-60", backend=backend)
        _assert_same_results(serial, results, tiny_queries)

    def test_process_workers_boot_from_artifacts(self, spec_engine, tiny_queries, tmp_path):
        """The deployment fan-out: every worker cold-boots from the store.

        The parent engine is itself booted via ``from_artifacts``, so its spec
        is an :class:`ArtifactRef` carrying the expected fingerprints, and the
        worker processes initialise from the same store — fingerprint-verified,
        zero re-mining, zero heuristic rebuilds.
        """
        destinations = sorted({q.destination for q in tiny_queries})
        spec_engine.prewarm("T-BS-60", destinations)
        store = tmp_path / "store"
        spec_engine.save_artifacts(store)
        parent = RoutingEngine.from_artifacts(store)
        assert isinstance(parent.spec, ArtifactRef)
        assert isinstance(parent.spec, EngineSpec)  # the union covers both forms
        serial = spec_engine.route_many(tiny_queries, method="T-BS-60")
        with ProcessBackend(workers=2) as backend:
            results = parent.route_many(tiny_queries, method="T-BS-60", backend=backend)
        _assert_same_results(serial, results, tiny_queries)
        assert parent.heuristic_cache.misses == 0


class TestEngineStats:
    def test_stats_report_cache_and_query_counters(self):
        engine = TINY_SPEC.build_engine(settings=SETTINGS)
        vertices = sorted(engine.pace_graph.network.vertex_ids())
        queries = [
            RoutingQuery(vertices[0], vertices[-1], budget=400.0),
            RoutingQuery(vertices[1], vertices[-1], budget=400.0),
        ]
        engine.route_many(queries, method="T-BS-60")
        engine.route(queries[0], method="T-B-P")
        # V-B-P shares the PACE binary heuristic with T-B-P through the
        # engine-wide cache: a hit, not a rebuild.
        engine.route(queries[0], method="V-B-P")
        stats = engine.stats()
        assert stats.queries_total == 4
        assert stats.queries_by_method == {"T-BS-60": 2, "T-B-P": 1, "V-B-P": 1}
        assert stats.cache_misses == 2  # one budget table + one binary getMin tree
        assert stats.cache_entries == 2
        assert stats.heuristic_build_seconds > 0.0
        assert stats.cache_hits >= 1
