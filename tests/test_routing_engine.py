"""Tests for the batch routing engine and the shared heuristic cache."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.datasets.paper_example import VD, VS
from repro.evaluation.workloads import WorkloadConfig, generate_workload
from repro.routing.engine import (
    METHOD_NAMES,
    HeuristicCache,
    RouterSettings,
    RoutingEngine,
    create_router,
)
from repro.routing.queries import RoutingQuery
from repro.vpaths.updated_graph import UpdatedPaceGraph


@pytest.fixture(scope="module")
def updated_example(paper_example):
    updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
    return updated


def _engine(paper_example, updated_example, **kwargs) -> RoutingEngine:
    settings = kwargs.pop("settings", RouterSettings(max_budget=120.0))
    return RoutingEngine(paper_example.pace_graph, updated_example, settings=settings)


def _example_queries(paper_example) -> list[RoutingQuery]:
    vertices = sorted(paper_example.network.vertex_ids())
    queries = [RoutingQuery(VS, VD, budget=budget) for budget in (24.0, 30.0, 40.0)]
    # A second destination so batches exercise the destination grouping.
    other = next(v for v in vertices if v not in (VS, VD))
    queries.append(RoutingQuery(VS, other, budget=30.0))
    queries.append(RoutingQuery(VS, VD, budget=26.0))
    return queries


class TestUnknownMethodError:
    @pytest.mark.parametrize("method", ["V-B-EU", "V-B-E", "nonsense", "T-BS", "V-BS-"])
    def test_unknown_method_lists_palette(self, paper_example, updated_example, method):
        with pytest.raises(ConfigurationError) as excinfo:
            create_router(method, paper_example.pace_graph, updated_example)
        message = str(excinfo.value)
        assert method in message
        for name in METHOD_NAMES:
            assert name in message
        assert "V-None" in message and "V-B-P" in message

    def test_unknown_v_variant_rejected_even_without_updated_graph(self, paper_example):
        # The name check fires before the missing-updated-graph check, so the
        # user learns the method does not exist rather than being told to
        # build V-paths for it.
        with pytest.raises(ConfigurationError, match="unknown routing method"):
            create_router("V-B-EU", paper_example.pace_graph, None)

    def test_known_methods_still_build(self, paper_example, updated_example):
        for method in METHOD_NAMES:
            router = create_router(method, paper_example.pace_graph, updated_example)
            assert router is not None


class TestHeuristicCache:
    def test_get_or_build_builds_once(self):
        cache = HeuristicCache()
        built = []

        def builder():
            built.append(1)
            return object()

        first = cache.get_or_build(("k", 1), builder)
        second = cache.get_or_build(("k", 1), builder)
        assert first is second
        assert len(built) == 1
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_keys_do_not_collide(self):
        cache = HeuristicCache()
        a = cache.get_or_build(("a", 1), object)
        b = cache.get_or_build(("b", 1), object)
        assert a is not b
        assert len(cache) == 2


class TestRoutingEngine:
    def test_route_matches_standalone_router(self, paper_example, updated_example):
        engine = _engine(paper_example, updated_example)
        query = RoutingQuery(VS, VD, budget=30.0)
        for method in METHOD_NAMES:
            standalone = create_router(
                method,
                paper_example.pace_graph,
                updated_example,
                settings=RouterSettings(max_budget=120.0),
            ).route(query)
            via_engine = engine.route(query, method=method)
            assert via_engine.probability == pytest.approx(standalone.probability, abs=1e-12)
            assert (via_engine.path is None) == (standalone.path is None)
            if via_engine.path is not None:
                assert via_engine.path.edges == standalone.path.edges

    @pytest.mark.parametrize("method", ["T-B-P", "T-BS-60", "V-BS-60"])
    def test_route_many_matches_per_query_routing(self, paper_example, updated_example, method):
        engine = _engine(paper_example, updated_example)
        queries = _example_queries(paper_example)
        batch = engine.route_many(queries, method=method)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch):
            single = engine.route(query, method=method)
            assert result.query is query
            assert result.probability == pytest.approx(single.probability, abs=1e-12)
            if result.path is not None:
                assert result.path.edges == single.path.edges

    def test_route_many_parallel_matches_serial(self, paper_example, updated_example):
        queries = _example_queries(paper_example)
        serial = _engine(paper_example, updated_example).route_many(queries, method="V-BS-60")
        parallel_engine = _engine(paper_example, updated_example)
        parallel = parallel_engine.route_many(queries, method="V-BS-60", workers=4)
        for a, b in zip(serial, parallel):
            assert a.probability == pytest.approx(b.probability, abs=1e-12)
            assert (a.path is None) == (b.path is None)
            if a.path is not None:
                assert a.path.edges == b.path.edges
        # Concurrent misses on the same destination must serialise on the
        # per-key build lock: exactly one build per distinct destination.
        distinct_destinations = len({q.destination for q in queries})
        assert parallel_engine.heuristic_cache.misses == distinct_destinations

    def test_route_many_empty_batch(self, paper_example, updated_example):
        assert _engine(paper_example, updated_example).route_many([], method="T-B-P") == []

    def test_heuristics_shared_across_methods(self, paper_example, updated_example):
        # T-B-P and V-B-P both use the PACE binary heuristic over the same
        # underlying graph: with a shared cache the second method is a cache hit.
        engine = _engine(paper_example, updated_example)
        query = RoutingQuery(VS, VD, budget=30.0)
        engine.route(query, method="T-B-P")
        assert engine.heuristic_cache.misses == 1
        engine.route(query, method="V-B-P")
        assert engine.heuristic_cache.misses == 1
        assert engine.heuristic_cache.hits >= 1

    def test_budget_tables_not_shared_across_graphs(self, paper_example, updated_example):
        # T-BS and V-BS build their Eq. 5 tables over different graphs (plain
        # vs V-path closure), so they must *not* share entries.
        engine = _engine(paper_example, updated_example)
        query = RoutingQuery(VS, VD, budget=30.0)
        engine.route(query, method="T-BS-60")
        misses_after_t = engine.heuristic_cache.misses
        engine.route(query, method="V-BS-60")
        assert engine.heuristic_cache.misses == misses_after_t + 1

    def test_repeated_queries_reuse_cached_heuristic(self, paper_example, updated_example):
        engine = _engine(paper_example, updated_example)
        queries = [RoutingQuery(VS, VD, budget=budget) for budget in (24.0, 30.0, 40.0)]
        engine.route_many(queries, method="T-BS-60")
        assert engine.heuristic_cache.misses == 1

    def test_cache_counters_snapshot_matches_stats(self, paper_example, updated_example):
        """Regression: stats() read cache counters field-by-field without the
        cache lock; counters() takes them in one locked snapshot."""
        engine = _engine(paper_example, updated_example)
        # T-B-P and V-B-P share the PACE binary heuristic: one miss, then hits.
        engine.route(RoutingQuery(VS, VD, budget=30.0), method="T-B-P")
        engine.route(RoutingQuery(VS, VD, budget=30.0), method="V-B-P")
        cache = engine.heuristic_cache
        counters = cache.counters()
        assert counters.entries == len(cache) == 1
        assert (counters.hits, counters.misses) == (cache.hits, cache.misses)
        assert (counters.hits, counters.misses) == (1, 1)
        assert counters.build_seconds == cache.build_seconds >= 0.0
        # An unbounded eager cache never faults or evicts, but the resident
        # footprint is accounted regardless of budget.
        assert (counters.faults, counters.evictions) == (0, 0)
        assert counters.resident_bytes > 0
        stats = engine.stats()
        assert (stats.cache_entries, stats.cache_hits, stats.cache_misses) == (1, 1, 1)
        assert stats.cache_resident_bytes == counters.resident_bytes
        assert (stats.cache_faults, stats.cache_evictions) == (0, 0)

    def test_prewarm_builds_heuristics(self, paper_example, updated_example):
        engine = _engine(paper_example, updated_example)
        assert engine.prewarm("T-BS-60", [VD]) == 1
        assert engine.heuristic_cache.misses == 1
        engine.route(RoutingQuery(VS, VD, budget=30.0), method="T-BS-60")
        assert engine.heuristic_cache.misses == 1

    @pytest.mark.parametrize("method", ["T-None", "V-None"])
    def test_prewarm_rejects_heuristic_free_methods(
        self, paper_example, updated_example, method
    ):
        # These methods have nothing to prewarm; silently returning 0 used to
        # make an offline investment step a no-op without telling anyone.
        engine = _engine(paper_example, updated_example)
        with pytest.raises(ConfigurationError) as excinfo:
            engine.prewarm(method, [VD])
        message = str(excinfo.value)
        assert method in message
        for supported in ("T-B-EU", "T-B-E", "T-B-P", "V-B-P", "T-BS-<delta>", "V-BS-<delta>"):
            assert supported in message

    def test_prewarm_accepts_method_specs(self, paper_example, updated_example):
        from repro.routing.methods import MethodSpec

        engine = _engine(paper_example, updated_example)
        spec = MethodSpec(graph="pace", heuristic="budget", delta=60.0)
        assert engine.prewarm(spec, [VD]) == 1
        with pytest.raises(ConfigurationError, match="destinations"):
            engine.prewarm(spec)

    def test_router_instances_are_cached(self, paper_example, updated_example):
        engine = _engine(paper_example, updated_example)
        assert engine.router("T-B-P") is engine.router("T-B-P")


class TestHeuristicPersistenceRoundTrip:
    """Acceptance check: prewarming from disk replaces the offline rebuild.

    An engine that loaded persisted heuristics must answer every query
    identically to one that built them fresh, without a single cache miss.
    """

    # V-B-P is included deliberately: its binary heuristic is requested through
    # the V-path router but keyed (and persisted) under the *pace* graph's
    # fingerprint, shared with T-B-P — the round-trip must preserve that.
    METHODS = ("T-B-P", "V-B-P", "T-BS-60", "V-BS-60")

    def test_prewarm_from_disk_matches_fresh_build(
        self, paper_example, updated_example, tmp_path
    ):
        queries = _example_queries(paper_example)
        fresh = _engine(paper_example, updated_example)
        fresh_results = {
            method: fresh.route_many(queries, method=method) for method in self.METHODS
        }
        bundle = tmp_path / "heuristics.json"
        saved = fresh.save_heuristics(bundle)
        assert saved == len(fresh.heuristic_cache)

        warmed = _engine(paper_example, updated_example)
        assert warmed.prewarm(bundle) == saved
        for method in self.METHODS:
            for query, expected in zip(queries, fresh_results[method]):
                result = warmed.route(query, method=method)
                assert result.probability == expected.probability
                assert (result.path is None) == (expected.path is None)
                if result.path is not None:
                    assert result.path.edges == expected.path.edges
        # Nothing was rebuilt: every heuristic came from disk.
        assert warmed.heuristic_cache.misses == 0
        assert warmed.heuristic_cache.hits > 0

    def test_prewarm_accepts_string_paths(self, paper_example, updated_example, tmp_path):
        engine = _engine(paper_example, updated_example)
        engine.prewarm("T-BS-60", [VD])
        bundle = tmp_path / "bundle.json"
        engine.save_heuristics(str(bundle))
        other = _engine(paper_example, updated_example)
        assert other.prewarm(str(bundle)) == 1

    def test_prewarm_method_without_destinations_is_rejected(
        self, paper_example, updated_example
    ):
        # A method name is not a bundle file; the error explains both forms.
        engine = _engine(paper_example, updated_example)
        with pytest.raises(DataError, match="destinations"):
            engine.prewarm("T-BS-60")

    def test_undersized_budget_tables_are_skipped_not_served(
        self, paper_example, updated_example, tmp_path
    ):
        """A table that cannot answer the engine's budgets must not be loaded.

        Serving it would cap residual budgets at the table's own grid and
        under-estimate the admissible bound, silently changing routing
        results; skipping it makes the engine rebuild a correct table.
        """
        small = RoutingEngine(
            paper_example.pace_graph, updated_example, settings=RouterSettings(max_budget=24.0)
        )
        small.prewarm("T-BS-6", [VD])
        bundle = tmp_path / "small.json"
        assert small.save_heuristics(bundle) == 1

        big = RoutingEngine(
            paper_example.pace_graph, updated_example, settings=RouterSettings(max_budget=120.0)
        )
        assert big.prewarm(bundle) == 0  # undersized table skipped
        query = RoutingQuery(VS, VD, budget=40.0)
        warmed_result = big.route(query, method="T-BS-6")
        assert big.heuristic_cache.misses == 1  # rebuilt, not served stale
        fresh = RoutingEngine(
            paper_example.pace_graph, updated_example, settings=RouterSettings(max_budget=120.0)
        )
        fresh_result = fresh.route(query, method="T-BS-6")
        assert warmed_result.probability == fresh_result.probability
        assert warmed_result.path.edges == fresh_result.path.edges

    def test_floor_built_tables_are_skipped_not_served(
        self, paper_example, updated_example, tmp_path
    ):
        """Floor-built cells may under-estimate; routing needs admissible bounds."""
        from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
        from repro.persistence.heuristics import budget_heuristic_to_dict, save_heuristic_bundle

        floor_heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph,
            VD,
            BudgetHeuristicConfig(delta=60, max_budget=120, grid_rounding="floor"),
        )
        network = paper_example.pace_graph.network
        entry = {
            "kind": "budget",
            "delta": 60.0,
            "graph": "pace",
            "destination": VD,
            "graph_signature": [
                network.num_vertices,
                network.num_edges,
                paper_example.pace_graph.num_tpaths,
            ],
            "heuristic": budget_heuristic_to_dict(floor_heuristic),
        }
        bundle = tmp_path / "floor.json"
        save_heuristic_bundle([entry], bundle)
        engine = _engine(paper_example, updated_example)
        assert engine.prewarm(bundle) == 0
        engine.route(RoutingQuery(VS, VD, budget=30.0), method="T-BS-60")
        assert engine.heuristic_cache.misses == 1  # rebuilt with ceil rounding

    def test_bundle_from_different_graph_is_rejected(
        self, paper_example, updated_example, small_pace_graph, tmp_path
    ):
        engine = _engine(paper_example, updated_example)
        engine.prewarm("T-BS-60", [VD])
        bundle = tmp_path / "bundle.json"
        engine.save_heuristics(bundle)
        other = RoutingEngine(small_pace_graph, None, settings=RouterSettings(max_budget=120.0))
        with pytest.raises(DataError, match="different graph"):
            other.prewarm(bundle)

    def test_updated_graph_tables_skipped_without_vpaths(
        self, paper_example, updated_example, tmp_path
    ):
        # Save from an engine with the V-path closure, load into one without.
        full = _engine(paper_example, updated_example)
        full.prewarm("V-BS-60", [VD])
        full.prewarm("T-BS-60", [VD])
        bundle = tmp_path / "bundle.json"
        assert full.save_heuristics(bundle) == 2
        plain = RoutingEngine(paper_example.pace_graph, None, settings=RouterSettings(max_budget=120.0))
        # Only the plain-graph table is loadable; the V-path one is skipped.
        assert plain.prewarm(bundle) == 1
        plain.route(RoutingQuery(VS, VD, budget=30.0), method="T-BS-60")
        assert plain.heuristic_cache.misses == 0


class TestFig13StyleWorkload:
    """Acceptance check: batching is purely an execution strategy.

    On a fig13-style workload (source–destination pairs from observed trips,
    budgets as fractions of the least expected travel time), ``route_many``
    must report identical best-path probabilities to routing each query
    individually through a standalone router.
    """

    @pytest.mark.parametrize("method", ["T-B-P", "T-BS-60", "V-BS-60"])
    def test_route_many_matches_per_query_routing(
        self, method, small_dataset, small_edge_graph, small_pace_graph, small_updated_graph
    ):
        workload = generate_workload(
            small_edge_graph,
            list(small_dataset.peak),
            WorkloadConfig(pairs_per_bucket=1, num_buckets=2, budget_fractions=(0.75, 1.0, 1.25)),
        )
        queries = [wq.query for wq in workload.queries]
        assert queries, "workload generation produced no queries"
        settings = RouterSettings(
            max_budget=max(q.budget for q in queries) + 60.0, max_explored=2000
        )
        engine = RoutingEngine(small_pace_graph, small_updated_graph, settings=settings)
        batch = engine.route_many(queries, method=method)

        standalone = create_router(
            method, small_pace_graph, small_updated_graph, settings=settings
        )
        for query, batched in zip(queries, batch):
            single = standalone.route(query)
            assert batched.probability == single.probability
            assert (batched.path is None) == (single.path is None)
            if batched.path is not None:
                assert batched.path.edges == single.path.edges
