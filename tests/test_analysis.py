"""Tests for the project's static-analysis framework (``repro analyze``).

Each rule gets a seeded fixture snippet that must trip it (asserting the
rule id and the anchored line), a clean counterpart that must not, and the
suppression-comment contract is exercised per rule.  The suite ends with the
self-check CI relies on: the shipped ``src/repro`` tree analyses clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    AnalysisReport,
    Violation,
    all_rules,
    analyze_paths,
    analyze_source,
    module_path_for,
    render_json,
    render_text,
)
from repro.cli import main

EXPECTED_RULE_IDS = [
    "data-error-taxonomy",
    "fingerprint-hygiene",
    "float-equality",
    "format-version",
    "lock-discipline",
    "residency-discipline",
    "sqlite-discipline",
    "strict-json",
]


def analyze(snippet: str, *, virtual_path: str = "module.py") -> list[Violation]:
    return analyze_source(textwrap.dedent(snippet), virtual_path=virtual_path)


def rule_ids(violations: list[Violation]) -> set[str]:
    return {violation.rule_id for violation in violations}


class TestRegistry:
    def test_all_rules_registered_in_sorted_order(self) -> None:
        assert [rule.rule_id for rule in all_rules()] == EXPECTED_RULE_IDS

    def test_every_rule_has_a_description(self) -> None:
        for rule in all_rules():
            assert rule.description, rule.rule_id

    def test_module_path_is_relative_to_the_repro_package_root(self) -> None:
        path = Path("/checkout/src/repro/persistence/codecs.py")
        assert module_path_for(path) == "persistence/codecs.py"

    def test_module_path_for_loose_files_is_the_filename(self) -> None:
        assert module_path_for(Path("/tmp/scratch/snippet.py")) == "snippet.py"


class TestStrictJsonRule:
    FIXTURE = """\
    import json

    def save(payload, path):
        path.write_text(json.dumps(payload))
    """

    def test_bare_dumps_in_persistence_is_flagged(self) -> None:
        violations = analyze(self.FIXTURE, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["strict-json"]
        assert violations[0].line == 4
        assert "strict_json_dumps" in violations[0].message

    def test_from_import_alias_is_still_flagged(self) -> None:
        snippet = """\
        from json import loads as parse

        def read(text):
            return parse(text)
        """
        violations = analyze(snippet, virtual_path="routing/service.py")
        assert [v.rule_id for v in violations] == ["strict-json"]
        assert violations[0].line == 4

    def test_rule_is_scoped_to_the_persistence_path(self) -> None:
        assert analyze(self.FIXTURE, virtual_path="evaluation/fixture.py") == []

    def test_strict_helper_calls_are_clean(self) -> None:
        snippet = """\
        from repro.persistence.codecs import strict_json_dumps

        def save(payload, path):
            path.write_text(strict_json_dumps(payload))
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []


class TestDataErrorTaxonomyRule:
    def test_raising_builtin_valueerror_is_flagged(self) -> None:
        snippet = """\
        def decode(payload):
            if "edges" not in payload:
                raise ValueError("missing edges")
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["data-error-taxonomy"]
        assert violations[0].line == 3
        assert "DataError" in violations[0].message

    def test_assert_statement_is_flagged(self) -> None:
        snippet = """\
        def decode(payload):
            assert "edges" in payload
            return payload["edges"]
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["data-error-taxonomy"]
        assert violations[0].line == 2

    def test_conversion_whose_valueerror_escapes_is_flagged(self) -> None:
        # The exact bug shape this PR fixed in the index reader: int() on a
        # garbage key raises ValueError past a (KeyError, TypeError) handler.
        snippet = """\
        from repro.core.errors import DataError

        def decode(payload):
            try:
                return int(payload["edge_id"])
            except (KeyError, TypeError) as exc:
                raise DataError(f"malformed: {exc}") from exc
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["data-error-taxonomy"]
        assert violations[0].line == 5
        assert "ValueError" in violations[0].message

    def test_conversion_with_valueerror_in_the_tuple_is_clean(self) -> None:
        snippet = """\
        from repro.core.errors import DataError

        def decode(payload):
            try:
                return int(payload["edge_id"])
            except (KeyError, TypeError, ValueError) as exc:
                raise DataError(f"malformed: {exc}") from exc
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_raising_dataerror_is_clean(self) -> None:
        snippet = """\
        from repro.core.errors import DataError

        def decode(payload):
            raise DataError("malformed index payload")
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_rule_does_not_apply_outside_persistence(self) -> None:
        snippet = """\
        def check(x):
            assert x > 0
        """
        assert analyze(snippet, virtual_path="routing/engine.py") == []


class TestFormatVersionRule:
    def test_unvalidated_read_is_flagged(self) -> None:
        snippet = """\
        def network_from_dict(payload):
            version = payload["format_version"]
            return payload["edges"]
        """
        violations = analyze(snippet, virtual_path="network/fixture.py")
        assert [v.rule_id for v in violations] == ["format-version"]
        assert violations[0].line == 2
        assert "require_format_version" in violations[0].message

    def test_defaulted_get_read_is_flagged(self) -> None:
        snippet = """\
        def load(payload):
            if payload.get("format_version", 1) > 1:
                return None
            return payload
        """
        violations = analyze(snippet, virtual_path="network/fixture.py")
        assert [v.rule_id for v in violations] == ["format-version"]

    def test_read_next_to_a_validator_call_is_clean(self) -> None:
        snippet = """\
        from repro.persistence.codecs import require_format_version

        def network_from_dict(payload):
            require_format_version(payload, expected=2, what="network document")
            version = payload["format_version"]
            return payload["edges"]
        """
        assert analyze(snippet, virtual_path="network/fixture.py") == []

    def test_the_validator_definition_itself_is_exempt(self) -> None:
        snippet = """\
        def require_format_version(payload, *, expected, what):
            if payload["format_version"] != expected:
                raise RuntimeError(what)
        """
        assert analyze(snippet, virtual_path="network/fixture.py") == []


class TestFingerprintHygieneRule:
    def test_id_based_cache_key_is_flagged_everywhere(self) -> None:
        snippet = """\
        def cache_key(graph):
            return id(graph)
        """
        violations = analyze(snippet, virtual_path="routing/fixture.py")
        assert [v.rule_id for v in violations] == ["fingerprint-hygiene"]
        assert violations[0].line == 2
        assert "fingerprint" in violations[0].message

    def test_renormalising_constructor_in_codec_is_flagged(self) -> None:
        snippet = """\
        from repro.core.distributions import Distribution

        def distribution_from_dict(payload):
            return Distribution(payload["costs"], payload["probabilities"])
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["fingerprint-hygiene"]
        assert "from_normalised" in violations[0].message

    def test_from_normalised_fast_path_is_clean(self) -> None:
        snippet = """\
        from repro.core.distributions import Distribution

        def distribution_from_dict(payload):
            return Distribution.from_normalised(
                payload["costs"], payload["probabilities"]
            )
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_constructor_fallback_inside_except_handler_is_sanctioned(self) -> None:
        snippet = """\
        from repro.core.distributions import Distribution
        from repro.core.errors import DataError

        def distribution_from_dict(payload):
            try:
                return Distribution.from_normalised(
                    payload["costs"], payload["probabilities"]
                )
            except DataError:
                return Distribution(payload["costs"], payload["probabilities"])
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_constructor_outside_persistence_is_not_a_codec_concern(self) -> None:
        snippet = """\
        from repro.core.distributions import Distribution

        def make(costs, probabilities):
            return Distribution(costs, probabilities)
        """
        assert analyze(snippet, virtual_path="evaluation/fixture.py") == []


class TestLockDisciplineRule:
    FIXTURE = """\
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0

        def record(self):
            with self._lock:
                self.hits += 1

        def snapshot(self):
            return self.hits
    """

    def test_unlocked_read_of_guarded_state_is_flagged(self) -> None:
        violations = analyze(self.FIXTURE, virtual_path="routing/engine.py")
        assert [v.rule_id for v in violations] == ["lock-discipline"]
        assert violations[0].line == 13
        assert "self.hits" in violations[0].message

    def test_rule_is_scoped_to_the_serving_modules(self) -> None:
        assert analyze(self.FIXTURE, virtual_path="persistence/store.py") == []

    def test_locked_snapshot_is_clean(self) -> None:
        snippet = """\
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def record(self):
                with self._lock:
                    self.hits += 1

            def snapshot(self):
                with self._lock:
                    return self.hits
        """
        assert analyze(snippet, virtual_path="routing/engine.py") == []

    def test_init_writes_do_not_make_state_guarded(self) -> None:
        snippet = """\
        import threading

        class Config:
            def __init__(self):
                self._lock = threading.Lock()
                self.limit = 8

            def limit_reached(self, count):
                return count >= self.limit
        """
        assert analyze(snippet, virtual_path="routing/engine.py") == []


class TestFloatEqualityRule:
    def test_comparison_against_float_literal_is_flagged(self) -> None:
        snippet = """\
        def is_unit(scale):
            return scale == 1.0
        """
        violations = analyze(snippet, virtual_path="heuristics/fixture.py")
        assert [v.rule_id for v in violations] == ["float-equality"]
        assert violations[0].line == 2
        assert "isclose" in violations[0].message

    def test_float_call_inequality_is_flagged(self) -> None:
        snippet = """\
        def changed(entry, delta):
            return float(entry["delta"]) != delta
        """
        violations = analyze(snippet, virtual_path="routing/fixture.py")
        assert [v.rule_id for v in violations] == ["float-equality"]

    def test_integer_comparisons_are_not_flagged(self) -> None:
        snippet = """\
        def is_first(index):
            return index == 0
        """
        assert analyze(snippet, virtual_path="heuristics/fixture.py") == []

    def test_ordering_comparisons_are_not_flagged(self) -> None:
        snippet = """\
        def positive(scale):
            return scale > 0.0
        """
        assert analyze(snippet, virtual_path="heuristics/fixture.py") == []


class TestSqliteDisciplineRule:
    def test_connect_outside_the_db_module_is_flagged(self) -> None:
        snippet = """\
        import sqlite3

        def open_index(path):
            return sqlite3.connect(path)
        """
        violations = analyze(snippet, virtual_path="catalog/registry.py")
        assert [v.rule_id for v in violations] == ["sqlite-discipline"]
        assert violations[0].line == 4
        assert "CatalogDB" in violations[0].message

    def test_connect_import_alias_is_still_flagged(self) -> None:
        snippet = """\
        from sqlite3 import connect as open_db

        def boot(path):
            return open_db(path)
        """
        violations = analyze(snippet, virtual_path="serving/fixture.py")
        assert [v.rule_id for v in violations] == ["sqlite-discipline"]

    def test_connect_with_pragma_helper_in_db_module_is_clean(self) -> None:
        snippet = """\
        import sqlite3

        def _apply_pragmas(connection):
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA foreign_keys=ON")

        def open_db(path):
            connection = sqlite3.connect(path)
            _apply_pragmas(connection)
            return connection
        """
        assert analyze(snippet, virtual_path="catalog/db.py") == []

    def test_connect_without_pragmas_in_db_module_is_flagged(self) -> None:
        snippet = """\
        import sqlite3

        def open_db(path):
            return sqlite3.connect(path)
        """
        violations = analyze(snippet, virtual_path="catalog/db.py")
        assert [v.rule_id for v in violations] == ["sqlite-discipline"]
        assert "_apply_pragmas" in violations[0].message

    def test_manual_commit_in_catalog_module_is_flagged(self) -> None:
        snippet = """\
        def save(connection, path):
            connection.execute("UPDATE stores SET path = ?", (path,))
            connection.commit()
        """
        violations = analyze(snippet, virtual_path="catalog/fleet.py")
        assert [v.rule_id for v in violations] == ["sqlite-discipline"]
        assert "transaction()" in violations[0].message

    def test_hand_rolled_begin_in_catalog_module_is_flagged(self) -> None:
        snippet = """\
        def start(connection):
            connection.execute("BEGIN IMMEDIATE")
        """
        violations = analyze(snippet, virtual_path="catalog/fleet.py")
        assert [v.rule_id for v in violations] == ["sqlite-discipline"]

    def test_commit_outside_catalog_is_not_this_rules_business(self) -> None:
        snippet = """\
        def finish(txn):
            txn.commit()
        """
        assert analyze(snippet, virtual_path="routing/engine.py") == []

    def test_parameterised_execute_in_catalog_is_clean(self) -> None:
        snippet = """\
        def rows(db):
            return db.query("SELECT * FROM stores ORDER BY path")
        """
        assert analyze(snippet, virtual_path="catalog/registry.py") == []


class TestResidencyDisciplineRule:
    def test_read_bytes_in_persistence_is_flagged(self) -> None:
        snippet = """\
        def load(path):
            return path.read_bytes()
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["residency-discipline"]
        assert violations[0].line == 2
        assert "ColumnDocumentReader" in violations[0].message

    def test_read_text_in_persistence_is_flagged(self) -> None:
        snippet = """\
        def load(path):
            return path.read_text(encoding="utf-8")
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["residency-discipline"]

    def test_argless_read_is_flagged_but_bounded_read_is_clean(self) -> None:
        slurp = """\
        def load(handle):
            return handle.read()
        """
        violations = analyze(slurp, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["residency-discipline"]
        sniff = """\
        def magic(handle):
            return handle.read(4)
        """
        assert analyze(sniff, virtual_path="persistence/fixture.py") == []

    def test_mmap_without_access_read_is_flagged(self) -> None:
        snippet = """\
        import mmap

        def map_file(handle):
            return mmap.mmap(handle.fileno(), 0)
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["residency-discipline"]
        assert "ACCESS_READ" in violations[0].message

    def test_mmap_with_access_read_is_clean(self) -> None:
        snippet = """\
        import mmap

        def map_file(handle):
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_writable_mmap_access_is_flagged(self) -> None:
        snippet = """\
        import mmap

        def map_file(handle):
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_WRITE)
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert [v.rule_id for v in violations] == ["residency-discipline"]

    def test_reads_outside_persistence_are_not_this_rules_business(self) -> None:
        snippet = """\
        def load(path):
            return path.read_bytes()
        """
        assert analyze(snippet, virtual_path="routing/fixture.py") == []


class TestSuppressions:
    def test_suppression_comment_silences_exactly_that_rule(self) -> None:
        snippet = """\
        import json

        def save(payload, path):
            path.write_text(json.dumps(payload))  # repro: ignore[strict-json]
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_suppression_for_a_different_rule_does_not_apply(self) -> None:
        snippet = """\
        import json

        def save(payload, path):
            path.write_text(json.dumps(payload))  # repro: ignore[float-equality]
        """
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert rule_ids(violations) == {"strict-json"}

    def test_comma_separated_ids_suppress_multiple_rules(self) -> None:
        snippet = """\
        def decode(payload):
            if float(payload["scale"]) == 1.0:
                raise ValueError("unit scale")  # repro: ignore[data-error-taxonomy]
        """
        # The comparison on line 2 still fires; the raise on line 3 is silenced.
        violations = analyze(snippet, virtual_path="persistence/fixture.py")
        assert rule_ids(violations) == {"float-equality"}
        both = """\
        def decode(payload):
            if float(payload["scale"]) == 1.0:  # repro: ignore[float-equality, data-error-taxonomy]
                raise ValueError("unit scale")  # repro: ignore[data-error-taxonomy]
        """
        assert analyze(both, virtual_path="persistence/fixture.py") == []

    def test_suppression_anywhere_in_a_multiline_node_span_applies(self) -> None:
        snippet = """\
        import json

        def save(payload, path):
            path.write_text(
                json.dumps(  # repro: ignore[strict-json]
                    payload,
                )
            )
        """
        assert analyze(snippet, virtual_path="persistence/fixture.py") == []

    def test_every_rule_id_round_trips_through_its_own_suppression(self) -> None:
        fixtures = {
            "strict-json": ("persistence/f.py", "import json\njson.dumps({})\n"),
            "data-error-taxonomy": ("persistence/f.py", "assert True\n"),
            "format-version": (
                "network/f.py",
                "def load(p):\n    return p['format_version']\n",
            ),
            "fingerprint-hygiene": ("routing/f.py", "key = id(object())\n"),
            "lock-discipline": (
                "routing/engine.py",
                "class C:\n"
                "    def a(self):\n"
                "        with self._lock:\n"
                "            self.n = 1\n"
                "    def b(self):\n"
                "        return self.n\n",
            ),
            "float-equality": ("heuristics/f.py", "ok = 0.1 + 0.2 == 0.3\n"),
            "residency-discipline": (
                "persistence/f.py",
                "def slurp(path):\n    return path.read_bytes()\n",
            ),
            "sqlite-discipline": (
                "routing/f.py",
                "import sqlite3\nconn = sqlite3.connect('x.db')\n",
            ),
        }
        assert set(fixtures) == set(EXPECTED_RULE_IDS)
        for rule_id, (virtual_path, body) in fixtures.items():
            fired = analyze_source(body, virtual_path=virtual_path)
            assert rule_ids(fired) == {rule_id}, rule_id
            suppressed = "\n".join(
                f"{line}  # repro: ignore[{rule_id}]" if line.strip() else line
                for line in body.splitlines()
            )
            assert analyze_source(suppressed, virtual_path=virtual_path) == [], rule_id


class TestReportsAndFiles:
    def test_analyze_paths_reports_violations_with_real_paths(self, tmp_path) -> None:
        package = tmp_path / "repro" / "persistence"
        package.mkdir(parents=True)
        bad = package / "bad.py"
        bad.write_text("import json\njson.dumps({})\n", encoding="utf-8")
        (package / "good.py").write_text("x = 1\n", encoding="utf-8")
        report = analyze_paths([tmp_path])
        assert not report.ok
        assert report.checked_files == 2
        assert [v.rule_id for v in report.violations] == ["strict-json"]
        assert report.violations[0].path == str(bad)
        assert report.violations[0].line == 2

    def test_unparseable_file_is_a_parse_error_not_a_crash(self, tmp_path) -> None:
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        report = analyze_paths([tmp_path])
        assert not report.ok
        assert report.checked_files == 0
        assert [v.rule_id for v in report.violations] == ["parse-error"]

    def test_text_report_lines_are_editor_clickable(self) -> None:
        violation = Violation(
            rule_id="strict-json",
            path="src/repro/persistence/bad.py",
            line=7,
            column=5,
            message="bare json.dumps()",
        )
        report = AnalysisReport(
            violations=(violation,), checked_files=3, rule_ids=("strict-json",)
        )
        text = render_text(report)
        assert "src/repro/persistence/bad.py:7:5: strict-json: bare json.dumps()" in text
        assert "1 violation" in text

    def test_json_report_round_trips_and_is_strict(self) -> None:
        report = AnalysisReport(violations=(), checked_files=5, rule_ids=("strict-json",))
        payload = json.loads(render_json(report))
        assert payload["ok"] is True
        assert payload["checked_files"] == 5
        assert payload["violations"] == []


class TestShippedTreeIsClean:
    def test_repro_analyze_self_check_passes(self) -> None:
        package_root = Path(repro.__file__).parent
        report = analyze_paths([package_root])
        assert report.checked_files > 50
        assert report.ok, render_text(report)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys) -> None:
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["analyze", str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out

    def test_violations_exit_one_with_rule_id_and_location(self, tmp_path, capsys) -> None:
        package = tmp_path / "repro" / "persistence"
        package.mkdir(parents=True)
        bad = package / "bad.py"
        bad.write_text("import json\njson.dumps({})\n", encoding="utf-8")
        assert main(["analyze", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2:1: strict-json:" in out

    def test_json_format_and_output_file(self, tmp_path, capsys) -> None:
        package = tmp_path / "repro" / "persistence"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import json\njson.dumps({})\n", encoding="utf-8")
        out_file = tmp_path / "report.json"
        code = main(
            ["analyze", str(tmp_path), "--format", "json", "--output", str(out_file)]
        )
        assert code == 1
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "strict-json"
        assert payload["violations"][0]["line"] == 2

    def test_rule_selection_runs_only_those_rules(self, tmp_path, capsys) -> None:
        package = tmp_path / "repro" / "persistence"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import json\njson.dumps({})\n", encoding="utf-8")
        assert main(["analyze", str(tmp_path), "--rules", "float-equality"]) == 0
        assert main(["analyze", str(tmp_path), "--rules", "strict-json"]) == 1
        capsys.readouterr()

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys) -> None:
        assert main(["analyze", str(tmp_path), "--rules", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "no-such-rule" in err

    def test_list_rules_prints_the_registry(self, capsys) -> None:
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        listed = [line.split(":")[0] for line in out.strip().splitlines()]
        assert listed == EXPECTED_RULE_IDS

    def test_default_target_is_the_shipped_package(self, capsys) -> None:
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out


def test_seeded_fixture_tree_exercises_every_rule(tmp_path) -> None:
    """End to end: one seeded tree trips every rule in a single run."""
    package = tmp_path / "repro"
    (package / "persistence").mkdir(parents=True)
    (package / "routing").mkdir()
    (package / "network").mkdir()
    (package / "catalog").mkdir()
    (package / "catalog" / "shortcut.py").write_text(
        "import sqlite3\n\ndef open_db(path):\n    return sqlite3.connect(path)\n",
        encoding="utf-8",
    )
    (package / "persistence" / "codec.py").write_text(
        textwrap.dedent(
            """\
            import json
            from repro.core.distributions import Distribution

            def decode(payload):
                assert "costs" in payload
                return Distribution(payload["costs"], payload["probs"])

            def save(payload, path):
                path.write_text(json.dumps(payload))

            def slurp(path):
                return path.read_bytes()
            """
        ),
        encoding="utf-8",
    )
    (package / "routing" / "engine.py").write_text(
        textwrap.dedent(
            """\
            class Stats:
                def bump(self):
                    with self._lock:
                        self.count += 1

                def read(self):
                    return self.count

            def same(a):
                return float(a) == 1.0

            def key(graph):
                return id(graph)
            """
        ),
        encoding="utf-8",
    )
    (package / "network" / "io.py").write_text(
        "def load(payload):\n    return payload['format_version']\n",
        encoding="utf-8",
    )
    report = analyze_paths([tmp_path])
    assert rule_ids(list(report.violations)) == set(EXPECTED_RULE_IDS)
