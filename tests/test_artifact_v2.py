"""v1/v2 artifact-store coexistence, incremental prewarm, and migration.

PR 4's manifest records a format version per artifact precisely so a second
format could coexist with the first.  These tests pin the contract both ways:

* v1 (JSON) stores written explicitly still load, byte for byte,
* v2 (columnar) stores round-trip bit-exact graph content fingerprints and
  serve with zero cache misses,
* mixed-version manifests (a v1 bundle *and* v2 per-entry heuristics) and
  unknown format versions are rejected loudly,
* an incremental ``prewarm --artifacts`` re-save writes only the new/changed
  heuristic documents — untouched tables stay byte- and mtime-identical on
  disk, and
* ``repro migrate-artifacts`` converts a store in place without re-mining,
  preserving fingerprints, recipe and build provenance.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.errors import DataError
from repro.persistence.store import (
    HEURISTIC_ENTRY_PREFIX,
    HEURISTICS_ARTIFACT,
    INDEX_ARTIFACT,
    MANIFEST_NAME,
    ArtifactStore,
)
from repro.routing import DatasetRecipe, RouterSettings, RoutingEngine, RoutingQuery

RECIPE = DatasetRecipe(dataset="tiny", regime="peak", tau=20)
SETTINGS = RouterSettings(max_budget=900.0, max_explored=2000)


@pytest.fixture(scope="module")
def mined():
    engine = RECIPE.build_engine(settings=SETTINGS)
    vertices = sorted(engine.pace_graph.network.vertex_ids())
    destinations = [vertices[-1], vertices[len(vertices) // 2]]
    for method in ("T-BS-60", "T-B-P"):
        engine.prewarm(method, destinations)
    queries = [
        RoutingQuery(vertices[0], destinations[0], budget=500.0),
        RoutingQuery(vertices[1], destinations[1], budget=350.0),
    ]
    return engine, destinations, queries


def _file_states(root, pattern):
    return {
        path.name: (path.stat().st_mtime_ns, path.read_bytes())
        for path in root.glob(pattern)
    }


class TestCoexistence:
    def test_v1_store_still_loads_with_full_parity(self, mined, tmp_path):
        engine, _, queries = mined
        root = tmp_path / "v1-store"
        manifest = engine.save_artifacts(root, format_version=1)
        assert set(manifest.artifacts) == {INDEX_ARTIFACT, HEURISTICS_ARTIFACT}
        assert all(entry.format_version == 1 for entry in manifest.artifacts.values())
        assert manifest.artifacts[INDEX_ARTIFACT].filename.endswith(".json")
        booted = RoutingEngine.from_artifacts(root)
        assert booted.pace_graph.content_fingerprint() == engine.pace_graph.content_fingerprint()
        for method in ("T-BS-60", "T-B-P"):
            for expected, actual in zip(
                engine.route_many(queries, method=method),
                booted.route_many(queries, method=method),
            ):
                assert actual.probability == expected.probability
        assert booted.stats().cache_misses == 0

    def test_v2_store_round_trips_bit_exact_fingerprints(self, mined, tmp_path):
        engine, _, _ = mined
        root = tmp_path / "v2-store"
        manifest = engine.save_artifacts(root, format_version=2)
        assert manifest.artifacts[INDEX_ARTIFACT].format_version == 2
        assert manifest.artifacts[INDEX_ARTIFACT].filename.endswith(".bin")
        assert manifest.heuristic_entry_names()
        booted = RoutingEngine.from_artifacts(root)
        # load_index verifies the recomputed fingerprints against the
        # manifest, so a successful boot *is* the bit-exactness assertion —
        # restate it explicitly anyway.
        assert booted.pace_graph.content_fingerprint() == engine.pace_graph.content_fingerprint()
        assert (
            booted.updated_graph.content_fingerprint()
            == engine.updated_graph.content_fingerprint()
        )
        assert booted.stats().cache_misses == 0

    def test_resave_preserves_the_existing_format(self, mined, tmp_path):
        engine, _, _ = mined
        root = tmp_path / "sticky-format"
        engine.save_artifacts(root, format_version=1)
        # A re-save without an explicit format keeps the store at v1 ...
        manifest = engine.save_artifacts(root)
        assert manifest.artifacts[INDEX_ARTIFACT].format_version == 1
        # ... and fresh stores default to v2.
        fresh = engine.save_artifacts(tmp_path / "fresh")
        assert fresh.artifacts[INDEX_ARTIFACT].format_version == 2

    def test_v2_is_smaller_than_v1(self, mined, tmp_path):
        engine, _, _ = mined
        v1 = engine.save_artifacts(tmp_path / "a", format_version=1)
        v2 = engine.save_artifacts(tmp_path / "b", format_version=2)
        assert sum(e.size_bytes for e in v2.artifacts.values()) < sum(
            e.size_bytes for e in v1.artifacts.values()
        )


class TestRejection:
    def _manifest(self, root):
        return json.loads((root / MANIFEST_NAME).read_text())

    def _write_manifest(self, root, payload):
        (root / MANIFEST_NAME).write_text(json.dumps(payload))

    def test_mixed_version_manifest_errors_cleanly(self, mined, tmp_path):
        engine, _, _ = mined
        root = tmp_path / "mixed"
        engine.save_artifacts(root, format_version=2)
        payload = self._manifest(root)
        entry_name = next(
            name for name in payload["artifacts"] if name.startswith(HEURISTIC_ENTRY_PREFIX)
        )
        payload["artifacts"][HEURISTICS_ARTIFACT] = payload["artifacts"][entry_name]
        self._write_manifest(root, payload)
        with pytest.raises(DataError, match="mixes a format-version-1 heuristic bundle"):
            ArtifactStore.open(root)

    def test_unknown_index_format_version_errors_cleanly(self, mined, tmp_path):
        engine, _, _ = mined
        root = tmp_path / "future"
        engine.save_artifacts(root, format_version=2)
        payload = self._manifest(root)
        payload["artifacts"][INDEX_ARTIFACT]["format_version"] = 3
        self._write_manifest(root, payload)
        with pytest.raises(DataError, match=r"format version 3.*supports 1, 2"):
            RoutingEngine.from_artifacts(root)

    def test_unknown_save_format_is_rejected(self, mined, tmp_path):
        engine, _, _ = mined
        with pytest.raises(DataError, match="format version 7"):
            engine.save_artifacts(tmp_path / "nope", format_version=7)

    def test_corrupted_heuristic_document_fails_its_checksum(self, mined, tmp_path):
        engine, _, _ = mined
        root = tmp_path / "bitrot"
        engine.save_artifacts(root, format_version=2)
        victim = next(root.glob("heuristic-*.bin"))
        victim.write_bytes(victim.read_bytes()[:-3] + b"zzz")
        # The streaming reader pins the failure to the corrupted column's
        # digest rather than the whole-file manifest checksum.
        with pytest.raises(DataError, match="checksum"):
            RoutingEngine.from_artifacts(root)

    def test_swapped_heuristic_documents_are_detected(self, mined, tmp_path):
        """A file that passes its checksum but holds another slot's table."""
        engine, _, _ = mined
        root = tmp_path / "swapped"
        engine.save_artifacts(root, format_version=2)
        payload = self._manifest(root)
        names = [n for n in payload["artifacts"] if n.startswith(HEURISTIC_ENTRY_PREFIX)]
        first, second = names[0], names[1]
        payload["artifacts"][first], payload["artifacts"][second] = (
            payload["artifacts"][second],
            payload["artifacts"][first],
        )
        self._write_manifest(root, payload)
        with pytest.raises(DataError, match="decodes to a different heuristic"):
            RoutingEngine.from_artifacts(root)


class TestIncrementalPrewarm:
    def test_resave_only_touches_changed_heuristic_documents(self, tmp_path):
        engine = RECIPE.build_engine(settings=SETTINGS)
        vertices = sorted(engine.pace_graph.network.vertex_ids())
        engine.prewarm("T-BS-60", [vertices[-1], vertices[-2]])
        root = tmp_path / "incremental"
        engine.save_artifacts(root, format_version=2)
        before = _file_states(root, "heuristic-*.bin")
        index_before = _file_states(root, "index-*.bin")

        booted = RoutingEngine.from_artifacts(root)
        booted.prewarm("T-BS-60", [vertices[0]])  # one new destination
        booted.save_artifacts(root)

        after = _file_states(root, "heuristic-*.bin")
        new_files = set(after) - set(before)
        assert len(new_files) == 1, "exactly the new destination's table is written"
        for name in before:
            # untouched tables: same file, same bytes, same mtime (not rewritten)
            assert after[name] == before[name]
        assert _file_states(root, "index-*.bin") == index_before
        manifest = ArtifactStore.open(root).manifest
        assert len(manifest.heuristic_entry_names()) == 3

    def test_replaced_table_swaps_its_document_and_collects_the_old_one(self, tmp_path):
        """Same slot, different content: the document is replaced, not duplicated."""
        settings_small = RouterSettings(max_budget=600.0, max_explored=2000)
        engine = RECIPE.build_engine(settings=settings_small)
        vertices = sorted(engine.pace_graph.network.vertex_ids())
        destination = vertices[-1]
        engine.prewarm("T-BS-60", [destination])
        root = tmp_path / "replaced"
        engine.save_artifacts(root, format_version=2)
        old_files = set(_file_states(root, "heuristic-*.bin"))

        # Rebuild the same slot's table over a larger budget grid: same key,
        # different cells -> different content digest.
        bigger = RECIPE.build_engine(settings=RouterSettings(max_budget=900.0, max_explored=2000))
        bigger.prewarm("T-BS-60", [destination])
        bigger.save_artifacts(root)

        new_files = set(_file_states(root, "heuristic-*.bin"))
        assert new_files != old_files
        assert len(new_files) == 1, "the superseded document was garbage-collected"
        manifest = ArtifactStore.open(root).manifest
        assert len(manifest.heuristic_entry_names()) == 1


class TestMigration:
    def test_cli_migrates_v1_store_in_place(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(
            [
                "build-artifacts", "--dataset", "tiny", "--out", str(store),
                "--format", "v1", "--sweeps", "1",
                "--method", "T-BS-60", "--destinations", "35",
            ]
        ) == 0
        before = ArtifactStore.open(store).manifest
        assert before.artifacts[INDEX_ARTIFACT].format_version == 1
        capsys.readouterr()

        assert main(["migrate-artifacts", str(store)]) == 0
        output = capsys.readouterr().out
        assert "v1 -> v2" in output

        after = ArtifactStore.open(store).manifest
        assert after.artifacts[INDEX_ARTIFACT].format_version == 2
        assert after.fingerprints == before.fingerprints
        assert after.recipe == before.recipe
        assert after.provenance["mine_seconds"] == before.provenance["mine_seconds"]
        assert len(after.heuristic_entry_names()) == 1
        assert not list(store.glob("*.json.tmp"))
        # no stale v1 blobs left behind
        assert not list(store.glob("heuristics-*.json"))
        assert not list(store.glob("index-*.json"))

        booted = RoutingEngine.from_artifacts(store)
        assert booted.stats().cache_misses == 0
        assert booted.pace_graph.content_fingerprint() == before.fingerprints["pace"]

    def test_migrate_is_idempotent_at_v2(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(
            ["build-artifacts", "--dataset", "tiny", "--out", str(store), "--sweeps", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["migrate-artifacts", str(store)]) == 0
        first = _file_states(store, "index-*.bin")
        assert main(["migrate-artifacts", str(store)]) == 0
        assert _file_states(store, "index-*.bin") == first

    def test_migrate_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["migrate-artifacts", str(tmp_path / "nowhere")]) == 2
        assert "no artifact store" in capsys.readouterr().err

    def test_migrate_with_unloadable_heuristics_keeps_them_and_says_so(
        self, tmp_path, capsys
    ):
        """Entries the engine cannot serve are kept verbatim, not silently lost.

        Floor-built tables are skipped on every load (inadmissible), so a
        store holding only those migrates its index but carries the heuristic
        documents over unchanged — and the CLI must report exactly that
        instead of claiming they were dropped.
        """
        from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic

        engine = RECIPE.build_engine(settings=SETTINGS)
        destination = sorted(engine.pace_graph.network.vertex_ids())[-1]
        floor_built = BudgetSpecificHeuristic(
            engine.pace_graph,
            destination,
            BudgetHeuristicConfig(
                delta=60.0, max_budget=SETTINGS.max_budget, grid_rounding="floor"
            ),
        )
        engine.heuristic_cache.insert(
            ("budget", 60.0, engine.pace_graph.content_fingerprint(), destination),
            floor_built,
        )
        store = tmp_path / "floor-store"
        engine.save_artifacts(store, format_version=1)
        before = ArtifactStore.open(store).manifest
        assert HEURISTICS_ARTIFACT in before.artifacts

        assert main(["migrate-artifacts", str(store)]) == 0
        captured = capsys.readouterr()
        assert "NOT migrated" in captured.err

        after = ArtifactStore.open(store).manifest
        assert after.artifacts[INDEX_ARTIFACT].format_version == 2
        # the unloadable bundle survives byte-for-byte in its original format
        assert after.artifacts[HEURISTICS_ARTIFACT] == before.artifacts[HEURISTICS_ARTIFACT]
