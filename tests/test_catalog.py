"""Tests for the fleet catalog (``repro.catalog``).

Covers the connection discipline (WAL + foreign keys + write-in-transaction),
the registry (register/sync/drift/verify over real artifact stores) and the
resumable fleet operations — including the headline scenario: a fleet
migration killed after store 1 of 2 resumes without redoing store 1, while
WAL keeps concurrent readers unblocked throughout.
"""

from __future__ import annotations

import shutil
import sqlite3
import threading

import pytest

from repro.catalog import (
    SCHEMA_VERSION,
    CatalogDB,
    create_operation,
    find_resumable,
    find_stores,
    get_operation,
    get_store,
    list_stores,
    migrate_worker,
    prewarm_worker,
    register_store,
    run_operation,
    stale_stores,
    store_staleness,
    sync_all,
    sync_store,
    unregister_store,
    verify_fleet,
    verify_store,
)
from repro.core.errors import DataError
from repro.persistence.store import MANIFEST_NAME, ArtifactStore
from repro.routing import RoutingEngine


@pytest.fixture(scope="module")
def tiny_engine(tiny_artifact_store):
    """An engine booted once from the session store; used to stamp out copies."""
    return RoutingEngine.from_artifacts(tiny_artifact_store)


@pytest.fixture()
def make_store(tiny_engine, tmp_path):
    """Factory writing a fresh store directory in the requested format."""

    def _make(name: str, *, format_version: int = 2):
        root = tmp_path / name
        tiny_engine.save_artifacts(root, format_version=format_version)
        return root

    return _make


@pytest.fixture()
def db(tmp_path):
    with CatalogDB(tmp_path / "catalog.sqlite") as handle:
        yield handle


class TestCatalogDB:
    def test_connection_pragmas_are_applied(self, db):
        assert db.query_one("PRAGMA journal_mode")[0] == "wal"
        assert db.query_one("PRAGMA foreign_keys")[0] == 1

    def test_schema_version_is_stamped(self, db):
        assert db.query_one("PRAGMA user_version")[0] == SCHEMA_VERSION

    def test_reopening_an_existing_catalog_keeps_its_rows(self, tmp_path, make_store):
        path = tmp_path / "catalog.sqlite"
        with CatalogDB(path) as first:
            register_store(first, make_store("s1"))
        with CatalogDB(path, create=False) as second:
            assert len(list_stores(second)) == 1

    def test_create_false_on_a_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(DataError, match="repro catalog register"):
            CatalogDB(tmp_path / "absent.sqlite", create=False)

    def test_garbage_file_is_a_dataerror_not_a_traceback(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        path.write_bytes(b"this is not a sqlite database, honest")
        with pytest.raises(DataError, match="catalog database"):
            CatalogDB(path)

    def test_foreign_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        CatalogDB(path).close()
        raw = sqlite3.connect(path)
        raw.execute("PRAGMA user_version = 99")
        raw.close()
        with pytest.raises(DataError, match="schema version 99"):
            CatalogDB(path)

    def test_writes_outside_a_transaction_are_refused(self, db):
        with pytest.raises(DataError, match="transaction"):
            db.execute("DELETE FROM stores")

    def test_transaction_rolls_back_on_exception(self, db, make_store):
        register_store(db, make_store("s1"))
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM stores")
                raise RuntimeError("abort")
        assert len(list_stores(db)) == 1

    def test_nested_transaction_joins_the_outer_one(self, db, make_store):
        store = make_store("s1")
        with db.transaction():
            register_store(db, store)  # opens its own transaction() internally
        assert len(list_stores(db)) == 1

    def test_contended_write_lock_surfaces_as_dataerror(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        with CatalogDB(path) as writer, CatalogDB(
            path, timeout_seconds=0.05
        ) as impatient:
            with writer.transaction():
                writer.execute(
                    "INSERT INTO operations (kind, parameters, created_at, updated_at) "
                    "VALUES ('migrate', '{}', 't', 't')"
                )
                with pytest.raises(DataError, match="locked"):
                    with impatient.transaction():
                        pass

    def test_wal_readers_are_not_blocked_by_an_open_writer(self, tmp_path, make_store):
        """The WAL guarantee the catalog exists for: reads during writes."""
        path = tmp_path / "catalog.sqlite"
        store = make_store("s1")
        with CatalogDB(path) as writer:
            register_store(writer, store)
            results: list[int] = []

            def read_while_writing() -> None:
                with CatalogDB(path, timeout_seconds=1.0) as reader:
                    results.append(len(list_stores(reader)))

            with writer.transaction():
                writer.execute("DELETE FROM stores")
                # The write is uncommitted: a reader must neither block nor
                # see it.
                thread = threading.Thread(target=read_while_writing)
                thread.start()
                thread.join(timeout=5.0)
                assert not thread.is_alive(), "reader blocked behind the writer"
                writer.execute(
                    "INSERT INTO operations (kind, parameters, created_at, updated_at) "
                    "VALUES ('migrate', '{}', 't', 't')"
                )
        assert results == [1]


class TestRegistry:
    def test_register_records_the_store_identity(self, db, make_store):
        record = register_store(db, make_store("s1", format_version=1))
        assert record.format_version == 1
        assert record.dataset == "tiny"
        assert record.regime == "peak"
        assert record.tau == 20
        assert len(record.pace_fingerprint) == 32
        assert record.total_bytes > 0
        assert record.settings_digest
        assert record.max_budget == pytest.approx(900.0)

    def test_register_writes_one_artifact_row_per_manifest_entry(self, db, make_store):
        store = make_store("s1")
        record = register_store(db, store)
        rows = db.query(
            "SELECT name, kind FROM artifacts WHERE store_id = ? ORDER BY name",
            (record.store_id,),
        )
        names = {row["name"]: row["kind"] for row in rows}
        assert names["index"] == "index"
        manifest_entries = len(ArtifactStore(store).manifest.artifacts)
        assert len(rows) == manifest_entries

    def test_register_is_an_upsert_keyed_by_path(self, db, make_store):
        store = make_store("s1")
        first = register_store(db, store)
        second = register_store(db, store)
        assert first.store_id == second.store_id
        assert len(list_stores(db)) == 1

    def test_registering_a_missing_store_writes_nothing(self, db, tmp_path):
        with pytest.raises(DataError, match="no artifact store"):
            register_store(db, tmp_path / "absent")
        assert list_stores(db) == []

    def test_sync_reports_republish_as_changed(self, db, make_store, tiny_engine):
        store = make_store("s1")
        register_store(db, store)
        _, unchanged = sync_store(db, store)
        assert unchanged is False
        tiny_engine.save_artifacts(store, provenance={"republished": True})
        record, changed = sync_store(db, store)
        assert changed is True
        assert store_staleness(record) is None

    def test_behind_the_back_republish_is_detected_as_drift(
        self, db, make_store, tiny_engine
    ):
        store = make_store("s1")
        register_store(db, store)
        assert stale_stores(db) == []
        tiny_engine.save_artifacts(store, provenance={"republished": True})
        stale = stale_stores(db)
        assert [(r.path, why) for r, why in stale] == [(str(store.resolve()), "drifted")]

    def test_deleted_store_is_reported_missing(self, db, make_store):
        store = make_store("s1")
        record = register_store(db, store)
        shutil.rmtree(store)
        assert store_staleness(record) == "missing"
        synced, errors = sync_all(db)
        assert synced == [] and len(errors) == 1

    def test_find_stores_by_graph_fingerprint_matches_both_identities(
        self, db, make_store
    ):
        record = register_store(db, make_store("s1"))
        register_store(db, make_store("s2"))
        assert len(find_stores(db, graph_fingerprint=record.pace_fingerprint)) == 2
        assert find_stores(db, graph_fingerprint="0" * 32) == []
        if record.updated_fingerprint is not None:
            matched = find_stores(db, graph_fingerprint=record.updated_fingerprint)
            assert len(matched) == 2

    def test_find_stores_by_format_version_means_any_artifact(self, db, make_store):
        register_store(db, make_store("v1-store", format_version=1))
        register_store(db, make_store("v2-store", format_version=2))
        v1 = find_stores(db, format_version=1)
        assert [r.path.endswith("v1-store") for r in v1] == [True]
        assert len(find_stores(db, format_version=2)) == 1

    def test_find_stores_by_dataset(self, db, make_store):
        register_store(db, make_store("s1"))
        assert len(find_stores(db, dataset="tiny")) == 1
        assert find_stores(db, dataset="aalborg-like") == []

    def test_verify_ok_on_a_fresh_store(self, db, make_store):
        record = register_store(db, make_store("s1"))
        result = verify_store(db, record, deep=True)
        assert result.ok and result.status == "ok"

    def test_verify_reports_truncated_artifact_as_corrupt(self, db, make_store):
        store = make_store("s1")
        record = register_store(db, store)
        victim = next(p for p in store.iterdir() if p.name != MANIFEST_NAME)
        victim.write_bytes(victim.read_bytes()[:-10])
        result = verify_store(db, record)
        assert result.status == "corrupt"
        assert any("bytes" in problem for problem in result.problems)

    def test_deep_verify_catches_same_size_bitrot(self, db, make_store):
        store = make_store("s1")
        record = register_store(db, store)
        victim = next(p for p in store.iterdir() if p.name != MANIFEST_NAME)
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        assert verify_store(db, record).status == "ok"  # shallow: size matches
        deep = verify_store(db, record, deep=True)
        assert deep.status == "corrupt"
        assert any("checksum" in problem for problem in deep.problems)

    def test_verify_prefers_drifted_over_corrupt(self, db, make_store, tiny_engine):
        store = make_store("s1", format_version=1)
        record = register_store(db, store)
        # Republish in another format: files changed wholesale, but that is
        # drift (re-sync fixes it), not corruption.
        tiny_engine.save_artifacts(store, format_version=2)
        result = verify_store(db, record, deep=True)
        assert result.status == "drifted"
        assert "sync" in result.problems[0]

    def test_verify_fleet_orders_by_path(self, db, make_store):
        register_store(db, make_store("b-store"))
        register_store(db, make_store("a-store"))
        results = verify_fleet(db)
        assert [r.path for r in results] == sorted(r.path for r in results)

    def test_unregister_cascades_to_artifact_rows(self, db, make_store):
        store = make_store("s1")
        record = register_store(db, store)
        assert unregister_store(db, store) is True
        assert get_store(db, store) is None
        rows = db.query("SELECT * FROM artifacts WHERE store_id = ?", (record.store_id,))
        assert rows == []
        assert unregister_store(db, store) is False


class TestFleetOperations:
    def _fleet(self, db, make_store, count=2, format_version=1):
        stores = [
            make_store(f"store{i}", format_version=format_version)
            for i in range(1, count + 1)
        ]
        records = [register_store(db, store) for store in stores]
        return stores, records

    def test_unknown_operation_kind_is_refused(self, db, make_store):
        _, records = self._fleet(db, make_store, count=1)
        with pytest.raises(DataError, match="unknown fleet operation kind"):
            create_operation(db, "defragment", {}, records)

    def test_empty_target_list_is_refused(self, db):
        with pytest.raises(DataError, match="no target stores"):
            create_operation(db, "migrate", {"to": 2}, [])

    def test_full_migration_converts_every_store(self, db, make_store):
        stores, records = self._fleet(db, make_store, format_version=1)
        operation = create_operation(db, "migrate", {"to": 2}, records)
        result = run_operation(db, operation, migrate_worker(2))
        assert result.status == "done"
        assert all(step.status == "done" for step in result.steps)
        assert all("migrated v1 -> v2" in step.detail for step in result.steps)
        assert find_stores(db, format_version=1) == []
        assert len(find_stores(db, format_version=2)) == 2

    def test_killed_fleet_migration_resumes_without_redoing_done_stores(
        self, db, make_store
    ):
        """The headline resume contract, asserted via the operations state."""
        _, records = self._fleet(db, make_store, format_version=1)
        operation = create_operation(db, "migrate", {"to": 2}, records)
        real = migrate_worker(2)
        calls: list[str] = []

        def killed_after_first(db_, record):
            calls.append(record.path)
            if len(calls) == 2:
                raise KeyboardInterrupt  # the operator's ^C mid-fleet
            return real(db_, record)

        with pytest.raises(KeyboardInterrupt):
            run_operation(db, operation, killed_after_first)

        # The database records exactly how far the run got.
        partial = get_operation(db, operation.operation_id)
        statuses = sorted(step.status for step in partial.steps)
        assert statuses == ["done", "running"]
        assert partial.status == "running"

        resumed = find_resumable(db, "migrate", {"to": 2})
        assert resumed is not None
        assert resumed.operation_id == operation.operation_id

        replayed: list[str] = []

        def counting(db_, record):
            replayed.append(record.path)
            return real(db_, record)

        final = run_operation(db, resumed, counting)
        assert final.status == "done"
        # Store 1 was NOT redone: one attempt, untouched by the resume.
        done_first = next(s for s in final.steps if s.path == calls[0])
        interrupted = next(s for s in final.steps if s.path != calls[0])
        assert done_first.attempts == 1
        assert interrupted.attempts == 2
        assert replayed == [interrupted.path]

    def test_failed_store_does_not_wedge_the_fleet(self, db, make_store):
        stores, records = self._fleet(db, make_store, format_version=1)
        shutil.rmtree(stores[0])  # one store is broken; the fleet moves on
        operation = create_operation(db, "migrate", {"to": 2}, records)
        result = run_operation(db, operation, migrate_worker(2))
        assert result.status == "failed"
        assert len(result.failed_steps) == 1
        assert "no artifact store" in result.failed_steps[0].error
        assert len(result.done_steps) == 1

    def test_resume_retries_failed_steps(self, db, make_store, tiny_engine):
        stores, records = self._fleet(db, make_store, format_version=1)
        shutil.rmtree(stores[0])
        operation = create_operation(db, "migrate", {"to": 2}, records)
        first = run_operation(db, operation, migrate_worker(2))
        assert first.status == "failed"
        tiny_engine.save_artifacts(stores[0], format_version=1)  # store healed
        resumed = find_resumable(db, "migrate", {"to": 2})
        final = run_operation(db, resumed, migrate_worker(2))
        assert final.status == "done"
        healed = next(s for s in final.steps if s.path == str(stores[0].resolve()))
        assert healed.attempts == 2

    def test_done_operations_are_not_resumable(self, db, make_store):
        _, records = self._fleet(db, make_store, count=1)
        operation = create_operation(db, "migrate", {"to": 2}, records)
        run_operation(db, operation, migrate_worker(2))
        assert find_resumable(db, "migrate", {"to": 2}) is None

    def test_parameters_scope_the_resume_match(self, db, make_store):
        _, records = self._fleet(db, make_store, count=1)
        create_operation(db, "migrate", {"to": 1}, records)
        assert find_resumable(db, "migrate", {"to": 2}) is None

    def test_prewarm_worker_updates_the_catalog_counts(self, db, make_store):
        _, records = self._fleet(db, make_store, count=1, format_version=2)
        before = records[0].heuristic_documents
        operation = create_operation(db, "prewarm", {"method": "V-BS-60"}, records)
        result = run_operation(
            db, operation, prewarm_worker("V-BS-60", destinations=[5])
        )
        assert result.status == "done"
        assert "prewarmed" in result.done_steps[0].detail
        after = get_store(db, records[0].path)
        assert after.heuristic_documents >= before
