"""Tests for V-path construction and the updated PACE graph (Lemma 4.1)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, GraphError
from repro.vpaths.builder import VPathBuilderConfig, build_vpaths
from repro.vpaths.updated_graph import UpdatedPaceGraph


class TestBuilder:
    def test_paper_example_produces_the_expected_vpath(self, paper_example):
        """p1 = <e1,e4> and p2 = <e4,e9> overlap, and <e1,e4,e9> is not a T-path -> V-path."""
        result = build_vpaths(paper_example.pace_graph)
        keys = set(result.vpaths)
        assert (1, 4, 9) in keys

    def test_no_vpath_when_underlying_path_is_a_tpath(self, paper_example):
        """p3 = <e3,e6> and p4 = <e6,e8> overlap, but <e3,e6,e8> is already T-path p5."""
        result = build_vpaths(paper_example.pace_graph)
        # p5's edge sequence must not appear among the V-paths.
        assert (3, 6, 8) not in set(result.vpaths)

    def test_vpath_distribution_matches_assembly(self, paper_example):
        """The V-path's stored total must equal the PACE assembly of its underlying path."""
        pace = paper_example.pace_graph
        result = build_vpaths(pace)
        vpath = result.vpaths[(1, 4, 9)]
        expected = pace.path_cost_distribution(paper_example.network.path_from_edge_ids([1, 4, 9]))
        assert vpath.distribution == expected

    def test_vpaths_do_not_keep_joints(self, paper_example):
        result = build_vpaths(paper_example.pace_graph)
        assert all(element.joint is None for element in result.vpaths.values())

    def test_cardinality_histogram(self, paper_example):
        result = build_vpaths(paper_example.pace_graph)
        histogram = result.cardinality_histogram()
        assert sum(histogram.values()) == result.count
        assert all(card >= 3 for card in histogram)

    def test_max_cardinality_caps_growth(self, small_pace_graph):
        small = build_vpaths(small_pace_graph, VPathBuilderConfig(max_cardinality=3))
        large = build_vpaths(small_pace_graph, VPathBuilderConfig(max_cardinality=8))
        assert small.count <= large.count
        if small.vpaths:
            assert max(v.cardinality for v in small.vpaths.values()) <= 3

    def test_max_vpaths_budget_respected(self, small_pace_graph):
        result = build_vpaths(small_pace_graph, VPathBuilderConfig(max_vpaths=3))
        assert result.count <= 3

    def test_vpaths_are_simple_paths(self, small_pace_graph):
        result = build_vpaths(small_pace_graph)
        assert all(element.path.is_simple() for element in result.vpaths.values())

    def test_vpaths_longer_than_tpaths(self, small_pace_graph):
        """V-paths merge overlapping T-paths, so they cover strictly more edges."""
        result = build_vpaths(small_pace_graph)
        if result.count:
            min_vpath = min(v.cardinality for v in result.vpaths.values())
            assert min_vpath >= 3

    def test_smaller_tau_gives_more_vpaths(self, small_dataset):
        from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph

        trajectories = list(small_dataset.peak)
        few_tpaths = build_pace_graph(
            small_dataset.network, trajectories, TPathMinerConfig(tau=60, resolution=5)
        )
        many_tpaths = build_pace_graph(
            small_dataset.network, trajectories, TPathMinerConfig(tau=10, resolution=5)
        )
        assert build_vpaths(many_tpaths).count >= build_vpaths(few_tpaths).count

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            VPathBuilderConfig(max_cardinality=1).validate()
        with pytest.raises(ConfigurationError):
            VPathBuilderConfig(max_vpaths=0).validate()
        with pytest.raises(ConfigurationError):
            VPathBuilderConfig(max_rounds=0).validate()


class TestUpdatedGraph:
    def test_outgoing_elements_include_vpaths(self, paper_example):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        elements = updated.outgoing_elements(paper_example.source)
        kinds = {(e.kind.value, e.path.edges) for e in elements}
        assert ("vpath", (1, 4, 9)) in kinds
        assert ("tpath", (1, 4)) in kinds
        assert ("edge", (1,)) in kinds

    def test_out_degree_increases_with_vpaths(self, paper_example):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        pace_degree = paper_example.pace_graph.out_degree_with_tpaths(paper_example.source)
        assert updated.out_degree_with_vpaths(paper_example.source) == pace_degree + 1

    def test_average_and_max_out_degree(self, small_updated_graph):
        assert small_updated_graph.average_out_degree() > 0
        assert small_updated_graph.max_out_degree() >= small_updated_graph.average_out_degree()

    def test_vpath_lookup(self, paper_example):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        assert updated.has_vpath((1, 4, 9))
        assert updated.vpath((1, 4, 9)).is_vpath()
        assert not updated.has_vpath((2, 3))
        with pytest.raises(GraphError):
            updated.vpath((2, 3))

    def test_incoming_elements_include_vpaths(self, paper_example):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        incoming = updated.incoming_elements(3)  # v3 is the target of the V-path <e1,e4,e9>
        assert any(e.is_vpath() for e in incoming)

    def test_rejects_non_vpath_elements(self, paper_example):
        tpath = next(iter(paper_example.pace_graph.tpaths()))
        with pytest.raises(GraphError):
            UpdatedPaceGraph(paper_example.pace_graph, {tpath.path.edges: tpath})

    def test_convolution_only_evaluation_matches_pace(self, paper_example):
        """Lemma 4.1 on the example: convolution over the V-path decomposition equals PACE."""
        pace = paper_example.pace_graph
        updated, _ = UpdatedPaceGraph.build(pace)
        # Path <e1,e4,e9,e10> decomposes into the V-path (1,4,9) followed by edge 10.
        vpath = updated.vpath((1, 4, 9))
        combined = vpath.distribution.convolve(pace.edge_weight(10))
        exact = pace.path_cost_distribution(paper_example.network.path_from_edge_ids([1, 4, 9, 10]))
        assert combined == exact

    def test_repr(self, small_updated_graph):
        assert "vpaths=" in repr(small_updated_graph)
