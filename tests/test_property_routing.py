"""Property-based tests of routing invariants on randomly generated PACE graphs.

These complement the exact paper-example tests: for arbitrary small uncertain
road networks with randomly mined T-paths, the structural guarantees the
algorithms rely on must hold — heuristic admissibility, monotonicity of the
arriving-on-time objective in the budget, agreement between the guided
routers and the exhaustive baseline, and the soundness of dominance pruning
on the updated graph.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.edge_graph import EdgeGraph
from repro.core.distributions import Distribution
from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import max_prob
from repro.heuristics.binary import PaceBinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.network.road_network import RoadNetwork
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.queries import RoutingQuery
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig
from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph
from repro.trajectories.model import Trajectory
from repro.vpaths.updated_graph import UpdatedPaceGraph


def _random_instance(seed: int) -> tuple[PaceGraph, UpdatedPaceGraph, int, int]:
    """A small random grid PACE graph plus a routable source/destination pair."""
    rng = random.Random(seed)
    rows, cols = 3, 4
    network = RoadNetwork(name=f"random-{seed}")
    for row in range(rows):
        for col in range(cols):
            network.add_vertex(row * cols + col, col * 100.0, row * 100.0)
    for row in range(rows):
        for col in range(cols):
            here = row * cols + col
            if col + 1 < cols:
                network.add_edge(here, here + 1, speed_limit=50)
                network.add_edge(here + 1, here, speed_limit=50)
            if row + 1 < rows:
                network.add_edge(here, here + cols, speed_limit=50)
                network.add_edge(here + cols, here, speed_limit=50)

    # Random trips between the two far corners (and a few random pairs), with
    # correlated per-edge costs produced by a per-trip slowness factor.
    trajectories = []
    source, destination = 0, rows * cols - 1
    for trip in range(40):
        walk = [source]
        current = source
        while current != destination and len(walk) < 12:
            candidates = [
                e.target
                for e in network.out_edges(current)
                if e.target not in walk
                and (e.target % cols >= current % cols)
                and (e.target // cols >= current // cols)
            ]
            if not candidates:
                break
            current = rng.choice(candidates)
            walk.append(current)
        if current != destination:
            continue
        path = network.path_from_vertex_ids(walk)
        slowness = rng.choice([1.0, 1.0, 1.4])
        costs = tuple(
            max(5.0, round((10 + 4 * rng.random()) * slowness / 5) * 5) for _ in path.edges
        )
        trajectories.append(Trajectory(trip, path, costs, departure_time=8 * 3600.0))
    pace = build_pace_graph(
        network, trajectories, TPathMinerConfig(tau=4, max_cardinality=3, resolution=5.0)
    )
    updated, _ = UpdatedPaceGraph.build(pace)
    return pace, updated, source, destination


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_binary_heuristic_is_admissible_on_random_graphs(seed):
    """getMin never exceeds the minimum cost of any concrete path to the destination."""
    pace, _, source, destination = _random_instance(seed)
    heuristic = PaceBinaryHeuristic(pace, destination)
    baseline = NaivePaceRouter(pace, NaiveRouterConfig(max_explored=4000))
    result = baseline.route(RoutingQuery(source, destination, budget=10_000.0))
    if result.found:
        assert heuristic.min_cost(source) <= result.distribution.min() + 1e-9


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_budget_heuristic_upper_bounds_every_candidate_path(seed):
    """Eq. 3 with the budget-specific heuristic never under-estimates a path's probability.

    The Eq. 5 recursion assembles path costs by convolving *independent*
    element weights, so that is the semantics the bound is admissible for.
    Exact PACE evaluation of a concrete path can exceed the bound when
    positively-correlated T-path joints make the tail lighter than the
    independent assembly (e.g. ``seed=102``: a path with PACE probability 1.0
    against a bound of 0.96) — a known gap of the reproduction, see the
    "known gaps" notes in EXPERIMENTS.md.  The candidate path found by the
    baseline is therefore re-evaluated here under edge-wise independent
    convolution before being compared against the bound.
    """
    pace, _, source, destination = _random_instance(seed)
    heuristic = BudgetSpecificHeuristic(
        pace, destination, BudgetHeuristicConfig(delta=15, max_budget=600)
    )
    baseline = NaivePaceRouter(pace, NaiveRouterConfig(max_explored=4000))
    for budget in (60.0, 90.0, 120.0):
        result = baseline.route(RoutingQuery(source, destination, budget=budget))
        if not result.found:
            continue
        independent = Distribution.point(0.0)
        for edge_id in result.path.edges:
            independent = independent.convolve(pace.edge_element(edge_id).distribution)
        trivial_prefix = Distribution.point(0.0)
        bound = max_prob(trivial_prefix, heuristic, source, budget)
        assert bound >= independent.prob_at_most(budget) - 1e-6


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_probability_is_monotone_in_budget(seed):
    """A larger budget can never decrease the best arriving-on-time probability."""
    pace, updated, source, destination = _random_instance(seed)
    router = VPathRouter(updated, None, config=VPathRouterConfig(max_explored=4000))
    probabilities = [
        router.route(RoutingQuery(source, destination, budget=budget)).probability
        for budget in (60.0, 90.0, 120.0, 200.0)
    ]
    assert all(b >= a - 1e-9 for a, b in zip(probabilities, probabilities[1:]))


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dominance_pruning_never_hurts_result_quality(seed):
    """With and without dominance pruning, exhaustive V-path routing agrees."""
    _, updated, source, destination = _random_instance(seed)
    query = RoutingQuery(source, destination, budget=120.0)
    with_pruning = VPathRouter(
        updated, None, config=VPathRouterConfig(max_explored=4000, use_dominance=True)
    ).route(query)
    without_pruning = VPathRouter(
        updated, None, config=VPathRouterConfig(max_explored=4000, use_dominance=False)
    ).route(query)
    assert with_pruning.probability == pytest.approx(without_pruning.probability, abs=1e-6)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_edge_fallback_weights_cover_whole_network(seed):
    """Every edge of a mined graph has a usable weight (empirical or free-flow)."""
    pace, _, _, _ = _random_instance(seed)
    edge_graph: EdgeGraph = pace.edge_graph
    for edge in pace.network.edges():
        weight = edge_graph.weight(edge.edge_id)
        assert weight.min() > 0
