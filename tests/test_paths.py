"""Tests for the path algebra (sub-paths, overlaps, concatenation)."""

from __future__ import annotations

import pytest

from repro.core.errors import PathError
from repro.core.paths import Path


def make_chain(num_edges: int, *, start_vertex: int = 0, start_edge: int = 100) -> Path:
    """A simple chain path of ``num_edges`` edges, e.g. v0 -e100-> v1 -e101-> v2 ..."""
    edges = [start_edge + i for i in range(num_edges)]
    vertices = [start_vertex + i for i in range(num_edges + 1)]
    return Path(edges, vertices)


class TestConstruction:
    def test_basic_properties(self):
        path = make_chain(3)
        assert path.source == 0
        assert path.target == 3
        assert path.cardinality == 3
        assert len(path) == 3
        assert list(path) == [100, 101, 102]

    def test_vertex_count_must_match(self):
        with pytest.raises(PathError):
            Path([1, 2], [0, 1])

    def test_rejects_empty(self):
        with pytest.raises(PathError):
            Path([], [0])

    def test_rejects_repeated_edge(self):
        with pytest.raises(PathError):
            Path([1, 1], [0, 1, 2])

    def test_equality_and_hash(self):
        assert make_chain(3) == make_chain(3)
        assert hash(make_chain(3)) == hash(make_chain(3))
        assert make_chain(3) != make_chain(4)

    def test_is_simple(self):
        assert make_chain(4).is_simple()
        loop = Path([1, 2], [0, 1, 0])
        assert not loop.is_simple()

    def test_visits(self):
        path = make_chain(3)
        assert path.visits(2)
        assert not path.visits(9)

    def test_repr(self):
        assert "100" in repr(make_chain(1))


class TestSubPaths:
    def test_sub_path(self):
        path = make_chain(4)
        sub = path.sub_path(1, 3)
        assert sub.edges == (101, 102)
        assert sub.vertices == (1, 2, 3)

    def test_sub_path_bounds_checked(self):
        with pytest.raises(PathError):
            make_chain(3).sub_path(2, 2)
        with pytest.raises(PathError):
            make_chain(3).sub_path(-1, 2)
        with pytest.raises(PathError):
            make_chain(3).sub_path(0, 5)

    def test_prefix_and_suffix(self):
        path = make_chain(4)
        assert path.prefix(2).edges == (100, 101)
        assert path.suffix(2).edges == (102, 103)

    def test_is_prefix_of(self):
        path = make_chain(4)
        assert path.prefix(2).is_prefix_of(path)
        assert not path.suffix(2).is_prefix_of(path)
        assert not make_chain(5).is_prefix_of(path)

    def test_is_suffix_of(self):
        path = make_chain(4)
        assert path.suffix(3).is_suffix_of(path)
        assert not path.prefix(2).is_suffix_of(path)

    def test_is_sub_path_of(self):
        path = make_chain(5)
        assert path.sub_path(1, 4).is_sub_path_of(path)
        other = Path([999], [0, 1])
        assert not other.is_sub_path_of(path)

    def test_index_of_edge(self):
        path = make_chain(3)
        assert path.index_of_edge(101) == 1
        assert path.index_of_edge(12345) == -1


class TestOverlapAndConcat:
    def test_overlap_with_suffix_prefix(self):
        """The paper's p1 = <e1, e4> and p2 = <e4, e9> overlap on <e4>."""
        p1 = Path([1, 4], [0, 1, 2])
        p2 = Path([4, 9], [1, 2, 3])
        overlap = p1.overlap_with(p2)
        assert overlap is not None
        assert overlap.edges == (4,)

    def test_overlap_longest_is_chosen(self):
        p1 = Path([1, 2, 3], [0, 1, 2, 3])
        p2 = Path([2, 3, 4], [1, 2, 3, 4])
        overlap = p1.overlap_with(p2)
        assert overlap.edges == (2, 3)

    def test_no_overlap(self):
        p1 = Path([1, 2], [0, 1, 2])
        p2 = Path([5, 6], [2, 3, 4])
        assert p1.overlap_with(p2) is None

    def test_follows(self):
        p1 = Path([1, 2], [0, 1, 2])
        p2 = Path([5, 6], [2, 3, 4])
        assert p2.follows(p1)
        assert not p1.follows(p2)

    def test_concat(self):
        p1 = Path([1, 2], [0, 1, 2])
        p2 = Path([5, 6], [2, 3, 4])
        combined = p1.concat(p2)
        assert combined.edges == (1, 2, 5, 6)
        assert combined.vertices == (0, 1, 2, 3, 4)

    def test_concat_requires_adjacency(self):
        p1 = Path([1, 2], [0, 1, 2])
        p3 = Path([7], [9, 10])
        with pytest.raises(PathError):
            p1.concat(p3)

    def test_merge_overlapping(self):
        """Merging the paper's p1 and p2 gives the underlying path <e1, e4, e9>."""
        p1 = Path([1, 4], [0, 1, 2])
        p2 = Path([4, 9], [1, 2, 3])
        merged = p1.merge_overlapping(p2)
        assert merged.edges == (1, 4, 9)
        assert merged.vertices == (0, 1, 2, 3)

    def test_merge_overlapping_contained(self):
        p1 = Path([1, 2, 3], [0, 1, 2, 3])
        contained = Path([3], [2, 3])
        assert p1.merge_overlapping(contained) == p1

    def test_merge_without_overlap_raises(self):
        p1 = Path([1, 2], [0, 1, 2])
        p2 = Path([5, 6], [2, 3, 4])
        with pytest.raises(PathError):
            p1.merge_overlapping(p2)

    def test_reversed_vertices(self):
        path = make_chain(3)
        assert path.reversed_vertices() == (3, 2, 1, 0)
