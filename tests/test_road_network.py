"""Tests for the structural road-network graph."""

from __future__ import annotations

import pytest

from repro.core.errors import GraphError, PathError, UnknownEdgeError, UnknownVertexError
from repro.network.road_network import RoadNetwork


@pytest.fixture
def square_network() -> RoadNetwork:
    """A 2x2 grid with two-way streets, 4 vertices and 8 directed edges."""
    network = RoadNetwork(name="square")
    coordinates = {0: (0, 0), 1: (100, 0), 2: (0, 100), 3: (100, 100)}
    for vertex_id, (x, y) in coordinates.items():
        network.add_vertex(vertex_id, x, y)
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        network.add_edge(a, b, speed_limit=50)
        network.add_edge(b, a, speed_limit=50)
    return network


class TestConstruction:
    def test_counts(self, square_network):
        assert square_network.num_vertices == 4
        assert square_network.num_edges == 8

    def test_add_edge_requires_known_vertices(self, square_network):
        with pytest.raises(UnknownVertexError):
            square_network.add_edge(0, 99)
        with pytest.raises(UnknownVertexError):
            square_network.add_edge(99, 0)

    def test_self_loops_rejected(self, square_network):
        with pytest.raises(GraphError):
            square_network.add_edge(0, 0)

    def test_parallel_edges_rejected(self, square_network):
        with pytest.raises(GraphError):
            square_network.add_edge(0, 1)

    def test_duplicate_edge_id_rejected(self, square_network):
        with pytest.raises(GraphError):
            square_network.add_edge(0, 3, edge_id=0)

    def test_non_positive_length_rejected(self):
        network = RoadNetwork()
        network.add_vertex(0, 0, 0)
        network.add_vertex(1, 0, 0)
        with pytest.raises(GraphError):
            network.add_edge(0, 1, length=0.0)

    def test_default_length_is_euclidean(self, square_network):
        edge = square_network.edge_between(0, 1)
        assert edge.length == pytest.approx(100.0)

    def test_free_flow_time(self, square_network):
        edge = square_network.edge_between(0, 1)
        assert edge.free_flow_time() == pytest.approx(100.0 / (50 / 3.6))

    def test_repr(self, square_network):
        assert "vertices=4" in repr(square_network)


class TestLookups:
    def test_vertex_and_edge_lookup(self, square_network):
        assert square_network.vertex(0).x == 0
        assert square_network.edge(0).source == 0
        assert square_network.has_vertex(3)
        assert not square_network.has_vertex(12)
        assert square_network.has_edge(0)
        assert not square_network.has_edge(99)

    def test_unknown_lookups_raise(self, square_network):
        with pytest.raises(UnknownVertexError):
            square_network.vertex(42)
        with pytest.raises(UnknownEdgeError):
            square_network.edge(42)
        with pytest.raises(UnknownEdgeError):
            square_network.edge_between(0, 3)

    def test_degrees_and_neighbours(self, square_network):
        assert square_network.out_degree(0) == 2
        assert square_network.in_degree(0) == 2
        assert sorted(square_network.neighbours(0)) == [1, 2]

    def test_out_edges_in_edges(self, square_network):
        assert {e.target for e in square_network.out_edges(0)} == {1, 2}
        assert {e.source for e in square_network.in_edges(3)} == {1, 2}

    def test_out_edges_unknown_vertex(self, square_network):
        with pytest.raises(UnknownVertexError):
            square_network.out_edges(42)

    def test_euclidean_distance(self, square_network):
        assert square_network.euclidean_distance(0, 3) == pytest.approx(100 * 2**0.5)

    def test_max_speed_limit(self, square_network):
        assert square_network.max_speed_limit() == 50

    def test_max_speed_limit_empty_network(self):
        with pytest.raises(GraphError):
            RoadNetwork().max_speed_limit()


class TestPaths:
    def test_path_from_vertex_ids(self, square_network):
        path = square_network.path_from_vertex_ids([0, 1, 3])
        assert path.source == 0
        assert path.target == 3
        assert path.cardinality == 2

    def test_path_from_vertex_ids_needs_two_vertices(self, square_network):
        with pytest.raises(PathError):
            square_network.path_from_vertex_ids([0])

    def test_path_from_edge_ids_checks_adjacency(self, square_network):
        e01 = square_network.edge_between(0, 1).edge_id
        e23 = square_network.edge_between(2, 3).edge_id
        with pytest.raises(PathError):
            square_network.path_from_edge_ids([e01, e23])

    def test_path_length_and_time(self, square_network):
        path = square_network.path_from_vertex_ids([0, 1, 3])
        assert square_network.path_length(path) == pytest.approx(200.0)
        assert square_network.path_free_flow_time(path) == pytest.approx(2 * 100 / (50 / 3.6))


class TestDerivedViews:
    def test_reversed_preserves_edge_ids(self, square_network):
        reversed_network = square_network.reversed()
        original = square_network.edge_between(0, 1)
        flipped = reversed_network.edge(original.edge_id)
        assert (flipped.source, flipped.target) == (1, 0)
        assert reversed_network.num_edges == square_network.num_edges

    def test_subgraph(self, square_network):
        sub = square_network.subgraph([0, 1])
        assert sub.num_vertices == 2
        assert sub.num_edges == 2
        assert sub.has_edge_between(0, 1)
        assert not sub.has_vertex(3)
