"""End-to-end tests of the HMM map matcher against the GPS simulator."""

from __future__ import annotations

import pytest

from repro.core.errors import DataError
from repro.network.generators import GridCityConfig, generate_grid_city
from repro.trajectories.generator import TrajectoryGenerator, TrajectoryGeneratorConfig
from repro.trajectories.gps import GpsSimulatorConfig, simulate_gps_trace
from repro.trajectories.map_matching import HmmMapMatcher, MapMatcherConfig
from repro.trajectories.model import GpsPoint, GpsTrace


@pytest.fixture(scope="module")
def network():
    return generate_grid_city(GridCityConfig(rows=5, cols=5, spacing=300.0, seed=4))


@pytest.fixture(scope="module")
def matcher(network):
    return HmmMapMatcher(network, MapMatcherConfig(candidate_radius=120.0, emission_sigma=25.0))


@pytest.fixture(scope="module")
def ground_truth(network):
    config = TrajectoryGeneratorConfig(num_trajectories=12, num_hubs=5, seed=8, min_route_edges=3)
    return TrajectoryGenerator(network, config).generate()


class TestMapMatching:
    def test_recovers_most_ground_truth_edges(self, network, matcher, ground_truth):
        recovered = 0
        total = 0
        for trajectory in ground_truth[:8]:
            trace = simulate_gps_trace(
                network, trajectory, GpsSimulatorConfig(sampling_interval=4.0, noise_sigma=8.0)
            )
            result = matcher.match(trace)
            truth = set(trajectory.path.edges)
            matched = set(result.path.edges)
            recovered += len(truth & matched)
            total += len(truth)
        assert recovered / total > 0.7

    def test_matched_path_is_connected(self, network, matcher, ground_truth):
        trajectory = ground_truth[0]
        trace = simulate_gps_trace(network, trajectory, GpsSimulatorConfig(noise_sigma=10.0))
        result = matcher.match(trace)
        for a, b in zip(result.path.edges, result.path.edges[1:]):
            assert network.edge(a).target == network.edge(b).source

    def test_matched_fraction_reported(self, network, matcher, ground_truth):
        trajectory = ground_truth[1]
        trace = simulate_gps_trace(network, trajectory, GpsSimulatorConfig(noise_sigma=5.0))
        result = matcher.match(trace)
        assert 0 < result.matched_fraction <= 1.0

    def test_to_trajectory_distributes_duration(self, network, matcher, ground_truth):
        trajectory = ground_truth[2]
        trace = simulate_gps_trace(network, trajectory, GpsSimulatorConfig(noise_sigma=5.0))
        result = matcher.match(trace)
        rebuilt = result.to_trajectory(network, trace)
        assert rebuilt.total_cost == pytest.approx(trace.duration, rel=0.05)
        assert rebuilt.num_edges == result.path.cardinality

    def test_trace_far_from_network_rejected(self, matcher):
        faraway = GpsTrace(
            0,
            (GpsPoint(1e7, 1e7, 0.0), GpsPoint(1e7 + 5, 1e7, 5.0), GpsPoint(1e7 + 10, 1e7, 10.0)),
        )
        with pytest.raises(DataError):
            matcher.match(faraway)

    def test_config_validation(self):
        with pytest.raises(DataError):
            MapMatcherConfig(candidate_radius=-1).validate()
        with pytest.raises(DataError):
            MapMatcherConfig(emission_sigma=0).validate()
        with pytest.raises(DataError):
            MapMatcherConfig(max_candidates=0).validate()
