"""Tiered heuristic residency: streaming reads, lazy faulting, byte budgets.

PR 10's contract, pinned from four directions:

* the v2 streaming reader (``ColumnDocumentReader``) decodes without copying
  payloads, defers digest verification to first touch, and detects
  truncation/bit-rot exactly like the eager decoder,
* engines booted ``prewarm="none"`` (or with an explicit key list) answer
  every query identically to an eager boot — including under concurrent
  ``route_many`` on every backend and with eviction pressure mid-batch,
* faults of corrupt entries raise :class:`DataError` without crashing the
  process or wedging the cache, and a budget smaller than one table degrades
  to build-on-miss with a loud warning,
* the eager v1/v2 decode path allocates each column once (the
  double-buffering regression), measured with tracemalloc.
"""

from __future__ import annotations

import hashlib
import shutil
import threading
import tracemalloc

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.persistence.codecs import (
    decode_column_document,
    encode_column_document,
    open_column_document,
)
from repro.persistence.store import HEURISTIC_ENTRY_PREFIX, ArtifactStore
from repro.routing import (
    DatasetRecipe,
    HeuristicCache,
    ProcessBackend,
    RouterSettings,
    RoutingEngine,
    RoutingQuery,
    SerialBackend,
    ThreadBackend,
)
from repro.routing.residency import CacheCounters, heuristic_nbytes, normalise_prewarm

RECIPE = DatasetRecipe(dataset="tiny", regime="peak", tau=20)
SETTINGS = RouterSettings(max_budget=900.0, max_explored=2000)
METHODS = ("T-BS-60", "T-B-P", "V-BS-60")


@pytest.fixture(scope="module")
def mined():
    engine = RECIPE.build_engine(settings=SETTINGS)
    vertices = sorted(engine.pace_graph.network.vertex_ids())
    destinations = [vertices[-1], vertices[len(vertices) // 2], vertices[len(vertices) // 3]]
    for method in METHODS:
        engine.prewarm(method, destinations)
    queries = [
        RoutingQuery(vertices[0], destinations[0], budget=500.0),
        RoutingQuery(vertices[1], destinations[1], budget=350.0),
        RoutingQuery(vertices[2], destinations[2], budget=420.0),
        RoutingQuery(vertices[0], destinations[1], budget=260.0),
        RoutingQuery(vertices[1], destinations[0], budget=610.0),
    ]
    return engine, destinations, queries


@pytest.fixture(scope="module")
def store_v2(mined, tmp_path_factory):
    engine, _, _ = mined
    root = tmp_path_factory.mktemp("residency") / "store-v2"
    engine.save_artifacts(root, format_version=2)
    return root


@pytest.fixture(scope="module")
def store_v1(mined, tmp_path_factory):
    engine, _, _ = mined
    root = tmp_path_factory.mktemp("residency") / "store-v1"
    engine.save_artifacts(root, format_version=1)
    return root


def _assert_identical(expected, actual):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.path == b.path
        assert a.probability == b.probability
        assert a.distribution == b.distribution


def _entry_document(root, key):
    """The on-disk file backing one persisted heuristic entry."""
    manifest = ArtifactStore.open(root).manifest
    return root / manifest.artifacts[HEURISTIC_ENTRY_PREFIX + key].filename


# --------------------------------------------------------------------------- #
# Prewarm policy
# --------------------------------------------------------------------------- #
class TestPrewarmPolicy:
    def test_normalise_accepts_all_none_and_key_sequences(self):
        assert normalise_prewarm("all") == "all"
        assert normalise_prewarm("none") == "none"
        assert normalise_prewarm(["a", "b"]) == ("a", "b")
        assert normalise_prewarm(()) == ()

    @pytest.mark.parametrize("bad", ["everything", "", 7, ["ok", ""], [3]])
    def test_normalise_rejects_junk(self, bad):
        with pytest.raises(ConfigurationError):
            normalise_prewarm(bad)

    def test_prewarm_none_boots_with_an_empty_resident_tier(self, store_v2):
        engine = RoutingEngine.from_artifacts(store_v2, prewarm="none")
        counters = engine.heuristic_cache.counters()
        assert isinstance(counters, CacheCounters)
        assert counters.entries == 0
        assert counters.resident_bytes == 0

    def test_prewarm_all_matches_the_classic_eager_boot(self, store_v2):
        eager = RoutingEngine.from_artifacts(store_v2)  # default prewarm="all"
        explicit = RoutingEngine.from_artifacts(store_v2, prewarm="all")
        assert eager.heuristic_cache.counters().entries > 0
        assert (
            explicit.heuristic_cache.counters().entries
            == eager.heuristic_cache.counters().entries
        )

    def test_prewarm_key_list_loads_exactly_those(self, mined, store_v2):
        _, destinations, _ = mined
        key = f"binary-P-{destinations[0]}"
        engine = RoutingEngine.from_artifacts(store_v2, prewarm=[key])
        counters = engine.heuristic_cache.counters()
        assert counters.entries == 1
        assert counters.resident_bytes > 0

    def test_unknown_prewarm_key_is_rejected_loudly(self, store_v2):
        with pytest.raises(DataError, match="no-such-key"):
            RoutingEngine.from_artifacts(store_v2, prewarm=["no-such-key"])

    def test_artifact_ref_carries_the_boot_policy(self, store_v2):
        engine = RoutingEngine.from_artifacts(store_v2, prewarm="none", cache_bytes=1 << 20)
        assert engine.spec.prewarm == "none"
        assert engine.spec.cache_bytes == 1 << 20

    def test_stats_surface_the_residency_trio(self, mined, store_v2):
        _, _, queries = mined
        engine = RoutingEngine.from_artifacts(store_v2, prewarm="none")
        engine.route_many(queries, method="T-BS-60")
        stats = engine.stats()
        assert stats.cache_faults > 0
        assert stats.cache_misses == 0  # everything was persisted; nothing rebuilt
        assert stats.cache_resident_bytes > 0
        assert stats.cache_evictions == 0


# --------------------------------------------------------------------------- #
# Differential: lazy/evicting engines vs the eager boot
# --------------------------------------------------------------------------- #
class TestDifferentialRouting:
    @pytest.fixture(scope="class")
    def eager_results(self, mined, store_v2):
        _, _, queries = mined
        engine = RoutingEngine.from_artifacts(store_v2)
        return {method: engine.route_many(queries, method=method) for method in METHODS}

    @pytest.mark.parametrize("method", METHODS)
    def test_lazy_boot_is_result_identical(self, mined, store_v2, eager_results, method):
        _, _, queries = mined
        lazy = RoutingEngine.from_artifacts(store_v2, prewarm="none")
        _assert_identical(eager_results[method], lazy.route_many(queries, method=method))
        counters = lazy.heuristic_cache.counters()
        assert counters.faults > 0 and counters.misses == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_v1_store_lazy_boot_is_result_identical(
        self, mined, store_v1, eager_results, method
    ):
        _, _, queries = mined
        lazy = RoutingEngine.from_artifacts(store_v1, prewarm="none")
        _assert_identical(eager_results[method], lazy.route_many(queries, method=method))
        assert lazy.heuristic_cache.counters().faults > 0

    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadBackend(4), lambda: ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_route_many_on_every_backend(
        self, mined, store_v2, eager_results, backend_factory
    ):
        _, _, queries = mined
        lazy = RoutingEngine.from_artifacts(store_v2, prewarm="none")
        backend = backend_factory()
        try:
            results = lazy.route_many(queries, method="T-BS-60", backend=backend)
        finally:
            close = getattr(backend, "close", None)
            if close is not None:
                close()
        _assert_identical(eager_results["T-BS-60"], results)

    def test_concurrent_threads_share_one_fault_per_entry(self, mined, store_v2):
        _, _, queries = mined
        lazy = RoutingEngine.from_artifacts(store_v2, prewarm="none")
        errors = []

        def hammer():
            try:
                lazy.route_many(queries, method="T-BS-60")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        counters = lazy.heuristic_cache.counters()
        # The per-key build lock serialises concurrent misses: each persisted
        # table is faulted exactly once no matter how many threads race.
        assert counters.faults == counters.entries
        assert counters.misses == 0

    def test_eviction_mid_batch_stays_result_identical(self, mined, store_v2, eager_results):
        _, _, queries = mined
        eager = RoutingEngine.from_artifacts(store_v2)
        sizes = [heuristic_nbytes(h) for h in eager.heuristic_cache.snapshot().values()]
        # Room for roughly one table: routing a multi-destination batch must
        # evict mid-flight and still answer every query identically.
        budget = int(max(sizes) * 1.2)
        bounded = RoutingEngine.from_artifacts(store_v2, prewarm="none", cache_bytes=budget)
        for method in METHODS:
            _assert_identical(
                eager_results[method], bounded.route_many(queries, method=method)
            )
        counters = bounded.heuristic_cache.counters()
        assert counters.evictions > 0
        assert counters.resident_bytes <= budget
        assert counters.entries >= 1


# --------------------------------------------------------------------------- #
# Fault tier failure modes
# --------------------------------------------------------------------------- #
class TestFaultTier:
    def test_corrupt_entry_faults_as_data_error_and_cache_stays_consistent(
        self, mined, store_v2, tmp_path
    ):
        _, destinations, queries = mined
        root = tmp_path / "bitrot"
        shutil.copytree(store_v2, root)
        victim = _entry_document(root, f"binary-P-{destinations[0]}")
        pristine = victim.read_bytes()
        victim.write_bytes(pristine[:-3] + b"zzz")

        lazy = RoutingEngine.from_artifacts(root, prewarm="none")
        with pytest.raises(DataError, match="checksum"):
            lazy.route(queries[0], method="T-B-P")
        counters = lazy.heuristic_cache.counters()
        assert counters.entries == 0  # nothing half-inserted
        # Other destinations still fault and serve fine.
        ok = lazy.route(queries[1], method="T-B-P")
        assert ok.probability >= 0.0
        # Repairing the file lets the same key fault successfully on retry.
        victim.write_bytes(pristine)
        repaired = lazy.route(queries[0], method="T-B-P")
        eager = RoutingEngine.from_artifacts(store_v2)
        _assert_identical([eager.route(queries[0], method="T-B-P")], [repaired])
        assert lazy.heuristic_cache.counters().faults >= 2

    def test_budget_smaller_than_one_table_degrades_loudly(self, mined, store_v2):
        _, _, queries = mined
        with pytest.warns(RuntimeWarning, match="cache budget"):
            tiny = RoutingEngine.from_artifacts(store_v2, prewarm="none", cache_bytes=16)
            results = tiny.route_many(queries[:2], method="T-BS-60")
        eager = RoutingEngine.from_artifacts(store_v2)
        _assert_identical(eager.route_many(queries[:2], method="T-BS-60"), results)
        counters = tiny.heuristic_cache.counters()
        assert counters.entries == 0
        assert counters.resident_bytes == 0
        # Un-cacheable entries are re-faulted per lookup, never silently dropped.
        assert counters.faults >= 2

    def test_cache_bytes_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="cache_bytes"):
            HeuristicCache(cache_bytes=0)


# --------------------------------------------------------------------------- #
# Streaming reader unit tests
# --------------------------------------------------------------------------- #
class TestColumnDocumentReader:
    @pytest.fixture()
    def document(self, tmp_path):
        meta = {"format_version": 2, "kind": "unit-test"}
        columns = {
            "alpha": np.arange(64, dtype=np.float64),
            "beta": np.arange(64, dtype=np.int64),
        }
        path = tmp_path / "doc.bin"
        path.write_bytes(encode_column_document(meta, columns))
        return path, meta, columns

    def test_round_trip_views_are_read_only_and_bit_exact(self, document):
        path, meta, columns = document
        with open_column_document(path) as reader:
            assert reader.meta == meta
            assert set(reader.column_names) == set(columns)
            for name, expected in columns.items():
                view = reader.column(name)
                assert not view.flags.writeable
                np.testing.assert_array_equal(view, expected)
                with pytest.raises(ValueError):
                    view[0] = 0

    def test_digest_verification_is_deferred_to_first_touch(self, document):
        path, _, columns = document
        data = bytearray(path.read_bytes())
        # Flip a byte in the tail — the *last* column's ("beta") payload.
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with open_column_document(path) as reader:  # opens fine: structure intact
            np.testing.assert_array_equal(reader.column("alpha"), columns["alpha"])
            with pytest.raises(DataError, match="checksum"):
                reader.column("beta")

    def test_eager_verify_raises_at_open(self, document):
        path, _, _ = document
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(DataError, match="checksum"):
            open_column_document(path, verify=True)

    def test_truncated_document_is_rejected_at_open(self, document):
        path, _, _ = document
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(DataError):
            open_column_document(path)

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(DataError, match="header"):
            open_column_document(path)

    def test_missing_file_is_a_data_error(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            open_column_document(tmp_path / "nope.bin")

    def test_close_with_outstanding_views_does_not_crash(self, document):
        path, _, columns = document
        reader = open_column_document(path)
        view = reader.column("alpha")
        reader.close()  # BufferError swallowed; the map stays alive for `view`
        np.testing.assert_array_equal(view, columns["alpha"])

    def test_reader_checksum_matches_whole_file_blake2b(self, document):
        path, _, _ = document
        with open_column_document(path) as reader:
            assert (
                reader.checksum()
                == hashlib.blake2b(path.read_bytes(), digest_size=16).hexdigest()
            )

    def test_unknown_column_name_is_rejected(self, document):
        path, _, _ = document
        with open_column_document(path) as reader:
            with pytest.raises(DataError, match="gamma"):
                reader.column("gamma")


# --------------------------------------------------------------------------- #
# Eager decode single-copy regression (the double-buffering fix)
# --------------------------------------------------------------------------- #
class TestEagerDecodePeak:
    def test_decode_column_document_allocates_each_column_once(self):
        """The eager decoder used to copy every payload twice (``bytes()`` of
        the frame slice, then the array copy): peak ≈ 2× column bytes.  The
        rewrite materialises exactly one array per column."""
        elements = 1_000_000  # 8 MB payload — dwarfs fixed overheads
        column = np.arange(elements, dtype=np.float64)
        payload = encode_column_document({"format_version": 2}, {"big": column})
        nbytes = column.nbytes
        tracemalloc.start()
        try:
            _, columns = decode_column_document(payload)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        np.testing.assert_array_equal(columns["big"], column)
        assert peak < 1.5 * nbytes, f"eager decode peak {peak} suggests double buffering"

    def test_streaming_reader_copies_nothing(self, tmp_path):
        elements = 1_000_000
        column = np.arange(elements, dtype=np.float64)
        path = tmp_path / "big.bin"
        path.write_bytes(encode_column_document({"format_version": 2}, {"big": column}))
        tracemalloc.start()
        try:
            with open_column_document(path) as reader:
                view = reader.column("big")
                total = float(view.sum())
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert total == float(column.sum())
        # mmap pages are not Python heap: the decoded "array" is a view, so
        # the traced peak stays far below one materialised copy.
        assert peak < 0.5 * column.nbytes, f"streaming decode allocated {peak} bytes"
