"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.network",
            "repro.trajectories",
            "repro.tpaths",
            "repro.vpaths",
            "repro.heuristics",
            "repro.routing",
            "repro.edgemodel",
            "repro.evaluation",
            "repro.datasets",
            "repro.persistence",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_all_names_resolve(self):
        for module_name in (
            "repro.core",
            "repro.network",
            "repro.trajectories",
            "repro.tpaths",
            "repro.vpaths",
            "repro.heuristics",
            "repro.routing",
            "repro.edgemodel",
            "repro.evaluation",
            "repro.datasets",
            "repro.persistence",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_method_names_constant_matches_paper(self):
        assert repro.METHOD_NAMES == (
            "T-None",
            "T-B-EU",
            "T-B-E",
            "T-B-P",
            "T-BS-60",
            "V-None",
            "V-B-P",
            "V-BS-60",
        )

    def test_public_docstrings_present(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__" and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"public API members without docstrings: {undocumented}"

    def test_error_hierarchy(self):
        from repro.core import errors

        subclasses = [
            errors.DistributionError,
            errors.JointDistributionError,
            errors.PathError,
            errors.GraphError,
            errors.RoutingError,
            errors.NoPathError,
            errors.HeuristicError,
            errors.DataError,
            errors.ConfigurationError,
        ]
        for exc in subclasses:
            assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise errors.NoPathError("nothing here")
