"""Tests for the routing algorithms: baseline, heuristic-guided PACE, and V-path routing."""

from __future__ import annotations

import pytest

from repro.core.distributions import Distribution
from repro.core.errors import ConfigurationError
from repro.datasets.paper_example import V1, V4, VD, VS
from repro.edgemodel.routing import EdgeModelRouter, EdgeRouterConfig
from repro.heuristics.binary import PaceBinaryHeuristic
from repro.network.algorithms import shortest_path
from repro.routing.dominance import DominancePruner
from repro.routing.engine import METHOD_NAMES, RouterSettings, create_router
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.routing.tpath_routing import HeuristicPaceRouter, HeuristicRouterConfig
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig
from repro.vpaths.updated_graph import UpdatedPaceGraph


@pytest.fixture(scope="module")
def updated_example(paper_example):
    updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
    return updated


#: The PACE-optimal answer for the example query (vs -> vd, budget 30) is the
#: route over e1, e5 and the T-path p4 with on-time probability 0.94.
OPTIMAL_EDGES = (1, 5, 6, 8)
OPTIMAL_PROBABILITY = 0.94


class TestQueries:
    def test_query_validation(self):
        with pytest.raises(ConfigurationError):
            RoutingQuery(source=1, destination=1, budget=10)
        with pytest.raises(ConfigurationError):
            RoutingQuery(source=1, destination=2, budget=0)

    def test_result_summary_found(self, paper_example):
        query = RoutingQuery(VS, VD, budget=30)
        router = NaivePaceRouter(paper_example.pace_graph)
        result = router.route(query)
        assert "P(arrive within" in result.summary()
        assert result.found

    def test_result_summary_not_found(self):
        query = RoutingQuery(0, 1, budget=5)
        result = RoutingResult(
            query=query,
            method="x",
            path=None,
            probability=0.0,
            distribution=None,
            explored=0,
            runtime_seconds=0.0,
        )
        assert "no path" in result.summary()
        assert not result.found


class TestDominancePruner:
    def test_dominated_candidate_rejected(self):
        pruner = DominancePruner()
        strong = Distribution.from_pairs([(5, 0.9), (10, 0.1)])
        weak = Distribution.from_pairs([(5, 0.1), (10, 0.9)])
        assert pruner.admit(1, vertex=7, distribution=strong)
        assert not pruner.admit(2, vertex=7, distribution=weak)
        assert pruner.prunes == 1

    def test_existing_candidate_marked_pruned(self):
        pruner = DominancePruner()
        weak = Distribution.from_pairs([(5, 0.1), (10, 0.9)])
        strong = Distribution.from_pairs([(5, 0.9), (10, 0.1)])
        assert pruner.admit(1, vertex=7, distribution=weak)
        assert pruner.admit(2, vertex=7, distribution=strong)
        assert pruner.is_pruned(1)

    def test_incomparable_candidates_coexist(self):
        pruner = DominancePruner()
        a = Distribution.from_pairs([(1, 0.5), (20, 0.5)])
        b = Distribution.from_pairs([(10, 1.0)])
        assert pruner.admit(1, vertex=3, distribution=a)
        assert pruner.admit(2, vertex=3, distribution=b)
        assert not pruner.is_pruned(1)
        assert not pruner.is_pruned(2)

    def test_different_vertices_do_not_interact(self):
        pruner = DominancePruner()
        strong = Distribution.from_pairs([(5, 0.9), (10, 0.1)])
        weak = Distribution.from_pairs([(5, 0.1), (10, 0.9)])
        assert pruner.admit(1, vertex=7, distribution=strong)
        assert pruner.admit(2, vertex=8, distribution=weak)

    def test_batched_admission_matches_pairwise_reference(self):
        """The array-batched admission sweep is decision- and counter-identical
        to the naive pairwise loop it replaced, on frontiers large enough to
        take the batched path and dense enough to exercise both prune
        directions (including identical and shifted distributions)."""
        import random

        rng = random.Random(11)

        def reference_admit(frontier, pruned, counters, cid, vertex, dist):
            live = [e for e in frontier.get(vertex, []) if e[0] not in pruned]
            if not live:
                frontier[vertex] = [(cid, dist)]
                return True
            for index, (_, other) in enumerate(live):
                if other.stochastically_dominates(dist):
                    counters["checks"] += index + 1
                    counters["prunes"] += 1
                    return False
            counters["checks"] += len(live)
            survivors = []
            for other_id, other in live:
                if dist.stochastically_dominates(other, strict=True):
                    pruned.add(other_id)
                    counters["prunes"] += 1
                else:
                    survivors.append((other_id, other))
            counters["checks"] += len(live)
            survivors.append((cid, dist))
            frontier[vertex] = survivors
            return True

        def random_distribution():
            size = rng.randint(1, 10)
            values = sorted(rng.sample(range(1, 300), size))
            masses = [rng.random() + 0.05 for _ in range(size)]
            total = sum(masses)
            return Distribution.from_pairs(
                [(float(v), mass / total) for v, mass in zip(values, masses)]
            )

        for _ in range(40):
            pruner = DominancePruner()
            frontier, pruned, counters = {}, set(), {"checks": 0, "prunes": 0}
            seen = {}
            for cid in range(60):
                vertex = rng.randint(0, 2)
                if seen and rng.random() < 0.3:
                    base = rng.choice(list(seen.values()))
                    if rng.random() < 0.5:
                        dist = base
                    else:
                        dist = Distribution.from_pairs(
                            [(v + 1.0, p) for v, p in base.items()]
                        )
                else:
                    dist = random_distribution()
                seen[cid] = dist
                admitted = pruner.admit(cid, vertex, dist)
                expected = reference_admit(frontier, pruned, counters, cid, vertex, dist)
                assert admitted == expected
                assert pruner.checks == counters["checks"]
                assert pruner.prunes == counters["prunes"]
            for cid in seen:
                assert pruner.is_pruned(cid) == (cid in pruned)


class TestNaiveRouter:
    def test_finds_optimal_path(self, paper_example):
        router = NaivePaceRouter(paper_example.pace_graph)
        result = router.route(RoutingQuery(VS, VD, budget=30))
        assert result.path.edges == OPTIMAL_EDGES
        assert result.probability == pytest.approx(OPTIMAL_PROBABILITY)

    def test_large_budget_reaches_probability_one(self, paper_example):
        router = NaivePaceRouter(paper_example.pace_graph)
        result = router.route(RoutingQuery(VS, VD, budget=60))
        assert result.probability == pytest.approx(1.0)

    def test_tiny_budget_finds_nothing(self, paper_example):
        router = NaivePaceRouter(paper_example.pace_graph)
        result = router.route(RoutingQuery(VS, VD, budget=10))
        assert not result.found
        assert result.probability == 0.0

    def test_explores_more_than_guided_routers(self, paper_example):
        naive = NaivePaceRouter(paper_example.pace_graph)
        guided = HeuristicPaceRouter(
            paper_example.pace_graph,
            lambda graph, destination: PaceBinaryHeuristic(graph, destination),
            method_name="T-B-P",
        )
        query = RoutingQuery(VS, VD, budget=30)
        assert naive.route(query).explored > guided.route(query).explored

    def test_max_explored_cap(self, paper_example):
        router = NaivePaceRouter(paper_example.pace_graph, NaiveRouterConfig(max_explored=2))
        result = router.route(RoutingQuery(VS, VD, budget=30))
        assert result.explored <= 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            NaiveRouterConfig(max_support=0).validate()
        with pytest.raises(ConfigurationError):
            NaiveRouterConfig(max_explored=0).validate()


class TestHeuristicRouter:
    @pytest.mark.parametrize("method", ["T-B-EU", "T-B-E", "T-B-P", "T-BS-3"])
    def test_all_heuristic_methods_find_the_optimum(self, paper_example, updated_example, method):
        router = create_router(
            method,
            paper_example.pace_graph,
            updated_example,
            settings=RouterSettings(max_budget=60),
        )
        result = router.route(RoutingQuery(VS, VD, budget=30))
        assert result.path.edges == OPTIMAL_EDGES
        assert result.probability == pytest.approx(OPTIMAL_PROBABILITY)

    def test_heuristics_are_cached_per_destination(self, paper_example):
        router = HeuristicPaceRouter(
            paper_example.pace_graph,
            lambda graph, destination: PaceBinaryHeuristic(graph, destination),
            method_name="T-B-P",
        )
        first = router.heuristic_for(VD)
        second = router.heuristic_for(VD)
        assert first is second

    def test_budget_pruning_returns_empty_result(self, paper_example):
        router = HeuristicPaceRouter(
            paper_example.pace_graph,
            lambda graph, destination: PaceBinaryHeuristic(graph, destination),
            method_name="T-B-P",
        )
        result = router.route(RoutingQuery(VS, VD, budget=20))  # below getMin(vs) = 27
        assert not result.found
        assert result.explored == 0

    def test_intermediate_source(self, paper_example):
        router = HeuristicPaceRouter(
            paper_example.pace_graph,
            lambda graph, destination: PaceBinaryHeuristic(graph, destination),
            method_name="T-B-P",
        )
        result = router.route(RoutingQuery(V1, VD, budget=25))
        assert result.found
        assert result.path.source == V1
        assert result.path.target == VD

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HeuristicRouterConfig(max_support=0).validate()


class TestVPathRouter:
    def test_vnone_matches_naive_optimum(self, paper_example, updated_example):
        router = VPathRouter(updated_example, None, method_name="V-None")
        result = router.route(RoutingQuery(VS, VD, budget=30))
        assert result.path.edges == OPTIMAL_EDGES
        assert result.probability == pytest.approx(OPTIMAL_PROBABILITY)

    def test_guided_router_explores_fewer_candidates(self, paper_example, updated_example):
        unguided = VPathRouter(updated_example, None, method_name="V-None")
        guided = VPathRouter(
            updated_example,
            lambda graph, destination: PaceBinaryHeuristic(graph.pace_graph, destination),
            method_name="V-B-P",
        )
        query = RoutingQuery(VS, VD, budget=30)
        assert guided.route(query).explored <= unguided.route(query).explored

    def test_reported_probability_uses_pace_semantics(self, paper_example, updated_example):
        """Whatever path is returned, its probability must equal the PACE evaluation."""
        router = VPathRouter(
            updated_example,
            lambda graph, destination: PaceBinaryHeuristic(graph.pace_graph, destination),
            method_name="V-B-P",
        )
        result = router.route(RoutingQuery(VS, VD, budget=30))
        exact = paper_example.pace_graph.path_cost_distribution(result.path)
        assert result.probability == pytest.approx(exact.prob_at_most(30))

    def test_dominance_can_be_disabled(self, paper_example, updated_example):
        router = VPathRouter(
            updated_example,
            None,
            method_name="V-None",
            config=VPathRouterConfig(use_dominance=False),
        )
        result = router.route(RoutingQuery(VS, VD, budget=30))
        assert result.found

    def test_budget_pruning(self, paper_example, updated_example):
        router = VPathRouter(
            updated_example,
            lambda graph, destination: PaceBinaryHeuristic(graph.pace_graph, destination),
            method_name="V-B-P",
        )
        result = router.route(RoutingQuery(VS, VD, budget=20))
        assert not result.found

    def test_guided_flag(self, updated_example):
        assert not VPathRouter(updated_example, None).guided
        assert VPathRouter(
            updated_example, lambda graph, destination: PaceBinaryHeuristic(graph.pace_graph, destination)
        ).guided


class TestEngine:
    def test_all_method_names_buildable(self, paper_example, updated_example):
        for method in METHOD_NAMES:
            router = create_router(method, paper_example.pace_graph, updated_example)
            assert router.method_name == method

    def test_vpath_methods_require_updated_graph(self, paper_example):
        with pytest.raises(ConfigurationError):
            create_router("V-BS-60", paper_example.pace_graph, None)

    def test_unknown_method_rejected(self, paper_example, updated_example):
        with pytest.raises(ConfigurationError):
            create_router("X-Files", paper_example.pace_graph, updated_example)

    def test_custom_delta_parsed(self, paper_example, updated_example):
        router = create_router("T-BS-120", paper_example.pace_graph, updated_example)
        assert router.method_name == "T-BS-120"

    def test_results_consistent_across_all_methods(self, paper_example, updated_example):
        """Every method must report a probability achievable by a real path within budget."""
        query = RoutingQuery(VS, VD, budget=32)
        for method in METHOD_NAMES:
            method = method.replace("-60", "-8")  # small delta fits the example's budgets
            router = create_router(
                method, paper_example.pace_graph, updated_example, settings=RouterSettings(max_budget=64)
            )
            result = router.route(query)
            assert result.found, method
            exact = paper_example.pace_graph.path_cost_distribution(result.path)
            assert result.probability == pytest.approx(exact.prob_at_most(32), abs=1e-6), method


class TestEdgeModelRouter:
    def test_edge_router_finds_path(self, paper_example):
        router = EdgeModelRouter(paper_example.edge_graph)
        result = router.route(RoutingQuery(VS, VD, budget=30))
        assert result.found
        assert result.path.source == VS and result.path.target == VD

    def test_edge_router_uses_convolution_semantics(self, paper_example):
        router = EdgeModelRouter(paper_example.edge_graph)
        result = router.route(RoutingQuery(VS, VD, budget=30))
        exact = paper_example.edge_graph.path_cost_distribution(result.path)
        assert result.probability == pytest.approx(exact.prob_at_most(30))

    def test_edge_router_budget_pruning(self, paper_example):
        router = EdgeModelRouter(paper_example.edge_graph)
        result = router.route(RoutingQuery(VS, VD, budget=10))
        assert not result.found

    def test_edge_router_optimality_against_enumeration(self, paper_example):
        """The EDGE router maximises the convolution-based on-time probability."""
        graph = paper_example.edge_graph
        routes = [[1, 5, 6, 8], [1, 4, 9, 10], [2, 3, 6, 8], [1, 4, 7, 8]]
        best = max(
            graph.path_cost_distribution(
                paper_example.network.path_from_edge_ids(route)
            ).prob_at_most(30)
            for route in routes
        )
        result = EdgeModelRouter(graph).route(RoutingQuery(VS, VD, budget=30))
        assert result.probability == pytest.approx(best)

    def test_dominance_pruning_preserves_optimum(self, paper_example):
        with_pruning = EdgeModelRouter(paper_example.edge_graph, EdgeRouterConfig(use_dominance=True))
        without_pruning = EdgeModelRouter(
            paper_example.edge_graph, EdgeRouterConfig(use_dominance=False)
        )
        for budget in (28, 30, 35):
            query = RoutingQuery(VS, VD, budget=budget)
            pruned_result = with_pruning.route(query)
            full_result = without_pruning.route(query)
            assert pruned_result.probability == pytest.approx(full_result.probability)

    def test_dominance_pruning_reduces_exploration_on_larger_graph(self, small_edge_graph):
        network = small_edge_graph.network
        vertices = sorted(network.vertex_ids())
        source, destination = vertices[0], vertices[-1]
        fastest, _ = shortest_path(
            network, source, destination, lambda e: small_edge_graph.expected_cost(e.edge_id)
        )
        budget = small_edge_graph.path_expected_cost(fastest) * 1.3
        query = RoutingQuery(source, destination, budget=budget)
        with_pruning = EdgeModelRouter(small_edge_graph, EdgeRouterConfig(use_dominance=True))
        without_pruning = EdgeModelRouter(small_edge_graph, EdgeRouterConfig(use_dominance=False))
        assert with_pruning.route(query).explored <= without_pruning.route(query).explored

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EdgeRouterConfig(max_explored=0).validate()
