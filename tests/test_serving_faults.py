"""Chaos suite for the serving tier: every injected fault, end to end.

Each scenario drives a real :class:`~repro.serving.server.RouteServer` over
HTTP and injects one of the deterministic faults from
:mod:`repro.serving.faults`, asserting the robustness contract of the tier:

* a **worker crash mid-batch** (``crash-next-worker``) answers every request
  through the serial fallback — structured responses, never errors — while
  the pool respawns with bounded backoff and recovers;
* **queue saturation** (``fill-queue``, and genuine overload) answers an
  immediate structured ``overloaded`` rejection with a ``retry_after_ms``
  hint;
* **deadline expiry** (``delay-response``) answers ``deadline_exceeded`` at
  the deadline and *discards* (counts, never delivers) the late result;
* a **corrupt reload** (``corrupt-reload``, and genuinely corrupt bytes on
  disk) keeps the old engine serving, surfaces the failure on ``/healthz``,
  and recovers on a later poll once the store is good again;

and in every case the server shuts down cleanly afterwards — no hung threads.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

import pytest

from repro.serving import RouteServer, ServerConfig
from tests.test_serving import http_get, http_post

OK_REQUEST = {"source": 0, "destination": 5, "budget": 500.0}


def wait_until(predicate, *, timeout: float = 30.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def serving_thread_ids() -> set[int]:
    return {
        thread.ident
        for thread in threading.enumerate()
        if thread.name.startswith("repro-serve") and thread.ident is not None
    }


@pytest.fixture()
def chaos_server(tiny_artifact_store):
    """A serial-backend server with the fault switchboard enabled."""
    server = RouteServer(
        tiny_artifact_store,
        ServerConfig(
            max_concurrency=1,
            queue_limit=0,
            reload_poll_seconds=3600.0,
            enable_fault_injection=True,
        ),
    )
    baseline = serving_thread_ids()
    server.start()
    try:
        yield server
    finally:
        server.stop()
        assert serving_thread_ids() <= baseline, "server left threads running"


class TestWorkerCrash:
    def test_crash_mid_batch_falls_back_then_recovers(self, tiny_artifact_store):
        baseline = serving_thread_ids()
        server = RouteServer(
            tiny_artifact_store,
            ServerConfig(
                backend="process",
                workers=1,
                max_concurrency=2,
                queue_limit=4,
                reload_poll_seconds=3600.0,
                enable_fault_injection=True,
                max_respawn_attempts=5,
                backoff_base_seconds=0.01,
                backoff_cap_seconds=0.1,
            ),
        )
        server.start()
        try:
            url = server.url
            # First batch spawns the worker pool.
            status, body = http_post(url, "/route", [OK_REQUEST, OK_REQUEST])
            assert status == 200
            assert all(item["ok"] for item in body)

            # Hard-kill a worker right before the next batch runs.
            status, _ = http_post(url, "/faults", {"fault": "crash-next-worker"})
            assert status == 200
            status, body = http_post(
                url, "/route", [OK_REQUEST, dict(OK_REQUEST, request_id="survivor")]
            )
            # The pool genuinely broke, yet every request was answered (serial
            # fallback), structured and in order.
            assert status == 200
            assert all(item["ok"] for item in body)
            assert body[1]["request_id"] == "survivor"
            _, stats = http_get(url, "/stats")
            assert stats["resilience"]["backend_failures"] >= 1
            assert stats["resilience"]["fallback_queries"] >= 2
            assert stats["faults"]["fired"].get("crash-next-worker") == 1

            # Recovery: the respawn loop restores the pool within its bounded
            # retries, and /healthz goes back to 200.
            assert server.backend.await_recovery(timeout=60.0)
            assert wait_until(lambda: http_get(url, "/healthz")[0] == 200)
            _, health = http_get(url, "/healthz")
            assert health["status"] == "ok"
            assert health["resilience"]["pool_generation"] >= 1
            assert health["resilience"]["respawns_succeeded"] >= 1

            # The respawned pool serves again.
            status, body = http_post(url, "/route", OK_REQUEST)
            assert status == 200
            assert body["ok"] is True
        finally:
            server.stop()
        assert serving_thread_ids() <= baseline, "server left threads running"


class TestQueueSaturation:
    def test_injected_saturation_answers_structured_overloaded(self, chaos_server):
        url = chaos_server.url
        status, _ = http_post(url, "/faults", {"fault": "fill-queue"})
        assert status == 200
        status, body = http_post(url, "/route", dict(OK_REQUEST, request_id="shed"))
        assert status == 429
        assert body["ok"] is False
        assert body["request_id"] == "shed"
        assert body["error"]["code"] == "overloaded"
        assert isinstance(body["error"]["retry_after_ms"], int)
        assert body["error"]["retry_after_ms"] >= 50
        _, stats = http_get(url, "/stats")
        assert stats["admission"]["rejected"] >= 1
        # The shed request never reached the engine; the next one does.
        status, body = http_post(url, "/route", OK_REQUEST)
        assert status == 200
        assert body["ok"] is True

    def test_genuine_saturation_rejects_while_a_slow_request_runs(self, chaos_server):
        url = chaos_server.url
        # Stall the next admitted job for 1 s: with max_concurrency=1 and
        # queue_limit=0 the server is then genuinely at capacity.
        status, _ = http_post(
            url, "/faults", {"fault": "delay-response", "delay_seconds": 1.0}
        )
        assert status == 200
        slow_result: list[tuple[int, object]] = []
        slow = threading.Thread(
            target=lambda: slow_result.append(http_post(url, "/route", OK_REQUEST))
        )
        slow.start()
        try:
            assert wait_until(
                lambda: http_get(url, "/stats")[1]["admission"]["in_flight"] >= 1,
                timeout=10.0,
            )
            status, body = http_post(url, "/route", OK_REQUEST)
            assert status == 429
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retry_after_ms"] >= 50
        finally:
            slow.join(timeout=30)
        assert not slow.is_alive()
        status, body = slow_result[0]
        assert status == 200  # the slow request itself still completed fine
        assert body["ok"] is True


class TestDeadlineExpiry:
    def test_expiry_answers_504_and_discards_the_late_result(self, chaos_server):
        url = chaos_server.url
        status, _ = http_post(
            url, "/faults", {"fault": "delay-response", "delay_seconds": 0.6}
        )
        assert status == 200
        started = time.monotonic()
        status, body = http_post(
            url, "/route", dict(OK_REQUEST, request_id="late", deadline_ms=150.0)
        )
        waited = time.monotonic() - started
        assert status == 504
        assert body["ok"] is False
        assert body["request_id"] == "late"
        assert body["error"]["code"] == "deadline_exceeded"
        # The caller was released at its deadline, not after the full delay.
        assert waited < 0.6
        # The stalled job eventually finishes; its result is discarded and
        # counted, never delivered.
        assert wait_until(
            lambda: http_get(url, "/stats")[1]["deadlines"]["discarded_late_results"] >= 1
        )
        _, stats = http_get(url, "/stats")
        assert stats["deadlines"]["deadline_exceeded"] >= 1

    def test_a_generous_deadline_is_not_triggered(self, chaos_server):
        status, body = http_post(
            chaos_server.url, "/route", dict(OK_REQUEST, deadline_ms=30_000.0)
        )
        assert status == 200
        assert body["ok"] is True


class TestCorruptReload:
    @pytest.fixture()
    def reload_server(self, tiny_artifact_store, tmp_path):
        """A chaos server over a *private copy* of the store (it mutates it)."""
        root = tmp_path / "store"
        shutil.copytree(tiny_artifact_store, root)
        baseline = serving_thread_ids()
        server = RouteServer(
            root,
            ServerConfig(reload_poll_seconds=3600.0, enable_fault_injection=True),
        )
        server.start()
        try:
            yield server, root
        finally:
            server.stop()
            assert serving_thread_ids() <= baseline, "server left threads running"

    @staticmethod
    def republish(root) -> None:
        """Touch the manifest the way a writer would: new provenance, same build."""
        manifest_path = root / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload.setdefault("provenance", {})["republish"] = (
            payload.get("provenance", {}).get("republish", 0) + 1
        )
        manifest_path.write_text(json.dumps(payload, allow_nan=False))

    def test_reload_swaps_generations_without_dropping_service(self, reload_server):
        server, root = reload_server
        url = server.url
        assert http_get(url, "/stats")[1]["reload"]["generation"] == 1
        self.republish(root)
        assert server.reloader.poll_once() is True
        _, stats = http_get(url, "/stats")
        assert stats["reload"]["generation"] == 2
        assert stats["reload"]["reloads"] == 1
        status, body = http_post(url, "/route", OK_REQUEST)
        assert status == 200 and body["ok"] is True

    def test_injected_corrupt_reload_keeps_old_engine_and_degrades(self, reload_server):
        server, root = reload_server
        url = server.url
        status, _ = http_post(url, "/faults", {"fault": "corrupt-reload"})
        assert status == 200
        self.republish(root)
        assert server.reloader.poll_once() is False
        # Old engine keeps serving...
        status, body = http_post(url, "/route", OK_REQUEST)
        assert status == 200 and body["ok"] is True
        # ...and the failure is on /healthz, not hidden.
        status, health = http_get(url, "/healthz")
        assert status == 503
        assert health["status"] == "degraded"
        assert health["reload_healthy"] is False
        assert "corrupt-reload" in health["reload"]["last_error"]
        assert health["reload"]["reload_failures"] == 1
        assert health["reload"]["generation"] == 1
        # The fault fired once; the next poll retries the reload and heals.
        assert server.reloader.poll_once() is True
        status, health = http_get(url, "/healthz")
        assert status == 200
        assert health["reload"]["generation"] == 2

    def test_genuinely_corrupt_manifest_degrades_then_heals_on_restore(self, reload_server):
        server, root = reload_server
        url = server.url
        manifest_path = root / "manifest.json"
        good_bytes = manifest_path.read_bytes()
        manifest_path.write_bytes(b"this is not a manifest")
        assert server.reloader.poll_once() is False
        status, health = http_get(url, "/healthz")
        assert status == 503
        assert health["reload"]["reload_failures"] == 1
        assert health["reload"]["generation"] == 1
        status, body = http_post(url, "/route", OK_REQUEST)
        assert status == 200 and body["ok"] is True
        # Restoring the original bytes matches the served generation's
        # fingerprint again: no reload needed, health clears.
        manifest_path.write_bytes(good_bytes)
        assert server.reloader.poll_once() is False
        status, health = http_get(url, "/healthz")
        assert status == 200
        assert health["reload"]["generation"] == 1

    def test_requests_in_flight_survive_a_swap(self, reload_server):
        server, root = reload_server
        url = server.url
        stop = threading.Event()
        failures: list[object] = []
        answered = [0]

        def storm():
            while not stop.is_set():
                status, body = http_post(url, "/route", OK_REQUEST)
                if status != 200 or not body.get("ok"):
                    failures.append((status, body))
                answered[0] += 1

        threads = [threading.Thread(target=storm) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(3):
                self.republish(root)
                assert server.reloader.poll_once() is True
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert all(not thread.is_alive() for thread in threads)
        assert failures == []
        assert answered[0] > 0
        assert server.reloader.generation == 4
