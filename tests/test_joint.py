"""Tests for joint distributions and the T-path assembly operator (Eq. 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import Distribution
from repro.core.errors import JointDistributionError
from repro.core.joint import JointDistribution, assemble_sequence


@pytest.fixture
def table2_joint() -> JointDistribution:
    """The paper's Table 2(a): joint over <e1, e2> with strong dependency."""
    return JointDistribution((1, 2), {(10.0, 10.0): 0.8, (15.0, 15.0): 0.2})


class TestConstruction:
    def test_pmf_normalised(self, table2_joint):
        assert sum(table2_joint.pmf.values()) == pytest.approx(1.0)

    def test_rejects_empty_edges(self):
        with pytest.raises(JointDistributionError):
            JointDistribution((), {(): 1.0})

    def test_rejects_duplicate_edges(self):
        with pytest.raises(JointDistributionError):
            JointDistribution((1, 1), {(2.0, 3.0): 1.0})

    def test_rejects_wrong_vector_length(self):
        with pytest.raises(JointDistributionError):
            JointDistribution((1, 2), {(1.0,): 1.0})

    def test_rejects_negative_cost(self):
        with pytest.raises(JointDistributionError):
            JointDistribution((1,), {(-2.0,): 1.0})

    def test_rejects_unnormalised(self):
        with pytest.raises(JointDistributionError):
            JointDistribution((1,), {(2.0,): 0.5})

    def test_normalise_flag(self):
        joint = JointDistribution((1,), {(2.0,): 2.0, (3.0,): 2.0}, normalise=True)
        assert joint.probability_of((2.0,)) == pytest.approx(0.5)

    def test_from_samples(self):
        joint = JointDistribution.from_samples((1, 2), [(10, 10), (10, 10), (15, 15), (15, 16)], resolution=5)
        assert joint.probability_of((10.0, 10.0)) == pytest.approx(0.5)
        assert joint.probability_of((15.0, 15.0)) == pytest.approx(0.5)

    def test_from_samples_rejects_empty(self):
        with pytest.raises(JointDistributionError):
            JointDistribution.from_samples((1,), [])

    def test_independent_product(self):
        m1 = Distribution.from_pairs([(1, 0.5), (2, 0.5)])
        m2 = Distribution.from_pairs([(10, 0.25), (20, 0.75)])
        joint = JointDistribution.independent((1, 2), [m1, m2])
        assert joint.probability_of((1.0, 10.0)) == pytest.approx(0.125)
        assert joint.probability_of((2.0, 20.0)) == pytest.approx(0.375)

    def test_independent_requires_matching_lengths(self):
        with pytest.raises(JointDistributionError):
            JointDistribution.independent((1, 2), [Distribution.point(1)])

    def test_repr(self, table2_joint):
        assert "edges=[1, 2]" in repr(table2_joint)


class TestProjections:
    def test_total_cost_matches_table2(self, table2_joint):
        """Table 2(b): the derived cost distribution is {20: 0.8, 30: 0.2}."""
        total = table2_joint.total_cost_distribution()
        assert total.pdf(20) == pytest.approx(0.8)
        assert total.pdf(30) == pytest.approx(0.2)

    def test_edge_marginal(self, table2_joint):
        marginal = table2_joint.edge_marginal(1)
        assert marginal.pdf(10) == pytest.approx(0.8)
        assert marginal.pdf(15) == pytest.approx(0.2)

    def test_marginal_subset_order_preserved(self):
        joint = JointDistribution((1, 2, 3), {(1.0, 2.0, 3.0): 0.5, (2.0, 2.0, 4.0): 0.5})
        marginal = joint.marginal((3, 1))
        assert marginal.edge_ids == (3, 1)
        assert marginal.probability_of((3.0, 1.0)) == pytest.approx(0.5)

    def test_marginal_unknown_edge_raises(self, table2_joint):
        with pytest.raises(JointDistributionError):
            table2_joint.marginal((42,))

    def test_restrict_to_resolution(self):
        joint = JointDistribution((1,), {(9.0,): 0.5, (11.0,): 0.5})
        coarse = joint.restrict_to_resolution(10)
        assert coarse.probability_of((10.0,)) == pytest.approx(1.0)


class TestAssembly:
    def test_independent_assembly_is_product(self):
        a = JointDistribution((1,), {(5.0,): 0.5, (6.0,): 0.5})
        b = JointDistribution((2,), {(10.0,): 1.0})
        combined = a.assemble(b)
        assert combined.edge_ids == (1, 2)
        assert combined.probability_of((5.0, 10.0)) == pytest.approx(0.5)
        # Totals equal the convolution of the totals.
        convolved = a.total_cost_distribution() + b.total_cost_distribution()
        assert combined.total_cost_distribution() == convolved

    def test_overlapping_assembly_eq1(self):
        """Eq. 1 on a two-T-path chain: divide by the overlap marginal."""
        p1 = JointDistribution((1, 4), {(8.0, 8.0): 0.2, (10.0, 8.0): 0.8})
        p2 = JointDistribution((4, 9), {(8.0, 5.0): 0.7, (8.0, 7.0): 0.3})
        combined = p1.assemble(p2)
        assert combined.edge_ids == (1, 4, 9)
        assert combined.probability_of((8.0, 8.0, 5.0)) == pytest.approx(0.14)
        assert combined.probability_of((10.0, 8.0, 7.0)) == pytest.approx(0.24)
        total = combined.total_cost_distribution()
        assert total.pdf(21) == pytest.approx(0.14)
        assert total.pdf(23) == pytest.approx(0.62)
        assert total.pdf(25) == pytest.approx(0.24)

    def test_assembly_preserves_dependency_vs_convolution(self):
        """The joint assembly differs from independence when costs are correlated."""
        p1 = JointDistribution((1, 2), {(10.0, 10.0): 0.5, (20.0, 20.0): 0.5})
        p2 = JointDistribution((2, 3), {(10.0, 10.0): 0.5, (20.0, 20.0): 0.5})
        joint_total = p1.assemble(p2).total_cost_distribution()
        independent_total = p1.total_cost_distribution() + p2.total_cost_distribution()
        # Perfect correlation keeps only the extreme totals 30 and 60.
        assert joint_total.pdf(30) == pytest.approx(0.5)
        assert joint_total.pdf(60) == pytest.approx(0.5)
        # The EDGE-style (independence) estimate smears mass onto intermediate totals instead.
        assert independent_total.pdf(30) == pytest.approx(0.0)
        assert independent_total.pdf(40) > 0

    def test_assembly_requires_suffix_prefix_overlap(self):
        p1 = JointDistribution((1, 2), {(1.0, 1.0): 1.0})
        p2 = JointDistribution((1, 3), {(1.0, 1.0): 1.0})
        with pytest.raises(JointDistributionError):
            p1.assemble(p2)

    def test_assembly_with_explicit_overlap_joint(self):
        p1 = JointDistribution((1, 2), {(5.0, 5.0): 0.5, (5.0, 7.0): 0.5})
        p2 = JointDistribution((2, 3), {(5.0, 1.0): 0.4, (7.0, 2.0): 0.6})
        overlap = JointDistribution((2,), {(5.0,): 0.4, (7.0,): 0.6})
        combined = p1.assemble(p2, overlap=overlap)
        assert sum(dict(combined.items()).values()) == pytest.approx(1.0)

    def test_assembly_disjoint_outcomes_raise(self):
        p1 = JointDistribution((1, 2), {(1.0, 1.0): 1.0})
        p2 = JointDistribution((2, 3), {(9.0, 9.0): 1.0})
        with pytest.raises(JointDistributionError):
            p1.assemble(p2)

    def test_assemble_sequence(self):
        p1 = JointDistribution((1, 2), {(1.0, 2.0): 1.0})
        p2 = JointDistribution((2, 3), {(2.0, 3.0): 1.0})
        p3 = JointDistribution((4,), {(10.0,): 1.0})
        combined = assemble_sequence([p1, p2, p3])
        assert combined.edge_ids == (1, 2, 3, 4)
        assert combined.total_cost_distribution().pdf(16) == pytest.approx(1.0)

    def test_assemble_sequence_rejects_empty(self):
        with pytest.raises(JointDistributionError):
            assemble_sequence([])


# --------------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------------- #
@st.composite
def _chain_joints(draw):
    """Two joints over consecutive edges (1,2) and (2,3) with a shared, consistent overlap."""
    overlap_values = draw(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=3, unique=True)
    )
    left = {}
    right = {}
    for value in overlap_values:
        left[(float(draw(st.integers(1, 20))), float(value))] = draw(
            st.floats(min_value=0.05, max_value=1.0)
        )
        right[(float(value), float(draw(st.integers(1, 20))))] = draw(
            st.floats(min_value=0.05, max_value=1.0)
        )
    return (
        JointDistribution((1, 2), left, normalise=True),
        JointDistribution((2, 3), right, normalise=True),
    )


@settings(max_examples=40, deadline=None)
@given(_chain_joints())
def test_assembly_produces_normalised_joint(joints):
    left, right = joints
    combined = left.assemble(right)
    assert sum(prob for _, prob in combined.items()) == pytest.approx(1.0, abs=1e-9)
    assert combined.edge_ids == (1, 2, 3)


@settings(max_examples=40, deadline=None)
@given(_chain_joints())
def test_assembly_marginal_on_left_edges_is_preserved(joints):
    """Conditioning on the overlap never changes the distribution of the left T-path."""
    left, right = joints
    combined = left.assemble(right)
    recovered = combined.marginal((1, 2))
    for costs, prob in left.items():
        assert recovered.probability_of(costs) == pytest.approx(prob, abs=1e-9)
