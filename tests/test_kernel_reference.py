"""Property-based agreement tests: vectorized kernel vs the scalar reference.

The NumPy-backed :class:`repro.core.distributions.Distribution` must agree
with the simple, obviously-correct scalar implementation preserved in
:mod:`repro.core._scalar_reference` on every operation the routing algorithms
use.  Random distributions are drawn with well-separated support values (gaps
far above the kernel's merge tolerance) so both implementations see the same
support grid.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._scalar_reference import ScalarDistribution
from repro.core.distributions import Distribution


def _pair_lists(max_size: int = 8):
    """Random (cost, weight) pair lists with well-separated costs."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=400).map(lambda n: n * 0.5),
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=max_size,
    )


def _both(pairs):
    return (
        Distribution.from_pairs(pairs, normalise=True),
        ScalarDistribution(pairs, normalise=True),
    )


def _assert_same(vectorized: Distribution, scalar: ScalarDistribution) -> None:
    assert len(vectorized) == len(scalar)
    for (v_value, v_prob), (s_value, s_prob) in zip(vectorized.items(), scalar.items()):
        assert v_value == pytest.approx(s_value, abs=1e-9)
        assert v_prob == pytest.approx(s_prob, abs=1e-9)


@settings(max_examples=80, deadline=None)
@given(_pair_lists())
def test_construction_agrees(pairs):
    _assert_same(*_both(pairs))


@settings(max_examples=60, deadline=None)
@given(_pair_lists(), _pair_lists())
def test_convolve_agrees(pairs_a, pairs_b):
    vec_a, ref_a = _both(pairs_a)
    vec_b, ref_b = _both(pairs_b)
    _assert_same(vec_a.convolve(vec_b), ref_a.convolve(ref_b))


@settings(max_examples=40, deadline=None)
@given(_pair_lists(), _pair_lists(), st.integers(min_value=2, max_value=12))
def test_convolve_with_max_support_agrees(pairs_a, pairs_b, max_support):
    vec_a, ref_a = _both(pairs_a)
    vec_b, ref_b = _both(pairs_b)
    _assert_same(
        vec_a.convolve(vec_b, max_support=max_support),
        ref_a.convolve(ref_b, max_support=max_support),
    )


@settings(max_examples=80, deadline=None)
@given(_pair_lists(), st.floats(min_value=-10, max_value=250, allow_nan=False))
def test_cdf_agrees(pairs, point):
    vectorized, scalar = _both(pairs)
    assert vectorized.cdf(point) == pytest.approx(scalar.cdf(point), abs=1e-9)
    # On-support queries exercise the boundary of the searchsorted lookup.
    for value in scalar.support:
        assert vectorized.cdf(value) == pytest.approx(scalar.cdf(value), abs=1e-9)


@settings(max_examples=80, deadline=None)
@given(_pair_lists(), st.floats(min_value=0, max_value=250, allow_nan=False))
def test_pdf_agrees(pairs, point):
    vectorized, scalar = _both(pairs)
    assert vectorized.pdf(point) == pytest.approx(scalar.pdf(point), abs=1e-9)


@settings(max_examples=80, deadline=None)
@given(_pair_lists(), st.sampled_from([i / 20 for i in range(21)]))
def test_quantile_agrees(pairs, level):
    vectorized, scalar = _both(pairs)
    assert vectorized.quantile(level) == pytest.approx(scalar.quantile(level), abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(_pair_lists(), _pair_lists())
def test_dominance_agrees(pairs_a, pairs_b):
    vec_a, ref_a = _both(pairs_a)
    vec_b, ref_b = _both(pairs_b)
    assert vec_a.stochastically_dominates(vec_b) == ref_a.stochastically_dominates(ref_b)
    assert vec_a.stochastically_dominates(vec_b, strict=True) == ref_a.stochastically_dominates(
        ref_b, strict=True
    )
    assert vec_b.stochastically_dominates(vec_a) == ref_b.stochastically_dominates(ref_a)


@settings(max_examples=60, deadline=None)
@given(_pair_lists(max_size=16), st.integers(min_value=1, max_value=10))
def test_compress_agrees(pairs, max_support):
    vectorized, scalar = _both(pairs)
    _assert_same(vectorized.compress(max_support), scalar.compress(max_support))


@settings(max_examples=60, deadline=None)
@given(_pair_lists())
def test_summaries_agree(pairs):
    vectorized, scalar = _both(pairs)
    assert vectorized.expectation() == pytest.approx(scalar.expectation(), abs=1e-9)
    assert vectorized.min() == pytest.approx(scalar.min(), abs=1e-12)
    assert vectorized.max() == pytest.approx(scalar.max(), abs=1e-12)
