"""Tests for the trajectory data model, generator, GPS simulation and cleaning."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.core.paths import Path
from repro.network.generators import GridCityConfig, generate_grid_city
from repro.trajectories.generator import TrajectoryGenerator, TrajectoryGeneratorConfig
from repro.trajectories.gps import GpsSimulatorConfig, simulate_gps_trace, simulate_gps_traces
from repro.trajectories.model import OFF_PEAK, PEAK, GpsPoint, GpsTrace, Trajectory
from repro.trajectories.outliers import (
    OutlierFilterConfig,
    clean_trajectories,
    filter_implausible_speeds,
    filter_statistical_outliers,
)
from repro.trajectories.splits import k_fold_split, split_by_regime


@pytest.fixture(scope="module")
def network():
    return generate_grid_city(GridCityConfig(rows=5, cols=5, seed=21))


@pytest.fixture(scope="module")
def trajectories(network):
    config = TrajectoryGeneratorConfig(num_trajectories=300, num_hubs=5, seed=17)
    return TrajectoryGenerator(network, config).generate()


class TestModel:
    def test_regimes_cover_the_day(self):
        for hour in range(24):
            seconds = hour * 3600.0
            assert PEAK.contains(seconds) != OFF_PEAK.contains(seconds)

    def test_peak_definition_matches_paper(self):
        assert PEAK.contains(7.5 * 3600)
        assert PEAK.contains(16.5 * 3600)
        assert not PEAK.contains(12 * 3600)

    def test_trajectory_total_cost(self):
        trajectory = Trajectory(0, Path([1, 2], [0, 1, 2]), (10.0, 20.0))
        assert trajectory.total_cost == 30.0
        assert trajectory.num_edges == 2

    def test_trajectory_cost_slice(self):
        trajectory = Trajectory(0, Path([1, 2, 3], [0, 1, 2, 3]), (10.0, 20.0, 30.0))
        assert trajectory.cost_of_slice(1, 3) == (20.0, 30.0)
        with pytest.raises(DataError):
            trajectory.cost_of_slice(2, 2)

    def test_trajectory_validation(self):
        with pytest.raises(DataError):
            Trajectory(0, Path([1, 2], [0, 1, 2]), (10.0,))
        with pytest.raises(DataError):
            Trajectory(0, Path([1], [0, 1]), (0.0,))

    def test_trajectory_in_regime(self):
        trajectory = Trajectory(0, Path([1], [0, 1]), (10.0,), departure_time=8 * 3600.0)
        assert trajectory.in_regime(PEAK)
        assert not trajectory.in_regime(OFF_PEAK)

    def test_gps_trace_validation(self):
        with pytest.raises(DataError):
            GpsTrace(0, (GpsPoint(0, 0, 0),))
        with pytest.raises(DataError):
            GpsTrace(0, (GpsPoint(0, 0, 10), GpsPoint(0, 0, 5)))

    def test_gps_trace_duration(self):
        trace = GpsTrace(0, (GpsPoint(0, 0, 5), GpsPoint(1, 1, 25)))
        assert trace.duration == 20
        assert trace.departure_time == 5


class TestGenerator:
    def test_generates_requested_count(self, trajectories):
        assert len(trajectories) == 300

    def test_deterministic_given_seed(self, network):
        config = TrajectoryGeneratorConfig(num_trajectories=50, num_hubs=5, seed=5)
        a = TrajectoryGenerator(network, config).generate()
        b = TrajectoryGenerator(network, config).generate()
        assert [t.edge_costs for t in a] == [t.edge_costs for t in b]

    def test_paths_are_connected_and_simple(self, network, trajectories):
        for trajectory in trajectories[:50]:
            path = trajectory.path
            assert path.is_simple()
            for edge_id, next_edge in zip(path.edges, path.edges[1:]):
                assert network.edge(edge_id).target == network.edge(next_edge).source

    def test_costs_positive_and_rounded(self, trajectories):
        for trajectory in trajectories[:50]:
            assert all(cost >= 1.0 for cost in trajectory.edge_costs)
            assert all(abs(cost - round(cost)) < 1e-9 for cost in trajectory.edge_costs)

    def test_peak_trips_are_slower_on_average(self, network):
        config = TrajectoryGeneratorConfig(num_trajectories=400, num_hubs=5, seed=3)
        generated = TrajectoryGenerator(network, config).generate()
        by_regime = split_by_regime(generated, [PEAK, OFF_PEAK])
        peak_speed = statistics.fmean(
            network.path_length(t.path) / t.total_cost for t in by_regime["peak"]
        )
        off_peak_speed = statistics.fmean(
            network.path_length(t.path) / t.total_cost for t in by_regime["off-peak"]
        )
        assert peak_speed < off_peak_speed

    def test_consecutive_edge_costs_are_positively_correlated(self, trajectories, network):
        """The whole point of PACE: consecutive edge costs must not be independent."""
        ratios = []
        for trajectory in trajectories:
            for edge_a, edge_b, cost_a, cost_b in zip(
                trajectory.path.edges,
                trajectory.path.edges[1:],
                trajectory.edge_costs,
                trajectory.edge_costs[1:],
            ):
                slow_a = cost_a / network.edge(edge_a).free_flow_time()
                slow_b = cost_b / network.edge(edge_b).free_flow_time()
                ratios.append((slow_a, slow_b))
        mean_a = statistics.fmean(a for a, _ in ratios)
        mean_b = statistics.fmean(b for _, b in ratios)
        covariance = statistics.fmean((a - mean_a) * (b - mean_b) for a, b in ratios)
        assert covariance > 0

    def test_hub_concentration_creates_repeated_paths(self, trajectories):
        counts: dict[tuple[int, ...], int] = {}
        for trajectory in trajectories:
            counts[trajectory.path.edges] = counts.get(trajectory.path.edges, 0) + 1
        assert max(counts.values()) >= 10

    def test_invalid_configs_rejected(self, network):
        with pytest.raises(ConfigurationError):
            TrajectoryGenerator(network, TrajectoryGeneratorConfig(num_trajectories=0))
        with pytest.raises(ConfigurationError):
            TrajectoryGenerator(network, TrajectoryGeneratorConfig(num_hubs=1))
        with pytest.raises(ConfigurationError):
            TrajectoryGenerator(network, TrajectoryGeneratorConfig(peak_fraction=2.0))

    def test_hubs_are_distinct_vertices(self, network):
        generator = TrajectoryGenerator(network, TrajectoryGeneratorConfig(num_hubs=6, seed=2))
        assert len(set(generator.hubs)) == 6


class TestGpsSimulation:
    def test_trace_spans_trip_duration(self, network, trajectories):
        trajectory = trajectories[0]
        trace = simulate_gps_trace(network, trajectory, GpsSimulatorConfig(sampling_interval=5.0))
        assert trace.departure_time == pytest.approx(trajectory.departure_time)
        assert trace.duration <= trajectory.total_cost + 5.0

    def test_sampling_interval_controls_density(self, network, trajectories):
        trajectory = trajectories[0]
        dense = simulate_gps_trace(network, trajectory, GpsSimulatorConfig(sampling_interval=2.0))
        sparse = simulate_gps_trace(network, trajectory, GpsSimulatorConfig(sampling_interval=20.0))
        assert len(dense.points) > len(sparse.points)

    def test_noise_perturbs_positions(self, network, trajectories):
        trajectory = trajectories[0]
        noisy = simulate_gps_trace(
            network, trajectory, GpsSimulatorConfig(noise_sigma=30.0), rng=random.Random(1)
        )
        clean = simulate_gps_trace(
            network, trajectory, GpsSimulatorConfig(noise_sigma=0.0), rng=random.Random(1)
        )
        displacement = max(
            abs(a.x - b.x) + abs(a.y - b.y) for a, b in zip(noisy.points, clean.points)
        )
        assert displacement > 1.0

    def test_batch_simulation(self, network, trajectories):
        traces = simulate_gps_traces(network, trajectories[:5])
        assert len(traces) == 5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GpsSimulatorConfig(sampling_interval=0).validate()


class TestCleaning:
    def test_implausible_speed_filtered(self, network):
        edge = next(iter(network.edges()))
        path = network.path_from_edge_ids([edge.edge_id])
        teleport = Trajectory(0, path, (0.1,))
        crawl = Trajectory(1, path, (edge.length * 10.0,))
        normal = Trajectory(2, path, (edge.free_flow_time() * 1.2,))
        kept = filter_implausible_speeds(network, [teleport, crawl, normal])
        assert [t.trajectory_id for t in kept] == [2]

    def test_statistical_outlier_filtered(self, network):
        edge = next(iter(network.edges()))
        path = network.path_from_edge_ids([edge.edge_id])
        usual = [Trajectory(i, path, (30.0 + i % 3,)) for i in range(10)]
        outlier = Trajectory(99, path, (400.0,))
        kept = filter_statistical_outliers([*usual, outlier])
        assert 99 not in {t.trajectory_id for t in kept}
        assert len(kept) == 10

    def test_small_groups_are_kept(self, network):
        edge = next(iter(network.edges()))
        path = network.path_from_edge_ids([edge.edge_id])
        few = [Trajectory(i, path, (30.0 + 50 * i,)) for i in range(3)]
        assert len(filter_statistical_outliers(few)) == 3

    def test_clean_trajectories_pipeline(self, network, trajectories):
        cleaned = clean_trajectories(network, list(trajectories))
        assert 0 < len(cleaned) <= len(trajectories)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            OutlierFilterConfig(max_speed_factor=0).validate()


class TestSplits:
    def test_k_fold_partitions_are_disjoint_and_complete(self, trajectories):
        folds = k_fold_split(list(trajectories), folds=5, seed=1)
        assert len(folds) == 5
        all_test_ids = [t.trajectory_id for fold in folds for t in fold.test]
        assert sorted(all_test_ids) == sorted(t.trajectory_id for t in trajectories)
        for fold in folds:
            assert set(t.trajectory_id for t in fold.test).isdisjoint(
                t.trajectory_id for t in fold.train
            )
            assert len(fold.train) + len(fold.test) == len(trajectories)

    def test_k_fold_validation(self, trajectories):
        with pytest.raises(ConfigurationError):
            k_fold_split(list(trajectories), folds=1)
        with pytest.raises(ConfigurationError):
            k_fold_split(list(trajectories)[:3], folds=5)

    def test_split_by_regime_covers_everything(self, trajectories):
        grouped = split_by_regime(list(trajectories), [PEAK, OFF_PEAK])
        assert len(grouped["peak"]) + len(grouped["off-peak"]) == len(trajectories)
        assert all(t.in_regime(PEAK) for t in grouped["peak"])
