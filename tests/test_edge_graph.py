"""Tests for the EDGE model graph."""

from __future__ import annotations

import pytest

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.errors import GraphError, UnknownEdgeError
from repro.network.road_network import RoadNetwork


@pytest.fixture
def small_network() -> RoadNetwork:
    network = RoadNetwork()
    for vertex in range(3):
        network.add_vertex(vertex, vertex * 100.0, 0.0)
    network.add_edge(0, 1, length=100, speed_limit=36)
    network.add_edge(1, 2, length=100, speed_limit=36)
    return network


class TestEdgeGraph:
    def test_fill_uncovered_uses_free_flow(self, small_network):
        graph = EdgeGraph(small_network)
        assert graph.weight(0).support == (10.0,)

    def test_explicit_weights_override_fallback(self, small_network):
        weights = {0: Distribution.from_pairs([(12, 0.5), (20, 0.5)])}
        graph = EdgeGraph(small_network, weights)
        assert graph.weight(0).expectation() == pytest.approx(16.0)
        assert graph.weight(1).support == (10.0,)

    def test_strict_mode_requires_all_weights(self, small_network):
        with pytest.raises(GraphError):
            EdgeGraph(small_network, {0: Distribution.point(5)}, fill_uncovered=False)

    def test_set_weight_unknown_edge(self, small_network):
        graph = EdgeGraph(small_network)
        with pytest.raises(UnknownEdgeError):
            graph.set_weight(99, Distribution.point(1))

    def test_path_cost_is_convolution(self, paper_example):
        graph = paper_example.edge_graph
        path = paper_example.network.path_from_edge_ids([1, 4])
        distribution = graph.path_cost_distribution(path)
        # e1 = [8,.9][10,.1], e4 = [6,.2][10,.8]
        assert distribution.pdf(14) == pytest.approx(0.18)
        assert distribution.pdf(18) == pytest.approx(0.72)

    def test_path_expected_and_min_cost(self, paper_example):
        graph = paper_example.edge_graph
        path = paper_example.network.path_from_edge_ids([1, 4])
        assert graph.path_min_cost(path) == pytest.approx(14.0)
        assert graph.path_expected_cost(path) == pytest.approx(8.2 + 9.2)

    def test_outgoing_elements_are_edges(self, paper_example):
        elements = paper_example.edge_graph.outgoing_elements(paper_example.source)
        assert {e.path.edges[0] for e in elements} == {1, 2}
        assert all(e.is_edge() for e in elements)

    def test_weights_copy_is_detached(self, small_network):
        graph = EdgeGraph(small_network)
        weights = graph.weights()
        weights[0] = Distribution.point(999)
        assert graph.weight(0).support == (10.0,)

    def test_expected_and_min_cost_accessors(self, small_network):
        graph = EdgeGraph(small_network, {0: Distribution.from_pairs([(5, 0.5), (15, 0.5)])})
        assert graph.min_cost(0) == 5
        assert graph.expected_cost(0) == pytest.approx(10.0)

    def test_repr(self, small_network):
        assert "weighted_edges=2" in repr(EdgeGraph(small_network))
