"""Tests for persistence of the routable index and the heuristics."""

from __future__ import annotations

import pytest

from repro.core.distributions import Distribution
from repro.core.errors import DataError
from repro.core.joint import JointDistribution
from repro.datasets.paper_example import VD, VS
from repro.heuristics.binary import PaceBinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.persistence.codecs import (
    distribution_from_dict,
    distribution_to_dict,
    joint_from_dict,
    joint_to_dict,
)
from repro.heuristics.binary import BinaryHeuristic
from repro.persistence.heuristics import (
    binary_heuristic_from_dict,
    binary_heuristic_to_dict,
    budget_heuristic_from_dict,
    budget_heuristic_to_dict,
    heuristic_table_from_dict,
    heuristic_table_to_dict,
    load_heuristic_bundle,
    load_heuristic_table,
    save_heuristic_bundle,
    save_heuristic_table,
)
from repro.persistence.codecs import (
    decode_column_document,
    encode_column_document,
    is_column_document,
    strict_json_dumps,
    strict_json_loads,
)
from repro.persistence.heuristics import (
    decode_heuristic_entry,
    encode_heuristic_entry,
    heuristic_entry_key,
)
from repro.persistence.index import (
    index_from_column_bytes,
    index_from_dict,
    index_to_column_bytes,
    index_to_dict,
    load_index,
    save_index,
)
from repro.routing import RouterSettings, RoutingQuery, create_router
from repro.vpaths.updated_graph import UpdatedPaceGraph


class TestCodecs:
    def test_distribution_round_trip(self):
        original = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        assert distribution_from_dict(distribution_to_dict(original)) == original

    def test_distribution_malformed(self):
        with pytest.raises(DataError):
            distribution_from_dict({"costs": [1, 2]})
        with pytest.raises(DataError):
            distribution_from_dict({"costs": [1, 2], "probabilities": [1.0]})

    def test_joint_round_trip(self):
        original = JointDistribution((1, 2), {(8.0, 8.0): 0.25, (10.0, 9.0): 0.75})
        restored = joint_from_dict(joint_to_dict(original))
        assert restored.edge_ids == original.edge_ids
        assert restored.probability_of((8.0, 8.0)) == pytest.approx(0.25)

    def test_joint_malformed(self):
        with pytest.raises(DataError):
            joint_from_dict({"edge_ids": [1]})

    def test_array_backed_distribution_is_json_serialisable(self):
        """The NumPy-backed kernel must round-trip through actual JSON text."""
        import json

        original = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
        convolved = original.convolve(original, max_support=4)
        payload = json.dumps(distribution_to_dict(convolved))
        restored = distribution_from_dict(json.loads(payload))
        assert restored == convolved
        assert all(isinstance(c, float) for c in json.loads(payload)["costs"])


class TestColumnCodec:
    """The framed binary column container behind the v2 artifacts."""

    def _sample(self):
        import numpy as np

        meta = {"format_version": 2, "kind": "sample", "tau": 20}
        columns = {
            "floats": np.array([0.125, float("inf"), -3.5]),
            "ints": np.arange(4, dtype=np.int64),
            "empty": np.array([], dtype=float),
        }
        return meta, columns

    def test_round_trip_is_bit_exact(self):
        import numpy as np

        meta, columns = self._sample()
        blob = encode_column_document(meta, columns)
        assert is_column_document(blob)
        restored_meta, restored = decode_column_document(blob)
        assert restored_meta == meta
        for name, column in columns.items():
            assert restored[name].tobytes() == np.ascontiguousarray(column).tobytes()
        # decoded arrays are fresh and writable, never views of the input
        restored["floats"][0] = 99.0

    def test_encoding_is_deterministic(self):
        meta, columns = self._sample()
        assert encode_column_document(meta, columns) == encode_column_document(meta, columns)

    def test_rejects_wrong_magic_truncation_corruption_and_trailing_bytes(self):
        meta, columns = self._sample()
        blob = encode_column_document(meta, columns)
        with pytest.raises(DataError, match="bad magic"):
            decode_column_document(b"JSON" + blob[4:])
        for cut in (2, len(blob) // 3, len(blob) - 1):
            with pytest.raises(DataError):
                decode_column_document(blob[:cut])
        flipped = bytearray(blob)
        flipped[len(blob) // 2] ^= 0xFF
        with pytest.raises(DataError):
            decode_column_document(bytes(flipped))
        with pytest.raises(DataError, match="trailing bytes"):
            decode_column_document(blob + b"\x00")

    def test_rejects_non_columnar_shapes_and_dtypes(self):
        import numpy as np

        with pytest.raises(DataError, match="one-dimensional"):
            encode_column_document({}, {"m": np.zeros((2, 2))})
        with pytest.raises(DataError, match="unsupported dtype"):
            encode_column_document({}, {"s": np.array(["a", "b"])})


class TestColumnarIndex:
    """The v2 columnar index document (format dispatch, bit-exact identity)."""

    def test_column_round_trip_preserves_content_fingerprints(self, paper_example):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        restored = index_from_column_bytes(index_to_column_bytes(updated))
        assert (
            restored.pace_graph.content_fingerprint()
            == paper_example.pace_graph.content_fingerprint()
        )
        assert restored.content_fingerprint() == updated.content_fingerprint()

    def test_column_round_trip_without_vpaths(self, paper_example):
        restored = index_from_column_bytes(index_to_column_bytes(paper_example.pace_graph))
        assert restored.num_vpaths == 0
        assert (
            restored.pace_graph.content_fingerprint()
            == paper_example.pace_graph.content_fingerprint()
        )

    def test_save_load_dispatches_on_leading_bytes(self, paper_example, tmp_path):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        save_index(updated, tmp_path / "index.bin", format_version=2)
        save_index(updated, tmp_path / "index.json", format_version=1)
        for name in ("index.bin", "index.json"):
            restored = load_index(tmp_path / name)
            assert restored.content_fingerprint() == updated.content_fingerprint()
        assert is_column_document((tmp_path / "index.bin").read_bytes())
        assert (tmp_path / "index.json").read_bytes()[:1] == b"{"

    def test_save_rejects_unknown_format(self, paper_example, tmp_path):
        with pytest.raises(DataError, match="format version 3"):
            save_index(paper_example.pace_graph, tmp_path / "x", format_version=3)

    def test_routing_on_columnar_index_matches(self, paper_example):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        restored = index_from_column_bytes(index_to_column_bytes(updated))
        settings = RouterSettings(max_budget=64)
        query = RoutingQuery(VS, VD, budget=30)
        original = create_router(
            "T-B-P", paper_example.pace_graph, updated, settings=settings
        ).route(query)
        reloaded = create_router(
            "T-B-P", restored.pace_graph, restored, settings=settings
        ).route(query)
        assert reloaded.path.edges == original.path.edges
        assert reloaded.probability == original.probability


class TestHeuristicEntryCodec:
    """The per-entry v2 heuristic documents and their addressable keys."""

    def _budget_entry(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=8.0, max_budget=64.0)
        )
        return {
            "kind": "budget",
            "delta": 8.0,
            "graph": "pace",
            "destination": VD,
            "graph_fingerprint": paper_example.pace_graph.content_fingerprint(),
            "graph_signature": [1, 2, 3],
            "heuristic": budget_heuristic_to_dict(heuristic),
        }

    def test_budget_entry_round_trip_is_cell_exact(self, paper_example):
        entry = self._budget_entry(paper_example)
        restored = decode_heuristic_entry(encode_heuristic_entry(entry))
        assert restored["graph_fingerprint"] == entry["graph_fingerprint"]
        assert restored["graph_signature"] == entry["graph_signature"]
        original = budget_heuristic_from_dict(entry["heuristic"])
        decoded = budget_heuristic_from_dict(restored["heuristic"])
        assert decoded.table.rows.keys() == original.table.rows.keys()
        for vertex, row in original.table.rows.items():
            other = decoded.table.rows[vertex]
            assert other.first_index == row.first_index
            assert other.values.tobytes() == row.values.tobytes()
        assert decoded.binary.min_cost_map() == original.binary.min_cost_map()

    def test_binary_entry_round_trips_infinite_get_min_natively(self):
        entry = {
            "kind": "binary",
            "variant": "P",
            "destination": 7,
            "graph_fingerprint": "f" * 32,
            "graph_signature": [4, 5, 6],
            "heuristic": binary_heuristic_to_dict(
                BinaryHeuristic(7, {7: 0.0, 1: 12.5, 2: float("inf")})
            ),
        }
        restored = decode_heuristic_entry(encode_heuristic_entry(entry))
        decoded = binary_heuristic_from_dict(restored["heuristic"])
        assert decoded.min_cost(2) == float("inf")
        assert decoded.min_cost(1) == 12.5

    def test_entry_keys_are_stable_and_distinct(self, paper_example):
        budget = self._budget_entry(paper_example)
        assert heuristic_entry_key(budget) == f"budget-8.0-pace-{VD}"
        assert heuristic_entry_key({**budget, "graph": "updated"}) == f"budget-8.0-updated-{VD}"
        assert (
            heuristic_entry_key({"kind": "binary", "variant": "EU", "destination": 3})
            == "binary-EU-3"
        )
        with pytest.raises(DataError, match="unknown heuristic bundle entry kind"):
            heuristic_entry_key({"kind": "mystery", "destination": 1})

    def test_decode_rejects_non_entry_documents(self):
        import numpy as np

        blob = encode_column_document({"kind": "something"}, {"c": np.zeros(1)})
        with pytest.raises(DataError, match="not a heuristic entry document"):
            decode_heuristic_entry(blob)


class TestIndexPersistence:
    def test_round_trip_preserves_path_costs(self, paper_example, tmp_path):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        path = tmp_path / "index.json"
        save_index(updated, path)
        restored = load_index(path)
        assert restored.pace_graph.num_tpaths == paper_example.pace_graph.num_tpaths
        assert restored.num_vpaths == updated.num_vpaths
        for edge_ids in [(1, 4, 9), (1, 5, 6, 8), (2, 3, 6, 8)]:
            route = paper_example.network.path_from_edge_ids(list(edge_ids))
            original = paper_example.pace_graph.path_cost_distribution(route)
            rebuilt = restored.pace_graph.path_cost_distribution(
                restored.network.path_from_edge_ids(list(edge_ids))
            )
            assert rebuilt == original

    def test_round_trip_without_vpaths(self, paper_example):
        payload = index_to_dict(paper_example.pace_graph)
        restored = index_from_dict(payload)
        assert restored.num_vpaths == 0
        assert restored.pace_graph.tau == paper_example.pace_graph.tau

    def test_routing_on_reloaded_index_matches(self, paper_example, tmp_path):
        updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
        save_index(updated, tmp_path / "index.json")
        restored = load_index(tmp_path / "index.json")
        settings = RouterSettings(max_budget=64)
        query = RoutingQuery(VS, VD, budget=30)
        original = create_router("T-B-P", paper_example.pace_graph, updated, settings=settings).route(query)
        reloaded = create_router("T-B-P", restored.pace_graph, restored, settings=settings).route(query)
        assert reloaded.path.edges == original.path.edges
        assert reloaded.probability == pytest.approx(original.probability)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_index(tmp_path / "missing.json")

    def test_malformed_payload(self):
        with pytest.raises(DataError):
            index_from_dict({"format_version": 1})
        with pytest.raises(DataError):
            index_from_dict({"format_version": 99})

    def test_non_numeric_edge_id_is_data_error(self, paper_example):
        """Regression: int('not-an-id') used to escape as a bare ValueError."""
        payload = index_to_dict(paper_example.pace_graph)
        weights = dict(payload["edge_weights"])
        weights["not-an-id"] = next(iter(weights.values()))
        payload["edge_weights"] = weights
        with pytest.raises(DataError, match="malformed index payload"):
            index_from_dict(payload)

    def test_garbage_index_file_is_data_error(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_bytes(b"{ not json")
        with pytest.raises(DataError, match="not valid JSON"):
            load_index(path)


class TestHeuristicPersistence:
    def test_binary_round_trip(self, paper_example):
        original = PaceBinaryHeuristic(paper_example.pace_graph, VD)
        restored = binary_heuristic_from_dict(binary_heuristic_to_dict(original))
        for vertex in range(8):
            assert restored.min_cost(vertex) == original.min_cost(vertex)
            assert restored.probability(vertex, 20) == original.probability(vertex, 20)

    def test_binary_malformed(self):
        with pytest.raises(DataError):
            binary_heuristic_from_dict({"destination": 1})

    def test_table_round_trip(self, paper_example, tmp_path):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=3, max_budget=36)
        )
        path = tmp_path / "table.json"
        save_heuristic_table(heuristic, path)
        restored = load_heuristic_table(path)
        assert restored.destination == VD
        assert restored.delta == 3
        for vertex in range(8):
            for budget in range(0, 39, 3):
                assert restored.value(vertex, budget) == pytest.approx(
                    heuristic.table.value(vertex, budget)
                )

    def test_table_accepts_raw_table(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        payload = heuristic_table_to_dict(heuristic.table)
        assert heuristic_table_from_dict(payload).storage_cells() == heuristic.table.storage_cells()

    def test_table_malformed(self, tmp_path):
        with pytest.raises(DataError):
            heuristic_table_from_dict({"format_version": 99})
        with pytest.raises(DataError):
            load_heuristic_table(tmp_path / "missing.json")

    def test_non_numeric_vertex_is_data_error(self, paper_example):
        """Regression: int('spindle') used to escape as a bare ValueError."""
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        payload = heuristic_table_to_dict(heuristic.table)
        rows = dict(payload["rows"])
        rows["spindle"] = next(iter(rows.values()))
        payload["rows"] = rows
        with pytest.raises(DataError, match="malformed heuristic table payload"):
            heuristic_table_from_dict(payload)

    def test_entry_with_non_numeric_row_vertex_is_data_error(self, paper_example):
        """Regression: encode_heuristic_entry let int() ValueErrors escape."""
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        entry = {
            "kind": "budget",
            "variant": "T",
            "graph": "pace",
            "delta": 6.0,
            "heuristic": budget_heuristic_to_dict(heuristic),
        }
        rows = dict(entry["heuristic"]["table"]["rows"])
        rows["spindle"] = next(iter(rows.values()))
        entry["heuristic"]["table"]["rows"] = rows
        with pytest.raises(DataError, match="malformed heuristic bundle entry"):
            encode_heuristic_entry(entry)

    def test_binary_round_trips_unreachable_vertices_as_strict_json(self):
        """``getMin = inf`` must survive strict JSON (no non-standard Infinity)."""
        import json

        original = BinaryHeuristic(7, {1: 12.5, 2: float("inf"), 3: 0.0})
        payload = binary_heuristic_to_dict(original)
        text = json.dumps(payload, allow_nan=False)  # raises on raw inf/nan
        assert "Infinity" not in text
        restored = binary_heuristic_from_dict(json.loads(text))
        assert restored.min_cost(1) == 12.5
        assert restored.min_cost(2) == float("inf")
        assert restored.probability(2, 1e12) == 0.0
        assert restored.min_cost(3) == 0.0

    def test_binary_accepts_legacy_infinity_token(self):
        """Files written before the sentinel used json's non-standard Infinity."""
        import json

        legacy = '{"format_version": 1, "destination": 0, "min_costs": {"4": Infinity}}'
        restored = binary_heuristic_from_dict(json.loads(legacy))
        assert restored.min_cost(4) == float("inf")

    def test_binary_rejects_nan(self):
        with pytest.raises(DataError):
            binary_heuristic_from_dict(
                {"format_version": 1, "destination": 0, "min_costs": {"1": "nan"}}
            )

    def test_budget_heuristic_round_trip(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=3, max_budget=36)
        )
        restored = budget_heuristic_from_dict(budget_heuristic_to_dict(heuristic))
        assert restored.destination == VD
        assert restored.delta == 3
        assert restored.build_seconds == 0.0
        for vertex in range(8):
            assert restored.min_cost(vertex) == heuristic.min_cost(vertex)
            for budget in range(0, 42, 3):
                assert restored.probability(vertex, budget) == heuristic.probability(vertex, budget)


class TestHeuristicBundle:
    def test_round_trip(self, paper_example, tmp_path):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        entries = [
            {
                "kind": "budget",
                "delta": 6.0,
                "graph": "pace",
                "destination": VD,
                "heuristic": budget_heuristic_to_dict(heuristic),
            },
            {
                "kind": "binary",
                "variant": "P",
                "destination": VD,
                "heuristic": binary_heuristic_to_dict(heuristic.binary),
            },
        ]
        path = tmp_path / "bundle.json"
        save_heuristic_bundle(entries, path)
        loaded = load_heuristic_bundle(path)
        assert [e["kind"] for e in loaded] == ["budget", "binary"]
        restored = budget_heuristic_from_dict(loaded[0]["heuristic"])
        assert restored.table.storage_cells() == heuristic.table.storage_cells()

    def test_missing_and_malformed(self, tmp_path):
        with pytest.raises(DataError):
            load_heuristic_bundle(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else", "format_version": 1, "entries": []}')
        with pytest.raises(DataError):
            load_heuristic_bundle(bad)
        worse = tmp_path / "worse.json"
        worse.write_text('{"kind": "heuristic-bundle", "format_version": 99, "entries": []}')
        with pytest.raises(DataError):
            load_heuristic_bundle(worse)


class TestFormatVersionHandling:
    """Every persisted document family refuses unknown format versions loudly.

    A reader silently accepting a newer ``format_version`` would mis-parse
    future documents; the error must name both the found and the supported
    version so operators know which side to upgrade.  Legacy (version-1)
    documents written by earlier releases keep loading verbatim.
    """

    def test_index_rejects_unknown_version_naming_it(self):
        with pytest.raises(DataError, match=r"index document format version 99.*supports version 1"):
            index_from_dict({"format_version": 99, "tau": 20})

    def test_index_rejects_missing_and_non_integer_version(self):
        with pytest.raises(DataError, match="no format_version"):
            index_from_dict({"tau": 20})
        with pytest.raises(DataError, match="must be an integer"):
            index_from_dict({"format_version": "1", "tau": 20})

    def test_binary_heuristic_rejects_unknown_version(self):
        payload = {"format_version": 2, "destination": 0, "min_costs": {"1": 5.0}}
        with pytest.raises(DataError, match=r"binary heuristic format version 2.*supports version 1"):
            binary_heuristic_from_dict(payload)

    def test_budget_heuristic_rejects_unknown_version(self, paper_example):
        heuristic = BudgetSpecificHeuristic(
            paper_example.pace_graph, VD, BudgetHeuristicConfig(delta=6, max_budget=36)
        )
        payload = budget_heuristic_to_dict(heuristic)
        payload["format_version"] = 7
        with pytest.raises(DataError, match=r"budget heuristic format version 7.*supports version 1"):
            budget_heuristic_from_dict(payload)

    def test_bundle_rejects_unknown_version_naming_it(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"kind": "heuristic-bundle", "format_version": 3, "entries": []}')
        with pytest.raises(DataError, match=r"heuristic bundle format version 3.*supports version 1"):
            load_heuristic_bundle(path)

    def test_legacy_version_1_documents_still_load(self, paper_example, tmp_path):
        """Regression: verbatim version-1 documents from earlier releases."""
        import json

        legacy_binary = json.loads(
            '{"format_version": 1, "destination": 3, "min_costs": {"0": 4.5, "1": "inf"}}'
        )
        restored = binary_heuristic_from_dict(legacy_binary)
        assert restored.min_cost(0) == 4.5
        assert restored.min_cost(1) == float("inf")

        # A legacy index document round-trips through today's writer format
        # (the writer still emits version 1, so saved files *are* legacy files).
        path = tmp_path / "legacy-index.json"
        save_index(paper_example.pace_graph, path)
        document = json.loads(path.read_text())
        assert document["format_version"] == 1
        assert load_index(path).pace_graph.num_tpaths == paper_example.pace_graph.num_tpaths


class TestCodecErrorTaxonomy:
    def test_non_numeric_distribution_payload_raises_distribution_error(self):
        from repro.core.errors import DistributionError

        with pytest.raises(DistributionError):
            distribution_from_dict({"costs": ["x"], "probabilities": [1.0]})

    def test_from_normalised_rejects_mismatched_lengths(self):
        from repro.core.errors import DistributionError

        with pytest.raises(DistributionError, match="equal-length"):
            Distribution.from_normalised([1.0, 2.0, 3.0], [0.5, 0.5])

    def test_duplicate_joint_outcomes_accumulate_instead_of_collapsing(self):
        payload = {
            "edge_ids": [1],
            "outcomes": [
                {"costs": [2.0], "probability": 0.5},
                {"costs": [2.0], "probability": 0.25},
                {"costs": [3.0], "probability": 0.25},
            ],
        }
        joint = joint_from_dict(payload)
        # Last-wins collapsing would drop 0.5 and renormalise to 1/3 vs 2/3.
        assert joint.pmf[(2.0,)] == pytest.approx(0.75)
        assert joint.pmf[(3.0,)] == pytest.approx(0.25)


class TestStrictJsonHelpers:
    """The sanctioned codec entry points enforced by the strict-json lint rule."""

    def test_dumps_rejects_non_finite_floats(self):
        with pytest.raises(DataError, match="not strict-JSON serialisable"):
            strict_json_dumps({"cost": float("inf")})
        with pytest.raises(DataError, match="not strict-JSON serialisable"):
            strict_json_dumps({"cost": float("nan")})

    def test_dumps_round_trips_plain_payloads(self):
        payload = {"a": [1, 2.5], "b": None, "c": "τ"}
        assert strict_json_loads(strict_json_dumps(payload), what="test") == payload

    def test_loads_rejects_invalid_json(self):
        with pytest.raises(DataError, match="manifest is not valid JSON"):
            strict_json_loads("{ nope", what="manifest")

    def test_loads_rejects_non_standard_tokens(self):
        with pytest.raises(DataError, match="non-standard JSON token 'NaN'"):
            strict_json_loads('{"x": NaN}', what="doc")
        with pytest.raises(DataError, match="non-standard JSON token 'Infinity'"):
            strict_json_loads('{"x": Infinity}', what="doc")

    def test_legacy_infinity_opt_in_only_admits_infinities(self):
        # Heuristic v1 file loaders accept the documented legacy token...
        payload = strict_json_loads(
            '{"x": Infinity, "y": -Infinity}', what="doc", allow_legacy_infinity=True
        )
        assert payload == {"x": float("inf"), "y": float("-inf")}
        # ...but NaN stays rejected even there.
        with pytest.raises(DataError, match="non-standard JSON token 'NaN'"):
            strict_json_loads('{"x": NaN}', what="doc", allow_legacy_infinity=True)

    def test_save_index_writes_strict_json(self, paper_example, tmp_path):
        """Regression: save_index used to emit Infinity tokens unguarded."""
        path = tmp_path / "index.json"
        save_index(paper_example.pace_graph, path)
        text = path.read_text(encoding="utf-8")
        assert "Infinity" not in text and "NaN" not in text
        strict_json_loads(text, what="saved index")
