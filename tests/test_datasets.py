"""Tests for the bundled datasets (paper example and synthetic cities)."""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import (
    EDGE_ONLY_GET_MIN,
    PACE_GET_MIN,
    VD,
    VS,
    build_paper_example,
)
from repro.datasets.synthetic import (
    AALBORG_LIKE,
    COUNTRY_LIKE,
    DATASET_NAMES,
    XIAN_LIKE,
    aalborg_like,
    build_dataset,
    tiny_dataset,
)
from repro.trajectories.model import OFF_PEAK, PEAK


class TestPaperExample:
    def test_structure_matches_figure2(self, paper_example):
        assert paper_example.network.num_vertices == 8
        assert paper_example.network.num_edges == 10
        assert paper_example.pace_graph.num_tpaths == 5

    def test_edge_weights_match_figure2(self, paper_example):
        pace = paper_example.pace_graph
        assert pace.edge_weight(1).pdf(8) == pytest.approx(0.9)
        assert pace.edge_weight(8).pdf(4) == pytest.approx(1.0)
        assert pace.edge_weight(3).pdf(16) == pytest.approx(0.5)

    def test_tpath_totals_match_figure3(self, paper_example):
        pace = paper_example.pace_graph
        assert pace.tpath((1, 4)).distribution.pdf(16) == pytest.approx(0.2)
        assert pace.tpath((4, 9)).distribution.pdf(13) == pytest.approx(0.7)
        assert pace.tpath((3, 6)).distribution.pdf(22) == pytest.approx(0.6)
        assert pace.tpath((6, 8)).distribution.pdf(15) == pytest.approx(0.5)
        assert pace.tpath((3, 6, 8)).distribution.pdf(30) == pytest.approx(0.6)

    def test_reference_getmin_tables_are_consistent(self):
        assert set(PACE_GET_MIN) == set(EDGE_ONLY_GET_MIN) == set(range(8))
        assert PACE_GET_MIN[VD] == 0
        assert all(PACE_GET_MIN[v] >= EDGE_ONLY_GET_MIN[v] for v in PACE_GET_MIN)

    def test_source_destination_accessors(self, paper_example):
        assert paper_example.source == VS
        assert paper_example.destination == VD

    def test_build_is_deterministic(self):
        a = build_paper_example()
        b = build_paper_example()
        assert a.edge_ids == b.edge_ids
        assert a.tpaths == b.tpaths


class TestSyntheticDatasets:
    def test_tiny_dataset_regime_split(self, small_dataset):
        assert len(small_dataset.peak) + len(small_dataset.off_peak) == len(
            small_dataset.trajectories
        )
        assert all(t.in_regime(PEAK) for t in small_dataset.peak)
        assert all(t.in_regime(OFF_PEAK) for t in small_dataset.off_peak)

    def test_tiny_dataset_statistics(self, small_dataset):
        stats = small_dataset.statistics()
        assert stats.num_vertices == small_dataset.network.num_vertices
        assert stats.num_trajectories == len(small_dataset.trajectories)
        assert 0 < stats.edge_coverage <= 1

    def test_regime_accessor(self, small_dataset):
        assert small_dataset.regime("peak") == small_dataset.peak
        assert small_dataset.regime("off-peak") == small_dataset.off_peak
        with pytest.raises(KeyError):
            small_dataset.regime("weekend")

    def test_tiny_dataset_deterministic(self):
        a = tiny_dataset()
        b = tiny_dataset()
        assert len(a.trajectories) == len(b.trajectories)
        assert a.trajectories[0].edge_costs == b.trajectories[0].edge_costs

    def test_named_configs_have_distinct_roles(self):
        assert AALBORG_LIKE.grid.rows < XIAN_LIKE.grid.rows
        assert AALBORG_LIKE.name != XIAN_LIKE.name

    def test_scale_parameter_shrinks_trajectories(self):
        small = aalborg_like(scale=0.05)
        assert len(small.trajectories) < 400
        assert small.network.num_vertices > 50

    def test_build_dataset_cleans_trajectories(self):
        dataset = build_dataset(AALBORG_LIKE)
        assert len(dataset.trajectories) <= AALBORG_LIKE.trajectories.num_trajectories
        assert len(dataset.trajectories) > AALBORG_LIKE.trajectories.num_trajectories * 0.5

    def test_country_like_is_registered_but_never_built_here(self):
        """The country-scale config: an order of magnitude more vertices.

        Deliberately *configuration-only*: building it takes minutes (that is
        its point — it stresses the offline pipeline), so tier-1 asserts the
        registry entry and the scale relations without generating anything.
        """
        assert "country-like" in DATASET_NAMES
        assert COUNTRY_LIKE.name == "country-like"
        assert COUNTRY_LIKE.grid.rows * COUNTRY_LIKE.grid.cols > 4 * (
            XIAN_LIKE.grid.rows * XIAN_LIKE.grid.cols
        )
        assert (
            COUNTRY_LIKE.trajectories.num_trajectories
            > 2 * AALBORG_LIKE.trajectories.num_trajectories
        )
