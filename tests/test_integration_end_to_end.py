"""End-to-end integration tests: raw data -> index -> routing, across the whole stack."""

from __future__ import annotations

import pytest

from repro.evaluation.workloads import WorkloadConfig, generate_workload
from repro.heuristics import PaceBinaryHeuristic
from repro.routing import RouterSettings, RoutingQuery, create_router
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.trajectories import GpsSimulatorConfig, HmmMapMatcher, MapMatcherConfig, simulate_gps_trace
from repro.tpaths import TPathMinerConfig, build_pace_graph
from repro.vpaths import UpdatedPaceGraph


class TestEndToEnd:
    def test_all_methods_agree_with_exhaustive_baseline(self, small_dataset, small_pace_graph, small_updated_graph):
        """On real (synthetic) data every guided method must match the exhaustive optimum."""
        edge_graph = small_pace_graph.edge_graph
        workload = generate_workload(
            edge_graph,
            list(small_dataset.peak),
            WorkloadConfig(pairs_per_bucket=1, budget_fractions=(1.0,), seed=3),
        )
        settings = RouterSettings(max_budget=3000.0, max_explored=50000)
        baseline = NaivePaceRouter(small_pace_graph, NaiveRouterConfig(max_explored=50000))
        methods = ("T-B-EU", "T-B-E", "T-B-P", "T-BS-60", "V-BS-60")
        for workload_query in workload.queries[:3]:
            query = workload_query.query
            reference = baseline.route(query)
            for method in methods:
                router = create_router(method, small_pace_graph, small_updated_graph, settings=settings)
                result = router.route(query)
                assert result.found == reference.found, (method, query)
                if reference.found:
                    # Guided methods may return a different path of equal or near-equal quality;
                    # they must never be meaningfully worse than the exhaustive baseline.
                    assert result.probability >= reference.probability - 0.05, (method, query)

    def test_gps_to_route_pipeline(self, small_dataset):
        """Raw GPS -> map matching -> mining -> V-paths -> routing, all in one go."""
        network = small_dataset.network
        ground_truth = list(small_dataset.peak)[:60]
        matcher = HmmMapMatcher(network, MapMatcherConfig(candidate_radius=120.0))
        matched = []
        for trajectory in ground_truth:
            trace = simulate_gps_trace(
                network, trajectory, GpsSimulatorConfig(sampling_interval=5.0, noise_sigma=8.0)
            )
            matched.append(matcher.match(trace).to_trajectory(network, trace))
        pace = build_pace_graph(network, matched, TPathMinerConfig(tau=8, resolution=10.0))
        updated, _ = UpdatedPaceGraph.build(pace)
        source = matched[0].path.source
        destination = matched[0].path.target
        router = create_router(
            "V-B-P", pace, updated, settings=RouterSettings(max_budget=3000.0)
        )
        result = router.route(RoutingQuery(source, destination, budget=matched[0].total_cost * 1.5))
        assert result.found
        assert result.path.source == source and result.path.target == destination

    def test_heuristic_reuse_across_queries_to_same_destination(self, small_pace_graph, small_updated_graph):
        """The offline/online split: the second query to a destination must not rebuild tables."""
        router = create_router(
            "T-BS-60", small_pace_graph, small_updated_graph, settings=RouterSettings(max_budget=2000.0)
        )
        vertices = sorted(small_pace_graph.network.vertex_ids())
        destination = vertices[-1]
        sources = [v for v in vertices[:4] if v != destination]
        first = router.route(RoutingQuery(sources[0], destination, budget=900.0))
        heuristic_after_first = router.heuristic_for(destination)
        second = router.route(RoutingQuery(sources[1], destination, budget=900.0))
        assert router.heuristic_for(destination) is heuristic_after_first
        assert first.method == second.method == "T-BS-60"

    def test_peak_and_off_peak_models_can_differ_in_routing(self, small_dataset):
        """Routing against the regime-specific models reflects the congestion difference."""
        miner = TPathMinerConfig(tau=15, resolution=5.0)
        peak_pace = build_pace_graph(small_dataset.network, list(small_dataset.peak), miner)
        off_peak_pace = build_pace_graph(small_dataset.network, list(small_dataset.off_peak), miner)
        source_dest = [
            (t.path.source, t.path.target) for t in small_dataset.peak if t.num_edges >= 4
        ][0]
        heuristic_peak = PaceBinaryHeuristic(peak_pace, source_dest[1])
        heuristic_off = PaceBinaryHeuristic(off_peak_pace, source_dest[1])
        # Peak congestion inflates minimum travel times (weakly, at least not the reverse).
        assert heuristic_peak.min_cost(source_dest[0]) >= heuristic_off.min_cost(source_dest[0]) * 0.9

    @pytest.mark.parametrize("budget_factor,expect_found", [(0.4, False), (3.0, True)])
    def test_budget_extremes(self, small_pace_graph, small_updated_graph, small_dataset, budget_factor, expect_found):
        """Hopeless budgets find nothing; generous budgets find a certain path."""
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        query = RoutingQuery(
            trajectory.path.source,
            trajectory.path.target,
            budget=trajectory.total_cost * budget_factor,
        )
        router = create_router(
            "V-BS-60", small_pace_graph, small_updated_graph, settings=RouterSettings(max_budget=6000.0)
        )
        result = router.route(query)
        if expect_found:
            assert result.found
        # A 0.4x budget is usually (not provably always) infeasible; only assert no false certainty.
        if result.found:
            assert result.probability <= 1.0 + 1e-9
