"""CLI tests for the ``repro catalog`` family and its integration hooks.

The catalog CLI follows the repo's exit-code taxonomy: 0 = success, 1 =
domain failure (a store failed verification, a fleet step failed), 2 =
operational error (corrupt or missing catalog database, unreadable store).
"""

from __future__ import annotations

import argparse
import json
import shutil

import pytest

from repro.catalog import (
    CatalogDB,
    create_operation,
    get_operation,
    list_stores,
    register_store,
    run_operation,
)
from repro.cli import _resolve_serve_store, build_parser, main
from repro.core.errors import DataError
from repro.persistence.store import MANIFEST_NAME
from repro.routing import RoutingEngine


@pytest.fixture(scope="module")
def tiny_engine(tiny_artifact_store):
    return RoutingEngine.from_artifacts(tiny_artifact_store)


@pytest.fixture()
def fleet(tiny_engine, tmp_path):
    """Two stores (one v1, one v2) registered into a fresh catalog."""
    db_path = tmp_path / "catalog.sqlite"
    old = tmp_path / "old-store"
    new = tmp_path / "new-store"
    tiny_engine.save_artifacts(old, format_version=1)
    tiny_engine.save_artifacts(new, format_version=2)
    assert main(["catalog", "register", "--db", str(db_path), str(old), str(new)]) == 0
    return argparse.Namespace(db=str(db_path), old=old, new=new)


def query_json(capsys, *argv) -> list[dict]:
    capsys.readouterr()  # drop output from earlier commands (fixture setup etc.)
    assert main(["catalog", *argv, "--format", "json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestParser:
    def test_catalog_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["catalog"])

    def test_migrate_requires_a_scope(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["catalog", "migrate", "--to", "v2"])

    def test_serve_artifacts_is_now_optional(self):
        args = build_parser().parse_args(["serve", "--catalog", "catalog.sqlite"])
        assert args.artifacts is None
        assert args.catalog == "catalog.sqlite"


class TestQueryFlows:
    def test_list_shows_both_stores(self, fleet, capsys):
        records = query_json(capsys, "list", "--db", fleet.db)
        assert {r["format_version"] for r in records} == {1, 2}
        assert all(r["staleness"] is None for r in records)

    def test_query_by_graph_fingerprint_spans_the_fleet(self, fleet, capsys):
        records = query_json(capsys, "list", "--db", fleet.db)
        fingerprint = records[0]["pace_fingerprint"]
        matched = query_json(
            capsys, "query", "--db", fleet.db, "--graph-fingerprint", fingerprint
        )
        assert len(matched) == 2
        nothing = query_json(
            capsys, "query", "--db", fleet.db, "--graph-fingerprint", "0" * 32
        )
        assert nothing == []

    def test_query_by_format_version_finds_the_v1_store(self, fleet, capsys):
        matched = query_json(capsys, "query", "--db", fleet.db, "--format-version", "1")
        assert [r["path"] for r in matched] == [str(fleet.old.resolve())]

    def test_query_stale_after_behind_the_back_republish(
        self, fleet, capsys, tiny_engine
    ):
        assert query_json(capsys, "query", "--db", fleet.db, "--stale") == []
        tiny_engine.save_artifacts(fleet.new, provenance={"republished": True})
        stale = query_json(capsys, "query", "--db", fleet.db, "--stale")
        assert [r["path"] for r in stale] == [str(fleet.new.resolve())]
        assert stale[0]["staleness"] == "drifted"
        assert main(["catalog", "sync", "--db", fleet.db]) == 0
        assert query_json(capsys, "query", "--db", fleet.db, "--stale") == []

    def test_corrupt_catalog_database_exits_2(self, tmp_path, capsys):
        path = tmp_path / "catalog.sqlite"
        path.write_bytes(b"not a sqlite database")
        assert main(["catalog", "list", "--db", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_catalog_database_exits_2(self, tmp_path, capsys):
        assert main(["catalog", "list", "--db", str(tmp_path / "none.sqlite")]) == 2
        assert "repro catalog register" in capsys.readouterr().err


class TestVerifyFlows:
    def test_healthy_fleet_verifies_clean(self, fleet):
        assert main(["catalog", "verify", "--db", fleet.db, "--deep"]) == 0

    def test_truncated_artifact_fails_verification_with_exit_1(self, fleet, capsys):
        victim = next(p for p in fleet.old.iterdir() if p.name != MANIFEST_NAME)
        victim.write_bytes(victim.read_bytes()[:-10])
        assert main(["catalog", "verify", "--db", fleet.db, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        by_path = {entry["path"]: entry for entry in report}
        assert by_path[str(fleet.old.resolve())]["status"] == "corrupt"
        assert by_path[str(fleet.new.resolve())]["status"] == "ok"


class TestMigrateFlows:
    def test_migrate_all_converts_the_fleet(self, fleet, capsys):
        assert main(["catalog", "migrate", "--db", fleet.db, "--to", "v2", "--all"]) == 0
        assert query_json(capsys, "query", "--db", fleet.db, "--format-version", "1") == []

    def test_migrate_named_store_only(self, fleet, capsys):
        rc = main(
            ["catalog", "migrate", "--db", fleet.db, "--to", "v2",
             "--stores", str(fleet.old)]
        )
        assert rc == 0
        assert query_json(capsys, "query", "--db", fleet.db, "--format-version", "1") == []

    def test_migrating_an_unregistered_store_exits_2(self, fleet, tmp_path, capsys):
        rc = main(
            ["catalog", "migrate", "--db", fleet.db, "--to", "v2",
             "--stores", str(tmp_path / "ghost")]
        )
        assert rc == 2
        assert "not registered" in capsys.readouterr().err

    def test_resume_finishes_an_interrupted_fleet_migration(self, fleet, capsys):
        # Interrupt a fleet migration through the API (the CLI shares the
        # exact operations rows), then let `--resume` finish it.
        with CatalogDB(fleet.db, create=False) as db:
            operation = create_operation(db, "migrate", {"to": 2}, list_stores(db))
            from repro.catalog import migrate_worker

            real = migrate_worker(2)
            calls: list[str] = []

            def killer(db_, record):
                calls.append(record.path)
                if len(calls) == 2:
                    raise KeyboardInterrupt
                return real(db_, record)

            with pytest.raises(KeyboardInterrupt):
                run_operation(db, operation, killer)

        rc = main(["catalog", "migrate", "--db", fleet.db, "--to", "v2", "--all", "--resume"])
        assert rc == 0
        err = capsys.readouterr().err
        assert f"resuming operation {operation.operation_id}" in err
        with CatalogDB(fleet.db, create=False) as db:
            final = get_operation(db, operation.operation_id)
            assert final.status == "done"
            attempts = {step.path: step.attempts for step in final.steps}
            assert attempts[calls[0]] == 1  # the finished store was not redone
        assert query_json(capsys, "query", "--db", fleet.db, "--format-version", "1") == []

    def test_without_resume_a_fresh_operation_is_created(self, fleet):
        assert main(["catalog", "migrate", "--db", fleet.db, "--to", "v2", "--all"]) == 0
        assert main(["catalog", "migrate", "--db", fleet.db, "--to", "v2", "--all"]) == 0
        with CatalogDB(fleet.db, create=False) as db:
            rows = db.query("SELECT operation_id FROM operations")
            assert len(rows) == 2


class TestGcFlows:
    def test_dry_run_on_a_healthy_fleet_collects_nothing(self, fleet, capsys):
        assert query_json(capsys, "gc", "--db", fleet.db) == []
        capsys.readouterr()
        assert main(["catalog", "gc", "--db", fleet.db]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert "nothing to collect" in out

    def test_vanished_store_rows_survive_dry_run_and_fall_to_apply(self, fleet, capsys):
        shutil.rmtree(fleet.old)
        actions = query_json(capsys, "gc", "--db", fleet.db)
        assert actions == [
            {
                "kind": "missing-store",
                "path": str(fleet.old.resolve()),
                "action": "would-unregister",
            }
        ]
        with CatalogDB(fleet.db, create=False) as db:
            assert len(list_stores(db)) == 2  # the dry run touched nothing
        assert main(["catalog", "gc", "--db", fleet.db, "--apply"]) == 0
        with CatalogDB(fleet.db, create=False) as db:
            assert [record.path for record in list_stores(db)] == [str(fleet.new.resolve())]

    def test_root_scan_deletes_only_unregistered_store_dirs(
        self, fleet, tiny_engine, tmp_path, capsys
    ):
        stray = tmp_path / "strays" / "forgotten-store"
        tiny_engine.save_artifacts(stray, format_version=2)
        actions = query_json(capsys, "gc", "--db", fleet.db, "--root", str(tmp_path))
        assert actions == [
            {
                "kind": "unregistered-store",
                "path": str(stray.resolve()),
                "action": "would-delete",
            }
        ]
        assert stray.exists()  # the dry run touched nothing
        capsys.readouterr()
        assert main(["catalog", "gc", "--db", fleet.db, "--root", str(tmp_path), "--apply"]) == 0
        assert "deleted" in capsys.readouterr().out
        assert not stray.exists()
        assert fleet.old.exists() and fleet.new.exists()  # registered stores stay


class TestIntegrationHooks:
    def test_build_artifacts_registers_into_the_catalog(self, tmp_path, capsys):
        db_path = tmp_path / "catalog.sqlite"
        out = tmp_path / "built-store"
        rc = main(
            ["build-artifacts", "--out", str(out), "--max-budget", "300",
             "--max-explored", "500", "--sweeps", "1", "--catalog", str(db_path)]
        )
        assert rc == 0
        assert "catalog" in capsys.readouterr().out
        with CatalogDB(db_path, create=False) as db:
            records = list_stores(db)
            assert [r.path for r in records] == [str(out.resolve())]
            assert records[0].dataset == "tiny"

    def test_serve_resolves_a_store_from_the_catalog(self, fleet):
        args = argparse.Namespace(
            artifacts=None, catalog=fleet.db, graph_fingerprint=None
        )
        resolved = _resolve_serve_store(args)
        assert resolved in {str(fleet.old.resolve()), str(fleet.new.resolve())}

    def test_serve_with_artifacts_registers_when_catalog_given(
        self, tmp_path, tiny_engine
    ):
        store = tmp_path / "store"
        tiny_engine.save_artifacts(store)
        db_path = tmp_path / "catalog.sqlite"
        args = argparse.Namespace(
            artifacts=str(store), catalog=str(db_path), graph_fingerprint=None
        )
        assert _resolve_serve_store(args) == str(store)
        with CatalogDB(db_path, create=False) as db:
            assert len(list_stores(db)) == 1

    def test_serve_refuses_a_fleet_of_stale_stores(self, fleet, tiny_engine):
        tiny_engine.save_artifacts(fleet.old, provenance={"republished": 1})
        tiny_engine.save_artifacts(fleet.new, provenance={"republished": 1})
        args = argparse.Namespace(
            artifacts=None, catalog=fleet.db, graph_fingerprint=None
        )
        with pytest.raises(DataError, match="all stale or missing"):
            _resolve_serve_store(args)

    def test_serve_without_artifacts_or_catalog_exits_2(self, capsys):
        assert main(["serve"]) == 2
        assert "--catalog" in capsys.readouterr().err

    def test_serve_by_graph_fingerprint_picks_a_matching_store(self, fleet, capsys):
        records = query_json(capsys, "list", "--db", fleet.db)
        fingerprint = records[0]["pace_fingerprint"]
        args = argparse.Namespace(
            artifacts=None, catalog=fleet.db, graph_fingerprint=fingerprint
        )
        assert _resolve_serve_store(args) in {r["path"] for r in records}
        missing = argparse.Namespace(
            artifacts=None, catalog=fleet.db, graph_fingerprint="f" * 32
        )
        with pytest.raises(DataError, match="no fresh store"):
            _resolve_serve_store(missing)
