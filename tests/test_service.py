"""Tests for the typed service API: wire formats, error taxonomy, service facade."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError, DataError
from repro.core.edge_graph import EdgeGraph
from repro.core.pace_graph import PaceGraph
from repro.datasets.paper_example import VD, VS
from repro.network.road_network import RoadNetwork
from repro.routing.engine import RouterSettings, RoutingEngine
from repro.routing.service import (
    ERROR_CODES,
    RouteError,
    RouteRequest,
    RouteResponse,
    RoutingService,
)
from repro.vpaths.updated_graph import UpdatedPaceGraph


@pytest.fixture(scope="module")
def example_engine(paper_example):
    updated, _ = UpdatedPaceGraph.build(paper_example.pace_graph)
    return RoutingEngine(
        paper_example.pace_graph, updated, settings=RouterSettings(max_budget=120.0)
    )


@pytest.fixture(scope="module")
def example_service(example_engine):
    return RoutingService(example_engine, default_method="T-BS-60")


class TestRouteRequestCodec:
    def test_round_trip(self):
        request = RouteRequest(
            source=1, destination=2, budget=30.0, departure_time=900.0,
            method="V-BS-60", request_id="q-1",
        )
        assert RouteRequest.from_dict(request.to_dict()) == request

    def test_optional_fields_omitted_from_wire(self):
        payload = RouteRequest(source=1, destination=2, budget=30.0).to_dict()
        assert "method" not in payload and "request_id" not in payload
        assert RouteRequest.from_dict(payload) == RouteRequest(source=1, destination=2, budget=30.0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(DataError, match="unknown route request fields"):
            RouteRequest.from_dict({"source": 1, "destination": 2, "budget": 30.0, "bogus": 1})

    def test_missing_and_malformed_fields_rejected(self):
        with pytest.raises(DataError):
            RouteRequest.from_dict({"source": 1, "destination": 2})
        with pytest.raises(DataError):
            RouteRequest.from_dict({"source": 1, "destination": 2, "budget": "soon"})
        with pytest.raises(DataError, match="finite"):
            RouteRequest.from_dict({"source": 1, "destination": 2, "budget": float("inf")})
        with pytest.raises(DataError, match="JSON object"):
            RouteRequest.from_dict([1, 2, 3])
        with pytest.raises(DataError, match="request_id"):
            RouteRequest.from_dict(
                {"source": 1, "destination": 2, "budget": 30.0, "request_id": 7}
            )

    def test_no_silent_numeric_coercion(self):
        # int(4.9) would route from vertex 4; strict decode refuses instead.
        with pytest.raises(DataError, match="integer vertex id"):
            RouteRequest.from_dict({"source": 4.9, "destination": 2, "budget": 30.0})
        with pytest.raises(DataError, match="integer vertex id"):
            RouteRequest.from_dict({"source": True, "destination": 2, "budget": 30.0})
        with pytest.raises(DataError, match="integer vertex id"):
            RouteRequest.from_dict({"source": "1", "destination": 2, "budget": 30.0})
        with pytest.raises(DataError, match="must be a number"):
            RouteRequest.from_dict({"source": 1, "destination": 2, "budget": "300"})
        with pytest.raises(DataError, match="must be a number"):
            RouteRequest.from_dict({"source": 1, "destination": 2, "budget": True})
        # Plain ints are valid JSON numbers for budgets.
        assert RouteRequest.from_dict(
            {"source": 1, "destination": 2, "budget": 300}
        ).budget == 300.0


class TestRouteResponseCodec:
    def test_error_codes_are_validated(self):
        with pytest.raises(ConfigurationError, match="error code"):
            RouteError("nonsense", "boom")
        for code in ERROR_CODES:
            assert RouteError(code, "m").to_dict()["code"] == code

    def test_ok_response_round_trip(self, example_service):
        response = example_service.handle(RouteRequest(source=VS, destination=VD, budget=30.0))
        assert response.ok
        payload = json.loads(json.dumps(response.to_dict(), allow_nan=False))
        decoded = RouteResponse.from_dict(payload)
        assert decoded.ok
        assert decoded.method == response.method == "T-BS-60"
        assert decoded.probability == pytest.approx(response.probability)
        assert decoded.path_vertices == response.path_vertices
        assert decoded.path_edges == response.path_edges
        assert decoded.distribution is not None
        assert decoded.distribution.is_close(response.distribution)

    def test_error_response_round_trip(self):
        response = RouteResponse.failure(
            "budget_exceeded", "too tight", method="T-B-P", request_id="r9"
        )
        decoded = RouteResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert not decoded.ok
        assert decoded.error == RouteError("budget_exceeded", "too tight")
        assert decoded.request_id == "r9"

    def test_malformed_response_rejected(self):
        with pytest.raises(DataError):
            RouteResponse.from_dict({"ok": True})
        with pytest.raises(DataError):
            RouteResponse.from_dict({"ok": False})


class TestRoutingService:
    def test_ok_answer_matches_engine(self, example_engine, example_service):
        from repro.routing.queries import RoutingQuery

        response = example_service.handle(
            RouteRequest(source=VS, destination=VD, budget=30.0, request_id="a")
        )
        direct = example_engine.route(
            RoutingQuery(source=VS, destination=VD, budget=30.0), method="T-BS-60"
        )
        assert response.ok
        assert response.request_id == "a"
        assert response.probability == pytest.approx(direct.probability)
        assert response.path_edges == direct.path.edges

    def test_per_request_method_override(self, example_service):
        response = example_service.handle(
            RouteRequest(source=VS, destination=VD, budget=30.0, method="V-BS-60")
        )
        assert response.ok and response.method == "V-BS-60"

    def test_invalid_method(self, example_service):
        response = example_service.handle(
            RouteRequest(source=VS, destination=VD, budget=30.0, method="T-Wizard")
        )
        assert not response.ok
        assert response.error.code == "invalid_method"
        assert "unknown routing method" in response.error.message

    def test_invalid_request_parameters(self, example_service):
        same = example_service.handle(RouteRequest(source=VS, destination=VS, budget=30.0))
        assert same.error.code == "invalid_request"
        negative = example_service.handle(RouteRequest(source=VS, destination=VD, budget=-5.0))
        assert negative.error.code == "invalid_request"

    def test_malformed_payload_dict(self, example_service):
        response = example_service.handle({"source": VS, "request_id": "bad-1"})
        assert not response.ok
        assert response.error.code == "invalid_request"
        assert response.request_id == "bad-1"

    def test_unknown_vertex(self, example_service):
        response = example_service.handle(
            RouteRequest(source=VS, destination=987654, budget=30.0)
        )
        assert response.error.code == "unknown_vertex"
        assert "987654" in response.error.message

    def test_budget_above_table_coverage_rejected_for_budget_methods(self, example_service):
        # The engine's tables cover max_budget=120; beyond that a residual
        # lookup would clamp and under-estimate, so the service refuses
        # rather than serving silently degraded answers.
        over = example_service.handle(RouteRequest(source=VS, destination=VD, budget=500.0))
        assert not over.ok
        assert over.error.code == "invalid_request"
        assert "max_budget" in over.error.message
        # Binary-heuristic methods have no table to outgrow; same budget is fine.
        binary = example_service.handle(
            RouteRequest(source=VS, destination=VD, budget=500.0, method="T-B-P")
        )
        assert binary.ok

    def test_backend_failure_falls_back_to_per_request_routing(self, example_service):
        # A batch-level failure (e.g. BrokenProcessPool) must not condemn the
        # whole method group: each request is retried individually in-process.
        class ExplodingBackend:
            def run(self, engine, method, queries):
                raise RuntimeError("worker pool died")

        responses = example_service.handle_batch(
            [RouteRequest(source=VS, destination=VD, budget=30.0, request_id="x")],
            backend=ExplodingBackend(),
        )
        assert len(responses) == 1
        assert responses[0].ok
        assert responses[0].request_id == "x"

    def test_unroutable_failure_becomes_internal_error(self, example_engine):
        class BrokenEngine:
            # Quacks like a RoutingEngine but every routing call fails, as if
            # the serving infrastructure were down entirely.
            def __init__(self, engine):
                self.pace_graph = engine.pace_graph
                self.settings = engine.settings

            def route_many(self, queries, *, method, backend=None):
                raise RuntimeError("worker pool died")

            def route(self, query, *, method):
                raise RuntimeError("worker pool died")

        service = RoutingService(BrokenEngine(example_engine), default_method="T-BS-60")
        responses = service.handle_batch(
            [RouteRequest(source=VS, destination=VD, budget=30.0, request_id="x")]
        )
        assert len(responses) == 1
        assert responses[0].error.code == "internal"
        assert "worker pool died" in responses[0].error.message
        assert responses[0].request_id == "x"

    def test_budget_exceeded_when_min_cost_is_provably_above(self, example_service):
        response = example_service.handle(
            RouteRequest(source=VS, destination=VD, budget=0.001)
        )
        assert not response.ok
        assert response.error.code == "budget_exceeded"
        assert "cheapest possible path" in response.error.message

    def test_not_found_when_unreachable(self):
        network = RoadNetwork("one-way")
        for vertex, x in ((0, 0.0), (1, 100.0), (2, 500.0)):
            network.add_vertex(vertex, x, 0.0)
        network.add_edge(0, 1)
        network.add_edge(2, 1)  # 2 feeds into 1 but is unreachable from 0
        engine = RoutingEngine(
            PaceGraph(EdgeGraph(network), tau=1),
            None,
            settings=RouterSettings(max_budget=600.0),
        )
        service = RoutingService(engine, default_method="T-None")
        response = service.handle(RouteRequest(source=0, destination=2, budget=100.0))
        assert not response.ok
        assert response.error.code == "not_found"
        assert "unreachable" in response.error.message

    def test_batch_preserves_order_and_mixes_outcomes(self, example_service):
        batch = [
            RouteRequest(source=VS, destination=VD, budget=30.0, request_id="ok-1"),
            {"nonsense": True, "request_id": "bad-json"},
            RouteRequest(source=VS, destination=VD, budget=30.0, method="V-B-P", request_id="ok-2"),
            RouteRequest(source=VS, destination=424242, budget=30.0, request_id="missing"),
        ]
        responses = example_service.handle_batch(batch)
        assert [r.request_id for r in responses] == ["ok-1", "bad-json", "ok-2", "missing"]
        assert responses[0].ok and responses[0].method == "T-BS-60"
        assert responses[1].error.code == "invalid_request"
        assert responses[2].ok and responses[2].method == "V-B-P"
        assert responses[3].error.code == "unknown_vertex"

    def test_batch_answers_match_single_requests(self, example_service):
        requests = [
            RouteRequest(source=VS, destination=VD, budget=budget)
            for budget in (24.0, 30.0, 40.0)
        ]
        batched = example_service.handle_batch(requests)
        for request, from_batch in zip(requests, batched):
            single = example_service.handle(request)
            assert from_batch.ok == single.ok
            assert from_batch.probability == pytest.approx(single.probability)
            assert from_batch.path_edges == single.path_edges
