"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_requires_endpoints_and_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--source", "1"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "atlantis"])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["stats"]).command == "stats"
        assert parser.parse_args(["build", "--tau", "10"]).tau == 10
        args = parser.parse_args(
            ["route", "--source", "0", "--destination", "5", "--budget", "300"]
        )
        assert args.budget == 300.0
        assert parser.parse_args(["bench", "table7"]).experiment == "table7"

    @pytest.mark.parametrize("method", ["T-BS-240", "V-BS-30", "T-B-EU"])
    def test_parameterised_method_names_accepted(self, method):
        # The old parser listed only the *-BS-60 palette as choices; any name
        # MethodSpec parses must work from the shell.
        args = build_parser().parse_args(
            ["route", "--method", method, "--source", "0", "--destination", "5",
             "--budget", "300"]
        )
        assert args.method == method
        prewarm = build_parser().parse_args(
            ["prewarm", "--method", method, "--destinations", "5", "--out", "x.json"]
        )
        assert prewarm.method == method

    def test_unknown_method_rejected_with_palette(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["route", "--method", "V-B-EU", "--source", "0", "--destination", "5",
                 "--budget", "300"]
            )
        assert "unknown routing method" in capsys.readouterr().err

    def test_route_batch_parses(self):
        args = build_parser().parse_args(
            ["route-batch", "--input", "requests.jsonl", "--backend", "thread",
             "--workers", "2"]
        )
        assert args.command == "route-batch"
        assert args.backend == "thread"
        assert args.workers == 2


class TestCommands:
    def test_stats_prints_table(self, capsys):
        assert main(["stats", "--dataset", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "Number of vertices" in output

    def test_build_reports_index_sizes(self, capsys):
        assert main(["build", "--dataset", "tiny", "--tau", "20"]) == 0
        output = capsys.readouterr().out
        assert "T-paths" in output and "V-paths" in output

    def test_route_found(self, capsys, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        exit_code = main(
            [
                "route",
                "--dataset",
                "tiny",
                "--method",
                "V-B-P",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(trajectory.path.target),
                "--budget",
                str(trajectory.total_cost * 2),
                "--tau",
                "20",
            ]
        )
        assert exit_code == 0
        assert "P(arrive within" in capsys.readouterr().out

    def test_route_not_found_returns_nonzero(self, capsys, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        exit_code = main(
            [
                "route",
                "--dataset",
                "tiny",
                "--method",
                "T-B-P",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(trajectory.path.target),
                "--budget",
                "1",
            ]
        )
        assert exit_code == 1
        assert "no path" in capsys.readouterr().out

    def test_bench_table7(self, capsys):
        assert main(["bench", "table7", "--dataset", "tiny"]) == 0
        assert "Table 7" in capsys.readouterr().out

    def test_route_batch_jsonl_end_to_end(self, capsys, tmp_path, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        requests = tmp_path / "requests.jsonl"
        responses_path = tmp_path / "responses.jsonl"
        lines = [
            json.dumps(
                {
                    "source": trajectory.path.source,
                    "destination": trajectory.path.target,
                    "budget": trajectory.total_cost * 2,
                    "request_id": "good",
                }
            ),
            "this is not json",
            json.dumps(
                {"source": 0, "destination": 999999, "budget": 100.0, "request_id": "missing"}
            ),
        ]
        requests.write_text("\n".join(lines) + "\n", encoding="utf-8")
        exit_code = main(
            [
                "route-batch",
                "--dataset",
                "tiny",
                "--method",
                "T-B-P",
                "--input",
                str(requests),
                "--output",
                str(responses_path),
                "--tau",
                "20",
            ]
        )
        assert exit_code == 1  # some requests failed; pipelines can gate on it
        decoded = [
            json.loads(line)
            for line in responses_path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(decoded) == 3
        assert decoded[0]["ok"] and decoded[0]["request_id"] == "good"
        assert decoded[0]["method"] == "T-B-P"
        assert decoded[0]["probability"] > 0
        assert not decoded[1]["ok"]
        assert decoded[1]["error"]["code"] == "invalid_request"
        assert not decoded[2]["ok"]
        assert decoded[2]["error"]["code"] == "unknown_vertex"
        assert decoded[2]["request_id"] == "missing"

    def test_route_batch_stdout(self, capsys, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        import io
        import sys as _sys

        payload = json.dumps(
            {
                "source": trajectory.path.source,
                "destination": trajectory.path.target,
                "budget": trajectory.total_cost * 2,
            }
        )
        stdin = _sys.stdin
        _sys.stdin = io.StringIO(payload + "\n")
        try:
            exit_code = main(
                ["route-batch", "--dataset", "tiny", "--method", "T-B-P",
                 "--input", "-", "--tau", "20"]
            )
        finally:
            _sys.stdin = stdin
        assert exit_code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert json.loads(out[0])["ok"]

    def test_prewarm_then_route_from_bundle(self, capsys, tmp_path, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        destination = trajectory.path.target
        bundle = tmp_path / "heuristics.json"
        assert main(
            [
                "prewarm",
                "--dataset",
                "tiny",
                "--method",
                "T-BS-60",
                "--destinations",
                str(destination),
                "--out",
                str(bundle),
                "--max-budget",
                str(max(600.0, trajectory.total_cost * 4)),
            ]
        ) == 0
        assert "bundle entries" in capsys.readouterr().out
        assert bundle.exists()
        exit_code = main(
            [
                "route",
                "--dataset",
                "tiny",
                "--method",
                "T-BS-60",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(destination),
                "--budget",
                str(trajectory.total_cost * 2),
                "--heuristics",
                str(bundle),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "prewarmed 1 heuristics" in output
        assert "P(arrive within" in output

    def test_build_artifacts_then_serve_from_store(self, capsys, tmp_path, small_dataset):
        """The deployment pipeline end to end: mine once, serve from disk."""
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        destination = trajectory.path.target
        budget = trajectory.total_cost * 2
        store = tmp_path / "store"
        assert main(
            [
                "build-artifacts",
                "--dataset",
                "tiny",
                "--out",
                str(store),
                "--method",
                "T-BS-60",
                "--destinations",
                str(destination),
                "--max-budget",
                str(max(600.0, budget * 2)),
                "--sweeps",
                "2",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "pace fingerprint" in output
        assert (store / "manifest.json").exists()

        # route boots from the store instead of re-mining.
        exit_code = main(
            [
                "route",
                "--artifacts",
                str(store),
                "--method",
                "T-BS-60",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(destination),
                "--budget",
                str(budget),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "P(arrive within" in output

        # route-batch boots from the store too (serial backend here; the
        # multiprocess path is covered in tests/test_backends.py).
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps(
                {
                    "source": trajectory.path.source,
                    "destination": destination,
                    "budget": budget,
                }
            )
            + "\n"
        )
        exit_code = main(
            [
                "route-batch",
                "--artifacts",
                str(store),
                "--method",
                "T-BS-60",
                "--input",
                str(requests),
                "--output",
                str(tmp_path / "responses.jsonl"),
            ]
        )
        assert exit_code == 0
        response = json.loads((tmp_path / "responses.jsonl").read_text().splitlines()[0])
        assert response["ok"] is True

    def test_prewarm_updates_artifact_store_in_place(self, capsys, tmp_path, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        destination = trajectory.path.target
        store = tmp_path / "store"
        assert main(
            ["build-artifacts", "--dataset", "tiny", "--out", str(store), "--sweeps", "1"]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "prewarm",
                "--artifacts",
                str(store),
                "--method",
                "T-B-P",
                "--destinations",
                str(destination),
            ]
        ) == 0
        assert "store entries" in capsys.readouterr().out
        from repro.persistence.store import ArtifactStore

        manifest = ArtifactStore.open(store).manifest
        # v2 default layout: one addressable document per prewarmed heuristic.
        assert manifest.heuristic_entry_names()

    def test_prewarm_without_out_or_artifacts_errors(self, capsys):
        assert main(
            ["prewarm", "--dataset", "tiny", "--method", "T-B-P", "--destinations", "3"]
        ) == 2
        assert "--out" in capsys.readouterr().err

    def test_route_from_missing_store_fails_cleanly(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "route",
                    "--artifacts",
                    str(tmp_path / "nowhere"),
                    "--source",
                    "0",
                    "--destination",
                    "1",
                    "--budget",
                    "100",
                ]
            )
        # Exit 2 = operational error, never confusable with route's exit 1
        # ("no route found").
        assert excinfo.value.code == 2
        assert "no artifact store" in capsys.readouterr().err

    def test_route_budget_above_store_coverage_errors(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(
            [
                "build-artifacts",
                "--dataset",
                "tiny",
                "--out",
                str(store),
                "--max-budget",
                "300",
                "--sweeps",
                "1",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "route",
                "--artifacts",
                str(store),
                "--method",
                "T-BS-60",
                "--source",
                "0",
                "--destination",
                "1",
                "--budget",
                "500",
            ]
        ) == 2
        assert "heuristic-table coverage" in capsys.readouterr().err

    def test_prewarm_rejects_max_budget_with_artifacts(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(
            ["build-artifacts", "--dataset", "tiny", "--out", str(store), "--sweeps", "1"]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "prewarm",
                "--artifacts",
                str(store),
                "--method",
                "T-B-P",
                "--destinations",
                "3",
                "--max-budget",
                "5000",
            ]
        ) == 2
        assert "cannot be combined with --artifacts" in capsys.readouterr().err

    def test_prewarm_artifacts_preserves_mine_provenance(self, capsys, tmp_path):
        """Re-saving the store in place must not drop the recorded mine time."""
        store = tmp_path / "store"
        assert main(
            ["build-artifacts", "--dataset", "tiny", "--out", str(store), "--sweeps", "1"]
        ) == 0
        capsys.readouterr()
        from repro.persistence.store import ArtifactStore

        before = ArtifactStore.open(store).manifest.provenance
        assert "mine_seconds" in before
        assert main(
            ["prewarm", "--artifacts", str(store), "--method", "T-B-P", "--destinations", "3"]
        ) == 0
        after = ArtifactStore.open(store).manifest.provenance
        assert after["mine_seconds"] == before["mine_seconds"]
        assert after["heuristic_entries"] >= 1
