"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_requires_endpoints_and_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--source", "1"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "atlantis"])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["stats"]).command == "stats"
        assert parser.parse_args(["build", "--tau", "10"]).tau == 10
        args = parser.parse_args(
            ["route", "--source", "0", "--destination", "5", "--budget", "300"]
        )
        assert args.budget == 300.0
        assert parser.parse_args(["bench", "table7"]).experiment == "table7"


class TestCommands:
    def test_stats_prints_table(self, capsys):
        assert main(["stats", "--dataset", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "Number of vertices" in output

    def test_build_reports_index_sizes(self, capsys):
        assert main(["build", "--dataset", "tiny", "--tau", "20"]) == 0
        output = capsys.readouterr().out
        assert "T-paths" in output and "V-paths" in output

    def test_route_found(self, capsys, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        exit_code = main(
            [
                "route",
                "--dataset",
                "tiny",
                "--method",
                "V-B-P",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(trajectory.path.target),
                "--budget",
                str(trajectory.total_cost * 2),
                "--tau",
                "20",
            ]
        )
        assert exit_code == 0
        assert "P(arrive within" in capsys.readouterr().out

    def test_route_not_found_returns_nonzero(self, capsys, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        exit_code = main(
            [
                "route",
                "--dataset",
                "tiny",
                "--method",
                "T-B-P",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(trajectory.path.target),
                "--budget",
                "1",
            ]
        )
        assert exit_code == 1
        assert "no path" in capsys.readouterr().out

    def test_bench_table7(self, capsys):
        assert main(["bench", "table7", "--dataset", "tiny"]) == 0
        assert "Table 7" in capsys.readouterr().out

    def test_prewarm_then_route_from_bundle(self, capsys, tmp_path, small_dataset):
        trajectory = next(t for t in small_dataset.peak if t.num_edges >= 4)
        destination = trajectory.path.target
        bundle = tmp_path / "heuristics.json"
        assert main(
            [
                "prewarm",
                "--dataset",
                "tiny",
                "--method",
                "T-BS-60",
                "--destinations",
                str(destination),
                "--out",
                str(bundle),
                "--max-budget",
                str(max(600.0, trajectory.total_cost * 4)),
            ]
        ) == 0
        assert "bundle entries" in capsys.readouterr().out
        assert bundle.exists()
        exit_code = main(
            [
                "route",
                "--dataset",
                "tiny",
                "--method",
                "T-BS-60",
                "--source",
                str(trajectory.path.source),
                "--destination",
                str(destination),
                "--budget",
                str(trajectory.total_cost * 2),
                "--heuristics",
                str(bundle),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "prewarmed 1 heuristics" in output
        assert "P(arrive within" in output
