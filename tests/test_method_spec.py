"""Tests for the structured routing-method specification."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.routing.methods import METHOD_NAMES, MethodSpec


class TestParseRoundTrip:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_palette_round_trips(self, name):
        assert MethodSpec.parse(name).canonical_name == name

    @pytest.mark.parametrize("name", ["T-BS-30", "T-BS-240", "V-BS-120", "T-BS-7.5"])
    def test_parameterised_deltas_round_trip(self, name):
        spec = MethodSpec.parse(name)
        assert spec.heuristic == "budget"
        assert spec.canonical_name == name

    def test_parse_accepts_a_spec(self):
        spec = MethodSpec.parse("T-B-P")
        assert MethodSpec.parse(spec) is spec
        assert MethodSpec.coerce(spec) is spec
        assert MethodSpec.coerce("T-B-P") == spec

    def test_structured_fields(self):
        spec = MethodSpec.parse("V-BS-60")
        assert spec.graph == "vpath"
        assert spec.heuristic == "budget"
        assert spec.delta == 60.0
        assert MethodSpec.parse("T-B-EU").binary_kind == "EU"
        assert MethodSpec.parse("T-B-E").binary_kind == "E"
        assert MethodSpec.parse("V-B-P").binary_kind == "P"
        assert MethodSpec.parse("T-None").binary_kind is None

    def test_str_is_canonical_name(self):
        assert str(MethodSpec.parse("V-BS-60")) == "V-BS-60"


class TestRejections:
    @pytest.mark.parametrize(
        "name", ["V-B-EU", "V-B-E", "nonsense", "T-BS", "V-BS-", "T-BS--5", "", "t-b-p"]
    )
    def test_unknown_names_list_the_palette(self, name):
        with pytest.raises(ConfigurationError) as excinfo:
            MethodSpec.parse(name)
        message = str(excinfo.value)
        assert "unknown routing method" in message
        for known in METHOD_NAMES:
            assert known in message

    def test_non_string_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown routing method"):
            MethodSpec.parse(42)

    def test_invalid_graph_and_heuristic(self):
        with pytest.raises(ConfigurationError, match="graph"):
            MethodSpec(graph="hyper")
        with pytest.raises(ConfigurationError, match="heuristic"):
            MethodSpec(graph="pace", heuristic="psychic")

    def test_vpath_graph_rejects_non_pace_binary_heuristics(self):
        with pytest.raises(ConfigurationError, match="unknown routing method"):
            MethodSpec(graph="vpath", heuristic="binary_eu")
        with pytest.raises(ConfigurationError, match="unknown routing method"):
            MethodSpec(graph="vpath", heuristic="binary_e")

    def test_budget_delta_validation(self):
        with pytest.raises(ConfigurationError, match="delta"):
            MethodSpec(graph="pace", heuristic="budget")
        with pytest.raises(ConfigurationError, match="positive"):
            MethodSpec(graph="pace", heuristic="budget", delta=0.0)
        with pytest.raises(ConfigurationError, match="delta"):
            MethodSpec(graph="pace", heuristic="binary_p", delta=60.0)


class TestCapabilities:
    def test_requires_vpaths(self):
        assert MethodSpec.parse("V-None").requires_vpaths
        assert MethodSpec.parse("V-BS-60").requires_vpaths
        assert not MethodSpec.parse("T-BS-60").requires_vpaths

    def test_supports_prewarm_matches_heuristic_use(self):
        for name in METHOD_NAMES:
            spec = MethodSpec.parse(name)
            assert spec.supports_prewarm == (spec.heuristic != "none")

    def test_delta_coerced_to_float(self):
        spec = MethodSpec(graph="pace", heuristic="budget", delta=60)
        assert isinstance(spec.delta, float)
        assert spec.canonical_name == "T-BS-60"

    @pytest.mark.parametrize("delta", [7.5, 1000.125, 1000000.5, 1e20, 0.001])
    def test_canonical_name_is_loss_free_for_any_delta(self, delta):
        # The canonical name keys the router cache and crosses process
        # boundaries, so it must round-trip every delta exactly.
        spec = MethodSpec(graph="pace", heuristic="budget", delta=delta)
        parsed = MethodSpec.parse(spec.canonical_name)
        assert parsed == spec
        assert parsed.delta == delta

    def test_non_finite_delta_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            MethodSpec(graph="pace", heuristic="budget", delta=float("inf"))
        with pytest.raises(ConfigurationError, match="unknown routing method"):
            MethodSpec.parse("T-BS-inf")
        with pytest.raises(ConfigurationError, match="unknown routing method"):
            MethodSpec.parse("T-BS-nan")
