"""Binary heuristics (Section 3.2).

The binary heuristic reduces ``U(v_i, x)`` to a reachability test: it is 1
when ``x`` is at least the least possible travel cost ``v_i.getMin()`` from
``v_i`` to the destination, and 0 otherwise.  It is trivially admissible and
its quality depends entirely on how tight ``getMin`` is.  The paper studies
three ways of computing it, all reproduced here:

* **T-B-EU** — Euclidean distance divided by the network's maximum speed
  limit (cheapest to build, loosest bound),
* **T-B-E**  — a reverse Dijkstra over edges only, using each edge's minimum
  cost, and
* **T-B-P**  — Algorithm 2: a reverse search over edges *and* T-paths that
  prefers the more accurate T-path minima (see
  :mod:`repro.heuristics.sptree`).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import Heuristic
from repro.heuristics.sptree import build_pace_shortest_path_tree
from repro.network.road_network import RoadNetwork
from repro.network.algorithms import single_source_costs

__all__ = [
    "BinaryHeuristic",
    "EuclideanBinaryHeuristic",
    "EdgeOnlyBinaryHeuristic",
    "PaceBinaryHeuristic",
]


class BinaryHeuristic(Heuristic):
    """Base class: ``U(v, x) = 1`` iff ``x >= getMin(v)``, from a pre-computed cost map."""

    def __init__(self, destination: int, min_costs: dict[int, float]):
        self._destination = destination
        self._min_costs = min_costs
        # Sorted-array mirror of ``_min_costs`` for the batched lookups,
        # built lazily on first use (a concurrent double build is benign:
        # both threads produce identical arrays).
        self._sorted_ids: np.ndarray | None = None
        self._sorted_costs: np.ndarray | None = None

    @property
    def destination(self) -> int:
        return self._destination

    def min_cost(self, vertex: int) -> float:
        return self._min_costs.get(vertex, float("inf"))

    def min_cost_map(self) -> dict[int, float]:
        """A copy of the per-vertex ``getMin`` values (used for persistence and inspection)."""
        return dict(self._min_costs)

    def probability(self, vertex: int, remaining_budget: float) -> float:
        return 1.0 if remaining_budget >= self.min_cost(vertex) else 0.0

    def probability_batch(self, vertex: int, budgets) -> np.ndarray:
        """The 0/1 step at ``getMin(vertex)`` over a whole array of budgets."""
        budgets = np.asarray(budgets, dtype=float)
        return np.where(budgets >= self.min_cost(vertex), 1.0, 0.0)

    def min_cost_many(self, vertices) -> np.ndarray:
        """``getMin`` for an array of vertices via one sorted-array gather."""
        if self._sorted_ids is None:
            ids = np.fromiter(self._min_costs.keys(), dtype=np.int64, count=len(self._min_costs))
            order = np.argsort(ids)
            costs = np.fromiter(
                self._min_costs.values(), dtype=float, count=len(self._min_costs)
            )[order]
            self._sorted_ids = ids[order]
            self._sorted_costs = costs
        ids = self._sorted_ids
        costs = self._sorted_costs
        assert costs is not None
        vertices = np.asarray(vertices, dtype=np.int64)
        positions = np.searchsorted(ids, vertices)
        clipped = np.minimum(positions, max(len(ids) - 1, 0))
        if len(ids) == 0:
            return np.full(len(vertices), float("inf"))
        found = ids[clipped] == vertices
        return np.where(found, costs[clipped], float("inf"))

    def probability_many(self, vertices, budgets) -> np.ndarray:
        """The 0/1 step for paired (vertex, residual budget) arrays."""
        budgets = np.asarray(budgets, dtype=float)
        return np.where(budgets >= self.min_cost_many(vertices), 1.0, 0.0)

    def storage_bytes(self) -> int:
        """One numeric ``getMin`` value per vertex, as the paper accounts storage."""
        return sum(sys.getsizeof(v) for v in self._min_costs.values()) + sys.getsizeof(
            self._min_costs
        )


class EuclideanBinaryHeuristic(BinaryHeuristic):
    """T-B-EU: ``getMin`` from straight-line distance at the network's maximum speed."""

    def __init__(self, network: RoadNetwork, destination: int):
        max_speed_ms = network.max_speed_limit() / 3.6
        destination_vertex = network.vertex(destination)
        min_costs = {
            vertex.vertex_id: vertex.distance_to(destination_vertex) / max_speed_ms
            for vertex in network.vertices()
        }
        super().__init__(destination, min_costs)


class EdgeOnlyBinaryHeuristic(BinaryHeuristic):
    """T-B-E: ``getMin`` from a reverse Dijkstra over edges with their minimum costs."""

    def __init__(self, pace_graph: PaceGraph, destination: int):
        reversed_network = pace_graph.network.reversed()
        min_costs = single_source_costs(
            reversed_network,
            destination,
            lambda edge: pace_graph.edge_weight(edge.edge_id).min(),
        )
        super().__init__(destination, min_costs)


class PaceBinaryHeuristic(BinaryHeuristic):
    """T-B-P: ``getMin`` from the Algorithm 2 shortest-path tree over edges and T-paths."""

    def __init__(self, pace_graph: PaceGraph, destination: int):
        tree = build_pace_shortest_path_tree(pace_graph, destination)
        min_costs = {
            vertex: tree.get_min(vertex)
            for vertex in pace_graph.network.vertex_ids()
            if tree.get_min(vertex) < float("inf")
        }
        super().__init__(destination, min_costs)
        self._tree = tree

    @property
    def shortest_path_tree(self):
        """The underlying Algorithm 2 result (exposed for inspection and tests)."""
        return self._tree
