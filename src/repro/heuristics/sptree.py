"""Shortest-path-tree generation in PACE (Algorithm 2).

The binary heuristic T-B-P needs, for a given destination, the least travel
cost ``v.getMin()`` from every vertex to the destination *under PACE
semantics*: when a T-path covers several edges, its (more accurate) minimum
cost should be used instead of the sum of the individual edge minima, even if
that sum is smaller.  Plain Dijkstra over the reversed graph cannot express
this preference, so the paper introduces Algorithm 2 — a label-correcting
search that keeps two labels per vertex:

* ``c1`` — the cost of the best known backward path from the destination, and
* ``c2`` — how many of that path's edges are covered by (reversed) T-paths,

and prefers labels following Pareto dominance: smaller ``c1`` is better,
larger ``c2`` is better, and in the non-dominated case the tie is broken by
whether the two labels describe the same underlying road path (prefer more
T-path coverage) or different paths (prefer the cheaper one).

The search runs directly on the forward PACE graph by traversing *incoming*
elements (edges and T-paths), which is equivalent to building the reversed
graph ``G_p_rev`` of the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.elements import WeightedElement
from repro.core.errors import UnknownVertexError
from repro.core.pace_graph import PaceGraph

__all__ = ["SpTreeLabel", "PaceShortestPathTree", "build_pace_shortest_path_tree"]


@dataclass
class SpTreeLabel:
    """The label of one vertex in the PACE shortest-path tree."""

    vertex: int
    c1: float
    c2: int
    parent: int | None
    #: the reversed element (edge or T-path) connecting the parent to this vertex
    via: WeightedElement | None

    def forward_edges(self, labels: dict[int, "SpTreeLabel"]) -> tuple[int, ...]:
        """The underlying road-network edges of the path from this vertex to the destination.

        Used to decide whether two labels describe the *same* road path (the
        tie-breaking rule of Algorithm 2 in the non-dominated case); the
        canonical representation is the forward edge sequence.
        """
        edges: list[int] = []
        label = self
        while label.via is not None and label.parent is not None:
            edges.extend(label.via.path.edges)
            label = labels[label.parent]
        return tuple(edges)


@dataclass(frozen=True)
class PaceShortestPathTree:
    """The result of Algorithm 2: per-vertex ``getMin`` values for one destination."""

    destination: int
    labels: dict[int, SpTreeLabel]

    def get_min(self, vertex: int) -> float:
        """The least backward cost from the destination to ``vertex`` (inf if unreachable)."""
        label = self.labels.get(vertex)
        return label.c1 if label is not None else float("inf")

    def tpath_edge_count(self, vertex: int) -> int:
        """How many edges of the chosen backward path are covered by T-paths."""
        label = self.labels.get(vertex)
        return label.c2 if label is not None else 0

    def reachable_vertices(self) -> set[int]:
        return {v for v, label in self.labels.items() if label.c1 < float("inf")}


def _count_tpath_edges(element: WeightedElement) -> int:
    """``countEdges``: edges contributed by a T-path (0 for a plain edge)."""
    return element.cardinality if not element.is_edge() else 0


def build_pace_shortest_path_tree(
    pace_graph: PaceGraph, destination: int
) -> PaceShortestPathTree:
    """Algorithm 2: a shortest-path tree from ``destination`` using edges and T-paths."""
    network = pace_graph.network
    if not network.has_vertex(destination):
        raise UnknownVertexError(f"unknown destination vertex {destination}")

    labels: dict[int, SpTreeLabel] = {
        vertex: SpTreeLabel(vertex=vertex, c1=float("inf"), c2=0, parent=None, via=None)
        for vertex in network.vertex_ids()
    }
    labels[destination].c1 = 0.0

    heap: list[tuple[float, int, int]] = [(0.0, destination, 0)]
    counter = 0
    while heap:
        c1, vertex, _ = heapq.heappop(heap)
        label = labels[vertex]
        if c1 > label.c1:
            continue  # stale queue entry
        # Expand every incoming element: traversing it backwards reaches its source vertex.
        for element in pace_graph.incoming_elements(vertex):
            neighbour = element.source
            if neighbour == destination:
                continue
            candidate_c1 = label.c1 + element.min_cost
            candidate_c2 = label.c2 + _count_tpath_edges(element)
            current = labels[neighbour]

            better_c1 = candidate_c1 < current.c1
            better_c2 = candidate_c2 > current.c2
            worse_c1 = candidate_c1 > current.c1
            worse_c2 = candidate_c2 < current.c2

            update = False
            if not worse_c1 and not worse_c2 and (better_c1 or better_c2):
                # DOMINATION: the candidate label is at least as good in both criteria.
                update = True
            elif (better_c1 and worse_c2) or (worse_c1 and better_c2):
                # NON-DOMINATION: compare the underlying road paths.
                old_path = current.forward_edges(labels)
                new_path = tuple(element.path.edges) + labels[vertex].forward_edges(labels)
                if old_path == new_path:
                    update = candidate_c2 > current.c2
                else:
                    update = candidate_c1 < current.c1
            if update:
                current.c1 = candidate_c1
                current.c2 = candidate_c2
                current.parent = vertex
                current.via = element
                counter += 1
                heapq.heappush(heap, (candidate_c1, neighbour, counter))

    return PaceShortestPathTree(destination=destination, labels=labels)
