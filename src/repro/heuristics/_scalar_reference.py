"""Scalar reference implementation of the Eq. 5 heuristic-table builder.

This module preserves the original pure-Python semantics of
:func:`repro.heuristics.budget.build_heuristic_table` — one Bellman cell at a
time: per budget column, per outgoing element, per support point — from before
the vectorized NumPy rewrite.  It exists for two reasons:

* the property-based tests in ``tests/test_heuristic_reference.py`` check
  that the vectorized kernel agrees with this (much simpler,
  obviously-correct) implementation on random graphs, both grid roundings,
  fractional ``δ`` grids and cyclic graphs, and
* the micro-benchmark in ``benchmarks/test_heuristic_build_bench.py``
  measures the vectorized kernel's speed-up against it on a synthetic
  city-scale build.

Like the vectorized builder it performs Gauss–Seidel sweeps in increasing
``getMin`` order; ``config.sweeps`` fixes the number of passes, and
``config.sweeps=None`` keeps sweeping until a full pass changes nothing (the
fixpoint the dirty-worklist builder converges to).

It is deliberately *not* exported from :mod:`repro.heuristics`: production
code must use :func:`repro.heuristics.budget.build_heuristic_table`.
"""

from __future__ import annotations

from repro.heuristics.binary import BinaryHeuristic, PaceBinaryHeuristic
from repro.heuristics.tables import HeuristicRow, HeuristicTable

__all__ = ["build_heuristic_table_scalar"]

_ONE = 1.0 - 1e-9

#: Safety cap for ``sweeps=None``; monotone tightening stabilises long before.
_CONVERGENCE_SWEEP_CAP = 10_000


def build_heuristic_table_scalar(
    graph,
    destination: int,
    config=None,
    *,
    binary: BinaryHeuristic | None = None,
) -> HeuristicTable:
    """The seed's cell-at-a-time Eq. 5 builder, kept as a reference oracle."""
    from repro.heuristics.budget import BudgetHeuristicConfig

    config = config or BudgetHeuristicConfig()
    config.validate()
    binary = binary or PaceBinaryHeuristic(
        graph if not hasattr(graph, "pace_graph") else graph.pace_graph, destination
    )
    eta = config.eta
    delta = config.delta
    table = HeuristicTable(destination=destination, delta=delta, eta=eta)

    network = graph.network
    # Destination row: probability 1 for every budget (second observation in the paper).
    table.set_row(destination, HeuristicRow(first_index=1, values=()))

    # Process vertices from the destination outwards (by increasing getMin); this is the
    # FIFO expansion of Algorithm 3 collapsed into a deterministic order, so that most
    # successor rows already exist when a row is computed.
    reachable = [
        (binary.min_cost(v), v)
        for v in network.vertex_ids()
        if v != destination and binary.min_cost(v) < float("inf")
    ]
    reachable.sort()

    def value_of(vertex: int, budget: float) -> float:
        """U(vertex, budget) from the table, falling back to the binary bound."""
        if vertex == destination:
            # Arriving exactly on budget counts (Prob(cost <= B)), so 0 remaining is fine.
            return 1.0 if budget >= 0 else 0.0
        if budget <= 0:
            return 0.0
        row = table.rows.get(vertex)
        if row is None:
            return binary.probability(vertex, budget)
        column = min(table.column_for(budget, rounding=config.grid_rounding), eta)
        return row.value_at_column(column)

    def compute_row(vertex: int) -> HeuristicRow:
        """One application of Eq. 5 for every budget column of ``vertex`` (Algorithm 4)."""
        get_min = binary.min_cost(vertex)
        first_index = max(1, table.column_for(get_min))
        elements = graph.outgoing_elements(vertex)
        values: list[float] = []
        for column in range(first_index, eta + 1):
            budget = column * delta
            best = 0.0
            for element in elements:
                acc = 0.0
                for cost, probability in element.distribution.items():
                    remaining = budget - cost
                    if remaining < 0:
                        continue
                    acc += probability * value_of(element.target, remaining)
                if acc > best:
                    best = acc
                    if best >= _ONE:
                        break
            values.append(min(best, 1.0))
            if best >= _ONE:
                break
        return HeuristicRow(first_index=first_index, values=tuple(values))

    max_sweeps = config.sweeps if config.sweeps is not None else _CONVERGENCE_SWEEP_CAP
    sweeps_done = 0
    for _ in range(max_sweeps):
        changed = False
        for _, vertex in reachable:
            row = compute_row(vertex)
            if table.rows.get(vertex) != row:
                changed = True
            table.set_row(vertex, row)
        sweeps_done += 1
        if config.sweeps is None and not changed:
            break
    table.sweeps_performed = sweeps_done
    return table
