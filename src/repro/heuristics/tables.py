"""Compact storage of budget-specific heuristic tables.

A heuristic table (Section 3.3.1) has one row per vertex and one column per
budget value ``δ, 2δ, ..., ηδ``.  The paper observes that each row is 0 up to
some budget ``l`` and 1 from some budget ``s`` onwards, so only the cells in
between need to be stored.  :class:`HeuristicRow` implements exactly that
compressed representation and :class:`HeuristicTable` the per-destination
collection of rows.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field

from repro.core.errors import HeuristicError

__all__ = ["HeuristicRow", "HeuristicTable"]


@dataclass(frozen=True)
class HeuristicRow:
    """One compressed row ``U(v, ·)`` of a heuristic table.

    ``first_index`` is the 1-based column of the first stored value (the
    column of budget ``l``); columns before it are 0, columns after the last
    stored value are 1.
    """

    first_index: int
    values: tuple[float, ...]

    def value_at_column(self, column: int) -> float:
        """``U(v, column * δ)`` for a 1-based column index."""
        if column < self.first_index:
            return 0.0
        offset = column - self.first_index
        if offset < len(self.values):
            return self.values[offset]
        return 1.0

    def storage_cells(self) -> int:
        """The number of explicitly stored cells."""
        return len(self.values)


@dataclass
class HeuristicTable:
    """All rows of the budget-specific heuristic for one destination."""

    destination: int
    delta: float
    eta: int
    rows: dict[int, HeuristicRow] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise HeuristicError("delta must be positive")
        if self.eta < 1:
            raise HeuristicError("eta must be at least 1")

    @property
    def max_budget(self) -> float:
        """The largest budget represented by the table, ``η · δ``."""
        return self.eta * self.delta

    def column_for(self, budget: float, *, rounding: str = "ceil") -> int:
        """The column used to answer a query for ``budget``.

        ``rounding="ceil"`` maps to the smallest grid value >= ``budget``:
        because rows are non-decreasing in the budget this never
        under-estimates ``U``, so admissibility is preserved for budgets
        between grid points.  ``rounding="floor"`` maps to the largest grid
        value <= ``budget``, which is how the paper's worked example
        (Table 4) evaluates the recursion and gives tighter (but potentially
        slightly under-estimating) values.
        """
        if budget <= 0:
            return 0
        if rounding == "floor":
            return int(budget // self.delta)
        return max(1, math.ceil(budget / self.delta - 1e-12))

    def set_row(self, vertex: int, row: HeuristicRow) -> None:
        self.rows[vertex] = row

    def value(self, vertex: int, budget: float, *, rounding: str = "ceil") -> float:
        """``U(vertex, budget)`` with the selected grid rounding."""
        if budget < 0:
            return 0.0
        if vertex == self.destination:
            return 1.0
        if budget <= 0:
            return 0.0
        row = self.rows.get(vertex)
        if row is None:
            # Unknown vertex: fall back to the admissible (but useless) bound of 1.
            return 1.0
        column = self.column_for(budget, rounding=rounding)
        if column > self.eta:
            column = self.eta
        return row.value_at_column(column)

    def storage_cells(self) -> int:
        """Total number of explicitly stored cells across all rows."""
        return sum(row.storage_cells() for row in self.rows.values())

    def storage_bytes(self) -> int:
        """Approximate in-memory size of the table (used for Fig. 12 / Table 9)."""
        cells = self.storage_cells()
        per_cell = sys.getsizeof(1.0)
        overhead = sum(sys.getsizeof(row) for row in self.rows.values())
        return cells * per_cell + overhead + sys.getsizeof(self.rows)
