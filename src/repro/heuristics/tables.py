"""Compact, array-backed storage of budget-specific heuristic tables.

A heuristic table (Section 3.3.1) has one row per vertex and one column per
budget value ``δ, 2δ, ..., ηδ``.  The paper observes that each row is 0 up to
some budget ``l`` and 1 from some budget ``s`` onwards, so only the cells in
between need to be stored.  :class:`HeuristicRow` implements exactly that
compressed representation and :class:`HeuristicTable` the per-destination
collection of rows.

Rows are backed by contiguous ``float64`` NumPy arrays rather than Python
tuples: the Eq. 5 Bellman kernel in :mod:`repro.heuristics.budget` reads whole
rows as dense vectors, online routing answers batched ``probability`` queries
with one gather per distribution support (:meth:`HeuristicRow.values_at_columns`
/ :meth:`HeuristicTable.values_at`), and ``storage_bytes`` accounts the actual
8 bytes per stored cell instead of boxed-float sizes.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import HeuristicError

__all__ = ["HeuristicRow", "HeuristicTable", "columns_for_budgets"]

#: Tolerance of the ceil column rounding (relative to the budget/δ ratio).
_CEIL_EPSILON = 1e-12
#: Tolerance of the floor column rounding.  Float division makes exact grid
#: multiples land just below the integer (``0.3 / 0.1 == 2.999...96``), so the
#: ratio is nudged up before flooring — the same fix ``BudgetHeuristicConfig.eta``
#: applies to the ceil direction.
_FLOOR_EPSILON = 1e-9


def columns_for_budgets(budgets, delta: float, *, rounding: str = "ceil") -> np.ndarray:
    """Vectorized :meth:`HeuristicTable.column_for` over an array of budgets.

    Returns one 0-based-for-zero / 1-based-for-grid column index per budget:
    non-positive budgets map to column 0, positive budgets to the grid column
    selected by ``rounding`` (see :meth:`HeuristicTable.column_for`).  The
    Bellman kernel uses this to translate whole ``budget - cost`` matrices
    into gather indices in one pass.
    """
    budgets = np.asarray(budgets, dtype=float)
    ratio = budgets / delta
    if rounding == "floor":
        columns = np.floor(ratio + _FLOOR_EPSILON)
    else:
        columns = np.maximum(1.0, np.ceil(ratio - _CEIL_EPSILON))
    return np.where(budgets <= 0, 0, columns.astype(np.int64))


@dataclass(frozen=True, eq=False)
class HeuristicRow:
    """One compressed row ``U(v, ·)`` of a heuristic table.

    ``first_index`` is the 1-based column of the first stored value (the
    column of budget ``l``); columns before it are 0, columns after the last
    stored value are 1.  ``values`` is kept as a contiguous, read-only
    ``float64`` array so whole rows can be read vectorized.
    """

    first_index: int
    values: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.values, dtype=float)
        if array is self.values:
            # The caller's own array: copy before freezing, so constructing a
            # row never turns someone else's buffer read-only behind their back.
            array = array.copy()
        array = np.ascontiguousarray(array)
        if array.ndim != 1:
            raise HeuristicError("row values must be a one-dimensional sequence")
        array.setflags(write=False)
        object.__setattr__(self, "values", array)
        object.__setattr__(self, "_padded", None)
        object.__setattr__(self, "_scalar_cells", None)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeuristicRow):
            return NotImplemented
        return self.first_index == other.first_index and np.array_equal(self.values, other.values)

    def __hash__(self) -> int:
        return hash((self.first_index, self.values.tobytes()))

    def value_at_column(self, column: int) -> float:
        """``U(v, column * δ)`` for a 1-based column index."""
        offset = column - self.first_index
        if offset < 0:
            return 0.0
        cells = self._scalar_cells
        if cells is None:
            # Cached plain-float tuple: scalar lookups (the Bellman head and
            # single probability queries) read rows many times, and tuple
            # indexing is an order of magnitude cheaper than boxing one
            # ndarray element per call.
            cells = tuple(self.values.tolist())
            object.__setattr__(self, "_scalar_cells", cells)
        if offset < len(cells):
            return cells[offset]
        return 1.0

    def values_at_columns(self, columns) -> np.ndarray:
        """Vectorized :meth:`value_at_column` over an array of column indices."""
        padded = self._padded
        if padded is None:
            # Stored cells followed by the implicit 1.0 tail: one clipped
            # gather answers any batch of column lookups.  Built lazily —
            # only query-time lookups need it, not the table builder.
            padded = np.concatenate((self.values, [1.0]))
            padded.setflags(write=False)
            object.__setattr__(self, "_padded", padded)
        offsets = np.asarray(columns, dtype=np.int64) - self.first_index
        gathered = padded[np.clip(offsets, 0, self.values.size)]
        return np.where(offsets < 0, 0.0, gathered)

    def dense(self, eta: int) -> np.ndarray:
        """The row as a dense vector over columns ``0..eta`` (0s, cells, 1s).

        Column 0 (budget 0) is always 0 for a non-destination row, so
        non-positive residual budgets gather 0.  This is the reference
        expansion (used by tests and inspection); the Bellman kernel keeps
        its own dense mirror updated in place to avoid per-row allocations.
        """
        out = np.ones(eta + 1)
        out[: min(self.first_index, eta + 1)] = 0.0
        stored = min(self.values.size, max(0, eta + 1 - self.first_index))
        if stored > 0:
            out[self.first_index : self.first_index + stored] = self.values[:stored]
        return out

    def storage_cells(self) -> int:
        """The number of explicitly stored cells."""
        return int(self.values.size)


@dataclass
class HeuristicTable:
    """All rows of the budget-specific heuristic for one destination."""

    destination: int
    delta: float
    eta: int
    rows: dict[int, HeuristicRow] = field(default_factory=dict)
    #: Number of Bellman passes the builder performed (0 for loaded tables).
    sweeps_performed: int = 0
    #: Lazily flattened CSR mirror of ``rows`` for :meth:`values_at_many`
    #: (sorted vertex ids, first_index / cell-count per row, concatenated
    #: cells with a 1.0 sentinel terminating each row).  Invalidated by
    #: :meth:`set_row`; rebuilt on the next many-lookup.
    _flat: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise HeuristicError("delta must be positive")
        if self.eta < 1:
            raise HeuristicError("eta must be at least 1")

    @property
    def max_budget(self) -> float:
        """The largest budget represented by the table, ``η · δ``."""
        return self.eta * self.delta

    def column_for(self, budget: float, *, rounding: str = "ceil") -> int:
        """The column used to answer a query for ``budget``.

        ``rounding="ceil"`` maps to the smallest grid value >= ``budget``:
        because rows are non-decreasing in the budget this never
        under-estimates ``U``, so admissibility is preserved for budgets
        between grid points.  ``rounding="floor"`` maps to the largest grid
        value <= ``budget``, which is how the paper's worked example
        (Table 4) evaluates the recursion and gives tighter (but potentially
        slightly under-estimating) values.

        Both directions are computed from the rounded ``budget / delta``
        ratio; plain float ``//`` misfires on fractional grids
        (``0.3 // 0.1 == 2.0``) because exact grid multiples divide to just
        below the integer.
        """
        if budget <= 0:
            return 0
        if rounding == "floor":
            return math.floor(budget / self.delta + _FLOOR_EPSILON)
        return max(1, math.ceil(budget / self.delta - _CEIL_EPSILON))

    def set_row(self, vertex: int, row: HeuristicRow) -> None:
        self.rows[vertex] = row
        self._flat = None

    def value(self, vertex: int, budget: float, *, rounding: str = "ceil") -> float:
        """``U(vertex, budget)`` with the selected grid rounding."""
        if budget < 0:
            return 0.0
        if vertex == self.destination:
            return 1.0
        if budget <= 0:
            return 0.0
        row = self.rows.get(vertex)
        if row is None:
            # Unknown vertex: fall back to the admissible (but useless) bound of 1.
            return 1.0
        column = self.column_for(budget, rounding=rounding)
        if column > self.eta:
            column = self.eta
        return row.value_at_column(column)

    def values_at(self, vertex: int, budgets, *, rounding: str = "ceil") -> np.ndarray:
        """Vectorized :meth:`value` over an array of budgets (one vertex).

        This is the batch entry point ``maxProb`` uses: one call answers
        ``U(vertex, ·)`` for a whole distribution support instead of one
        Python-level lookup per cost outcome.
        """
        budgets = np.asarray(budgets, dtype=float)
        if vertex == self.destination:
            return np.where(budgets >= 0, 1.0, 0.0)
        row = self.rows.get(vertex)
        if row is None:
            return np.where(budgets > 0, 1.0, 0.0)
        columns = np.minimum(columns_for_budgets(budgets, self.delta, rounding=rounding), self.eta)
        return np.where(budgets > 0, row.values_at_columns(columns), 0.0)

    def _flat_rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        flat = self._flat
        if flat is None:
            ids = np.sort(np.fromiter(self.rows.keys(), dtype=np.int64, count=len(self.rows)))
            first = np.empty(len(ids), dtype=np.int64)
            sizes = np.empty(len(ids), dtype=np.int64)
            cells: list[np.ndarray] = []
            for position, vertex in enumerate(ids.tolist()):
                row = self.rows[vertex]
                first[position] = row.first_index
                sizes[position] = row.values.size
                cells.append(row.values)
                # Per-row sentinel: gathers past the stored cells read the
                # implicit 1.0 tail, exactly like HeuristicRow's padded array.
                cells.append(np.ones(1))
            starts = np.zeros(len(ids) + 1, dtype=np.int64)
            np.cumsum(sizes + 1, out=starts[1:])
            values = np.concatenate(cells) if cells else np.empty(0)
            flat = (ids, first, sizes, starts[:-1], values)
            self._flat = flat
        return flat

    def values_at_many(self, vertices, budgets, *, rounding: str = "ceil") -> np.ndarray:
        """Vectorized :meth:`value` over paired (vertex, budget) arrays.

        The segmented analogue of :meth:`values_at`: one call answers
        ``U(v_k, x_k)`` for every pair, which is how the batched frontier
        kernel prices the concatenated supports of a whole successor slice.
        Bitwise identical to looping :meth:`values_at` per vertex.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        budgets = np.asarray(budgets, dtype=float)
        ids, first, sizes, starts, flat_values = self._flat_rows()
        columns = np.minimum(columns_for_budgets(budgets, self.delta, rounding=rounding), self.eta)
        if len(ids) == 0:
            found = np.zeros(len(vertices), dtype=bool)
            gathered = np.zeros(len(vertices))
        else:
            positions = np.searchsorted(ids, vertices)
            clipped = np.minimum(positions, len(ids) - 1)
            found = ids[clipped] == vertices
            offsets = columns - first[clipped]
            gathered = flat_values[starts[clipped] + np.clip(offsets, 0, sizes[clipped])]
            gathered = np.where(offsets < 0, 0.0, gathered)
        result = np.where(budgets > 0, gathered, 0.0)
        # Missing rows answer the admissible bound of 1 for positive budgets;
        # the destination row answers 1 for any non-negative budget.
        result = np.where(~found & (budgets > 0), 1.0, result)
        return np.where(vertices == self.destination, np.where(budgets >= 0, 1.0, 0.0), result)

    def storage_cells(self) -> int:
        """Total number of explicitly stored cells across all rows."""
        return sum(row.storage_cells() for row in self.rows.values())

    def storage_bytes(self) -> int:
        """In-memory size of the table (used for Fig. 12 / Table 9).

        Stored cells are contiguous ``float64`` (8 bytes each); every row
        additionally pays its array header and ``first_index`` bookkeeping.
        """
        cells = sum(row.values.nbytes for row in self.rows.values())
        per_row_overhead = 48  # ndarray header + first_index + dataclass slots
        return cells + per_row_overhead * len(self.rows) + sys.getsizeof(self.rows)
