"""Budget-specific heuristic tables (Section 3.3, Algorithms 3 and 4).

The budget-specific heuristic refines the binary heuristic by estimating, for
every vertex ``v`` and every budget ``x`` on a grid ``δ, 2δ, ..., ηδ``, an
admissible upper bound ``U(v, x)`` on the probability of reaching the
destination within ``x``:

    U(v, x) = max over outgoing elements <v, z> of
              sum_c  W(<v, z>).pdf(c) · U(z, x - c)            (Eq. 5)

where ``<v, z>`` may be an edge or a T-path.  The table is built backwards
from the destination (whose row is identically 1) with the two observations
the paper exploits: every row is 0 below the budget ``l`` implied by
``v.getMin()`` and 1 from the first budget ``s`` where the maximum reaches 1,
so only the cells in between are computed and stored.

Admissibility is maintained throughout: rows that have not been computed yet
are read through the binary heuristic (an upper bound), and every Bellman
evaluation of Eq. 5 applied to upper bounds yields an upper bound.  Because
real road networks contain cycles, the builder performs additional sweeps
that monotonically tighten the table without ever dropping below the true
probabilities.

**Vectorized Bellman kernel.**  :func:`build_heuristic_table` evaluates Eq. 5
for *all* budget columns of a vertex at once instead of cell by cell.  For
every outgoing element the builder precomputes, once per build,

* the gather matrix ``cols[k, j] = column_of(j·δ − c_k)`` mapping each
  (support point, budget column) pair to the successor row cell it reads,
* the constant contribution vector for elements whose target is the
  destination (``Σ_k p_k · [j·δ ≥ c_k]``), and
* the constant fallback vector used while the target row does not exist yet
  (the binary bound evaluated at the exact residual ``j·δ − c_k``).

One application of Eq. 5 to a vertex row is then, per element, a single fancy
gather of the target's stored row followed by a pdf-weighted mat-vec, and the
element maximum plus the 0/1 saturation trimming back to the compressed
``l``/``s`` form are NumPy reductions.

**Band-compressed working memory.**  Gathers read the successor rows through
a *mirror* abstraction.  The default :class:`_BandMirror` answers them
straight from each row's compressed ``l``/``s`` band (0 below ``l``, the
stored cells, an implicit 1 tail), lazily materialising one small padded
array per row on first read — so a build's working memory scales with the
*stored band cells*, not with ``V × η``.  The pre-refactor dense
``V × (η+1)`` float64 matrix (~400 MB at 100k vertices × η≈500, which is
what kept country-scale grids out of reach) survives as :class:`_DenseMirror`
purely as the measurable baseline: both mirrors produce identical tables
(``benchmarks/test_artifact_v2_bench.py`` asserts the memory gap,
``tests/test_heuristic_reference.py`` the equality).

Sweeping is organised as a
Gauss–Seidel *dirty worklist* over vertices in increasing ``getMin`` order:
after the first full pass only rows whose successors changed are re-swept,
and the build stops as soon as a pass is a no-op — safe because Eq. 5 is
monotone, so re-evaluating a row whose inputs did not change cannot change
it.  ``BudgetHeuristicConfig.sweeps`` caps the number of passes
(``sweeps=None`` runs to the fixpoint).  The pre-rewrite cell-at-a-time
builder is preserved in :mod:`repro.heuristics._scalar_reference` as the
property-test oracle and benchmark baseline.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError, HeuristicError
from repro.heuristics.base import Heuristic
from repro.heuristics.binary import BinaryHeuristic, PaceBinaryHeuristic
from repro.heuristics.tables import (
    _CEIL_EPSILON,
    _FLOOR_EPSILON,
    HeuristicRow,
    HeuristicTable,
    columns_for_budgets,
)

__all__ = ["BudgetHeuristicConfig", "BudgetSpecificHeuristic", "build_heuristic_table"]

_ONE = 1.0 - 1e-9

#: Safety cap for ``sweeps=None``; monotone tightening stabilises long before.
_CONVERGENCE_SWEEP_CAP = 10_000


@dataclass(frozen=True)
class BudgetHeuristicConfig:
    """Parameters of the budget-specific heuristic.

    ``delta`` is the budget granularity (the paper's ``δ``, default 60),
    ``max_budget`` the largest budget the table must answer (the paper uses
    5 000 seconds), and ``sweeps`` the maximum number of backward passes over
    the vertices (the first pass reproduces Algorithms 3–4; additional passes
    tighten rows affected by cycles).  The builder stops early once a pass
    changes nothing; ``sweeps=None`` removes the cap entirely and runs the
    dirty worklist to its fixpoint.
    """

    delta: float = 60.0
    max_budget: float = 5000.0
    sweeps: int | None = 2
    grid_rounding: str = "ceil"

    def validate(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError("delta must be positive")
        if self.max_budget < self.delta:
            raise ConfigurationError("max_budget must be at least delta")
        if self.sweeps is not None and self.sweeps < 1:
            raise ConfigurationError("at least one sweep is required")
        if self.grid_rounding not in ("ceil", "floor"):
            raise ConfigurationError("grid_rounding must be 'ceil' or 'floor'")

    @property
    def eta(self) -> int:
        """The number of columns of the heuristic table.

        ``eta`` is the smallest integer with ``eta * delta >= max_budget``.
        Computed from the rounded ratio rather than float ``//`` / ``%``,
        which misfire on fractional grids: ``max_budget=0.1+0.2, delta=0.1``
        has ``max_budget % delta == 4e-17`` and would grow a spurious fourth
        column.
        """
        ratio = self.max_budget / self.delta
        return max(1, math.ceil(ratio - 1e-9))


#: Rows saturate to 1 after a few stored cells on real grids (that is the
#: point of the ``l``/``s`` compression).  Rows expected to saturate within
#: ``_SCALAR_HEAD`` columns are therefore evaluated with plain scalar loops —
#: below that size NumPy's fixed per-call overhead loses to the seed's triple
#: loop, the same crossover the distribution kernel handles with its
#: ``VECTORIZE_THRESHOLD``.  The expectation comes from the row's previous
#: stored band (or, on the first sweep, the cost spread of its outgoing
#: elements relative to δ); rows expected to be wide — fine grids over wide
#: distributions, the expensive corner of Fig. 12 — run as vectorized column
#: blocks that double in size.  Either path stops at the first saturated
#: column, and both paths share the memoized per-element block data.
_SCALAR_HEAD = 4
_FIRST_BLOCK = 8


class _ElementKernel:
    """Per-element state of the Eq. 5 evaluation.

    ``target`` is ``None`` when the element ends at the destination (its
    contribution is a constant in the budget column).  ``support``/``weights``
    are the plain-float tuples the scalar head iterates; ``costs``/``probs``
    the arrays the vectorized tail reads.  Block data — the gather matrix
    ``cols[k, j] = column_of(j·δ − c_k)``, the constant destination
    contribution and the binary fallback used while the target row does not
    exist — is computed on first visit of each column block and memoized, so
    elements of rows that saturate early never materialise the full
    ``support × eta`` matrices.
    """

    __slots__ = ("target", "distribution", "support", "weights", "min_cost_target", "blocks")

    def __init__(self, target, distribution, min_cost_target):
        self.target = target
        self.distribution = distribution
        self.support = distribution.support
        self.weights = distribution.probabilities
        self.min_cost_target = min_cost_target
        self.blocks: list = []

    @property
    def costs(self):
        return self.distribution.values_array

    @property
    def probs(self):
        return self.distribution.probabilities_array


class _BandMirror:
    """Band-compressed working view of U: memory scales with stored band cells.

    Per row it keeps, lazily on first gather, a padded copy of the stored
    cells framed by the implicit constants — ``[0.0, cells..., 1.0]``.  Rows'
    ``first_index`` values never change within a build, so :meth:`prepare`
    bakes the band shift and the lower clip into the memoized per-element
    gather matrices once; a gather is then one upper clip (the padded length
    tracks the band as it grows) plus one fancy-index.  Columns below the
    band land on the leading 0 (budgets under ``l``), columns above on the
    trailing 1 (budget ``s`` reached).  This replaces the dense ``V × (η+1)``
    float64 matrix the builder used to allocate up front, which is what
    bounded build memory at country scale (see the module docstring).
    """

    __slots__ = ("_first", "_cells", "_padded")

    def __init__(self, n: int, eta: int, first_index: np.ndarray):
        self._first = first_index
        self._cells: list = [None] * n
        self._padded: list = [None] * n

    def prepare(self, position: int, columns: np.ndarray) -> np.ndarray:
        """Translate a grid-column matrix into memoizable band offsets."""
        return np.maximum(columns - (int(self._first[position]) - 1), 0)

    def update(self, position: int, row: HeuristicRow) -> None:
        self._cells[position] = row.values
        self._padded[position] = None  # rebuilt lazily on the next gather

    def gather(self, position: int, offsets: np.ndarray) -> np.ndarray:
        padded = self._padded[position]
        if padded is None:
            cells = self._cells[position]
            padded = np.empty(cells.size + 2)
            padded[0] = 0.0
            padded[1:-1] = cells
            padded[-1] = 1.0
            self._padded[position] = padded
        return padded[np.minimum(offsets, padded.size - 1)]


class _DenseMirror:
    """The pre-refactor dense U working matrix, O(V × (η+1)) float64.

    Kept solely as the measurable baseline for the band-compressed mirror
    (identical results, strictly more memory); nothing in the serving path
    uses it.
    """

    __slots__ = ("_dense", "_eta")

    def __init__(self, n: int, eta: int, first_index: np.ndarray):
        self._dense = np.zeros((n, eta + 1))
        self._eta = eta

    def prepare(self, position: int, columns: np.ndarray) -> np.ndarray:
        return columns

    def update(self, position: int, row: HeuristicRow) -> None:
        dense_row = self._dense[position]
        first_index = row.first_index
        stored = min(row.values.size, max(0, self._eta + 1 - first_index))
        dense_row[: min(first_index, self._eta + 1)] = 0.0
        dense_row[first_index : first_index + stored] = row.values[:stored]
        dense_row[first_index + stored :] = 1.0

    def gather(self, position: int, columns: np.ndarray) -> np.ndarray:
        return self._dense[position][columns]


_MIRRORS = {"band": _BandMirror, "dense": _DenseMirror}


def build_heuristic_table(
    graph,
    destination: int,
    config: BudgetHeuristicConfig | None = None,
    *,
    binary: BinaryHeuristic | None = None,
    mirror: str = "band",
) -> HeuristicTable:
    """Build the heuristic table for one destination (Algorithms 3 and 4).

    ``graph`` is any PACE-like graph exposing ``outgoing_elements`` /
    ``network`` (a :class:`~repro.core.pace_graph.PaceGraph` or an
    :class:`~repro.vpaths.updated_graph.UpdatedPaceGraph`).  Eq. 5 is
    evaluated with the batched Bellman kernel described in the module
    docstring; results match the scalar reference builder sweep for sweep.
    ``mirror`` selects the working-memory structure for successor-row reads:
    ``"band"`` (the default — memory proportional to the stored band cells)
    or ``"dense"`` (the historical ``V × (η+1)`` matrix, retained as the
    benchmark baseline; results are identical).
    """
    config = config or BudgetHeuristicConfig()
    config.validate()
    if mirror not in _MIRRORS:
        raise ConfigurationError(f"mirror must be one of {sorted(_MIRRORS)}, got {mirror!r}")
    binary = binary or PaceBinaryHeuristic(
        graph if not hasattr(graph, "pace_graph") else graph.pace_graph, destination
    )
    eta = config.eta
    delta = config.delta
    rounding = config.grid_rounding
    table = HeuristicTable(destination=destination, delta=delta, eta=eta)

    network = graph.network
    # Destination row: probability 1 for every budget (second observation in the paper).
    table.set_row(destination, HeuristicRow(first_index=1, values=()))

    # Process vertices from the destination outwards (by increasing getMin); this is the
    # FIFO expansion of Algorithm 3 collapsed into a deterministic order, so that most
    # successor rows already exist when a row is computed.
    reachable = [
        (binary.min_cost(v), v)
        for v in network.vertex_ids()
        if v != destination and binary.min_cost(v) < float("inf")
    ]
    reachable.sort()
    order = [vertex for _, vertex in reachable]
    index_of = {vertex: position for position, vertex in enumerate(order)}
    n = len(order)
    if n == 0:
        table.sweeps_performed = 0
        return table

    #: Budgets of the grid columns 1..eta, exactly as the scalar loop computes them.
    budgets = np.arange(1, eta + 1) * delta

    # ---------------------------------------------------------------- #
    # Per-element kernels (cost-column offsets and pdf weights)
    # ---------------------------------------------------------------- #
    kernels: list[list[_ElementKernel]] = []
    first_index_of = np.empty(n, dtype=np.int64)
    predecessors: list[set[int]] = [set() for _ in range(n)]
    for position, vertex in enumerate(order):
        first_index_of[position] = max(1, table.column_for(binary.min_cost(vertex)))
        vertex_kernels: list[_ElementKernel] = []
        for element in graph.outgoing_elements(vertex):
            target = element.target
            distribution = element.distribution
            if target == destination:
                vertex_kernels.append(_ElementKernel(None, distribution, 0.0))
                continue
            target_position = index_of.get(target)
            if target_position is None:
                # The destination is unreachable from the target: the element
                # contributes 0 at every budget, forever.
                continue
            vertex_kernels.append(
                _ElementKernel(target_position, distribution, binary.min_cost(target))
            )
            predecessors[target_position].add(position)
        kernels.append(vertex_kernels)
    #: First-sweep estimate of each row's band width in columns: a row stays
    #: below 1 at least across the cost spread of its outgoing elements.
    band_estimate = [
        max(
            (
                (kernel.support[-1] - kernel.support[0]) / delta
                for kernel in vertex_kernels
            ),
            default=0.0,
        )
        for vertex_kernels in kernels
    ]

    def element_block(kernel: _ElementKernel, block_index: int, lo: int, hi: int):
        """Memoized block data of one element for grid columns ``lo+1..hi`` (0-based slice).

        Blocks are visited strictly in order (``compute_values`` walks them
        from 0), so at most the next block is missing; computing a later one
        first would silently backfill earlier slots with the wrong range.
        """
        assert len(kernel.blocks) >= block_index, "column blocks must be visited in order"
        if len(kernel.blocks) == block_index:
            remaining = budgets[None, lo:hi] - kernel.costs[:, None]
            if kernel.target is None:
                # Destination target: U is 1 whenever any residual budget remains.
                kernel.blocks.append(kernel.probs @ (remaining >= 0.0))
            else:
                cols = np.minimum(
                    columns_for_budgets(remaining, delta, rounding=rounding), eta
                ).astype(np.int64, copy=False)
                # The binary fallback is only read while the target row does
                # not exist yet — rare, since successors (smaller getMin) are
                # swept first — so it is filled lazily on first use.  The
                # gather matrix is stored in the mirror's own representation
                # (band offsets or raw columns), fixed per build because
                # ``first_index`` is.
                kernel.blocks.append([u_mirror.prepare(kernel.target, cols), None])
        return kernel.blocks[block_index]

    # Working view of U for the vectorized gathers: band-compressed by
    # default (memory tracks the stored l/s bands), dense only as the
    # benchmark baseline.  The compressed rows themselves live in
    # ``row_objects`` (mirroring the table) for cheap scalar reads.
    u_mirror = _MIRRORS[mirror](n, eta, first_index_of)
    has_row = np.zeros(n, dtype=bool)
    row_objects: list[HeuristicRow | None] = [None] * n

    budget_list = budgets.tolist()
    if rounding == "floor":
        def scalar_column(residual: float) -> int:
            column = math.floor(residual / delta + _FLOOR_EPSILON)
            return column if column < eta else eta
    else:
        def scalar_column(residual: float) -> int:
            column = math.ceil(residual / delta - _CEIL_EPSILON)
            if column < 1:
                column = 1
            return column if column < eta else eta

    def compute_head(position: int, stop: int) -> tuple[list[float], bool]:
        """Seed-style scalar evaluation of the first few columns of a row."""
        vertex_kernels = kernels[position]
        values: list[float] = []
        saturated = False
        for index in range(int(first_index_of[position]) - 1, stop):
            budget = budget_list[index]
            best = 0.0
            for kernel in vertex_kernels:
                acc = 0.0
                target = kernel.target
                if target is None:
                    for cost, weight in zip(kernel.support, kernel.weights):
                        if budget >= cost:
                            acc += weight
                elif has_row[target]:
                    target_row = row_objects[target]
                    for cost, weight in zip(kernel.support, kernel.weights):
                        residual = budget - cost
                        if residual <= 0:
                            continue
                        acc += weight * target_row.value_at_column(scalar_column(residual))
                else:
                    min_cost_target = kernel.min_cost_target
                    for cost, weight in zip(kernel.support, kernel.weights):
                        residual = budget - cost
                        if residual > 0 and residual >= min_cost_target:
                            acc += weight
                if acc > best:
                    best = acc
                    if best >= _ONE:
                        break
            values.append(min(best, 1.0))
            if best >= _ONE:
                saturated = True
                break
        return values, saturated

    def compute_values(position: int) -> np.ndarray:
        """Eq. 5 for every stored budget column of a vertex.

        Size-adaptive like the distribution kernel: rows expected to be
        narrow — previous stored band within ``_SCALAR_HEAD`` cells, or on
        their first sweep an element cost spread within ``_SCALAR_HEAD``
        columns — start with a scalar head, below which NumPy's per-call
        overhead loses to plain loops.  Rows expected to be wide skip
        straight to the vectorized blocks.  Blocks stay aligned to the row's
        ``l`` bound regardless of the head, so their memoized gather matrices
        are shared between both paths; either way evaluation stops at the
        first saturated column, keeping the work proportional to the
        compressed band the row stores.
        """
        first_index = int(first_index_of[position])
        previous = row_objects[position]
        if previous is None:
            expected_narrow = band_estimate[position] <= _SCALAR_HEAD
        else:
            expected_narrow = previous.values.size <= _SCALAR_HEAD
        head_allow = _SCALAR_HEAD if expected_narrow else 0
        head_stop = min(eta, first_index - 1 + head_allow)
        head, saturated = compute_head(position, head_stop)
        if saturated or head_stop >= eta:
            return np.asarray(head)
        vertex_kernels = kernels[position]
        pieces: list[np.ndarray] = [np.asarray(head)] if head else []
        consumed = first_index - 1 + len(head)  # columns already evaluated
        lo = first_index - 1  # 0-based index into the 1..eta column range
        block_index = 0
        width = _FIRST_BLOCK
        while lo < eta:
            hi = min(eta, lo + width)
            best = np.zeros(hi - lo)
            for kernel in vertex_kernels:
                block = element_block(kernel, block_index, lo, hi)
                if kernel.target is None:
                    acc = block
                elif has_row[kernel.target]:
                    acc = kernel.probs @ u_mirror.gather(kernel.target, block[0])
                else:
                    acc = block[1]
                    if acc is None:
                        remaining = budgets[None, lo:hi] - kernel.costs[:, None]
                        acc = kernel.probs @ (
                            (remaining > 0) & (remaining >= kernel.min_cost_target)
                        )
                        block[1] = acc
                np.maximum(best, acc, out=best)
            np.minimum(best, 1.0, out=best)
            usable = best[consumed - lo :] if consumed > lo else best
            # 0/1 saturation trimming: stop the row at the first column whose
            # maximum saturates; later columns are implicitly 1 (budget ``s``).
            saturated_at = np.flatnonzero(usable >= _ONE)
            if saturated_at.size:
                pieces.append(usable[: saturated_at[0] + 1])
                break
            pieces.append(usable)
            consumed = hi
            lo = hi
            block_index += 1
            width *= 2
        if not pieces:
            return np.empty(0)
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    # ---------------------------------------------------------------- #
    # Gauss–Seidel sweeps over a dirty worklist
    # ---------------------------------------------------------------- #
    max_sweeps = config.sweeps if config.sweeps is not None else _CONVERGENCE_SWEEP_CAP
    dirty = np.ones(n, dtype=bool)
    next_dirty = np.zeros(n, dtype=bool)
    sweeps_done = 0
    while sweeps_done < max_sweeps and dirty.any():
        for position in range(n):
            if not dirty[position]:
                continue
            dirty[position] = False
            values = compute_values(position)
            previous = row_objects[position]
            if previous is not None and np.array_equal(previous.values, values):
                continue
            first_index = int(first_index_of[position])
            row = HeuristicRow(first_index=first_index, values=values)
            u_mirror.update(position, row)
            row_objects[position] = row
            has_row[position] = True
            table.set_row(order[position], row)
            for predecessor in predecessors[position]:
                # Predecessors later in the current pass pick the change up
                # immediately (Gauss–Seidel); earlier ones wait for the next.
                if predecessor > position:
                    dirty[predecessor] = True
                else:
                    next_dirty[predecessor] = True
        dirty, next_dirty = next_dirty, dirty
        next_dirty[:] = False
        sweeps_done += 1
    table.sweeps_performed = sweeps_done
    return table


class BudgetSpecificHeuristic(Heuristic):
    """The T-BS-δ heuristic: budget-specific probabilities from a pre-computed table."""

    def __init__(
        self,
        graph,
        destination: int,
        config: BudgetHeuristicConfig | None = None,
        *,
        binary: BinaryHeuristic | None = None,
    ):
        self._config = config or BudgetHeuristicConfig()
        self._config.validate()
        pace_graph = graph.pace_graph if hasattr(graph, "pace_graph") else graph
        self._binary = binary or PaceBinaryHeuristic(pace_graph, destination)
        start = time.perf_counter()
        self._table = build_heuristic_table(graph, destination, self._config, binary=self._binary)
        self._build_seconds = time.perf_counter() - start

    @classmethod
    def from_table(
        cls,
        table: HeuristicTable,
        *,
        binary: BinaryHeuristic,
        config: BudgetHeuristicConfig | None = None,
    ) -> "BudgetSpecificHeuristic":
        """Wrap an already built (e.g. persisted) table without rebuilding it.

        This is how :meth:`repro.routing.engine.RoutingEngine.prewarm` turns
        tables loaded from disk back into servable heuristics: online queries
        only need the table and the binary ``getMin`` map, so no Bellman sweep
        runs.
        """
        if binary.destination != table.destination:
            raise HeuristicError(
                f"binary heuristic destination {binary.destination} does not match "
                f"table destination {table.destination}"
            )
        self = object.__new__(cls)
        self._config = config or BudgetHeuristicConfig(
            delta=table.delta, max_budget=table.max_budget
        )
        self._config.validate()
        self._binary = binary
        self._table = table
        self._build_seconds = 0.0
        return self

    @property
    def destination(self) -> int:
        return self._table.destination

    @property
    def table(self) -> HeuristicTable:
        """The underlying heuristic table (exposed for inspection and storage accounting)."""
        return self._table

    @property
    def binary(self) -> BinaryHeuristic:
        """The binary heuristic supplying ``getMin`` (exposed for persistence)."""
        return self._binary

    @property
    def delta(self) -> float:
        return self._config.delta

    @property
    def grid_rounding(self) -> str:
        """How the table's cells were rounded onto the grid when built.

        ``"ceil"`` tables are admissible; ``"floor"`` tables (the paper's
        Table 4 mode) may slightly under-estimate and must not be served
        where admissibility is required.
        """
        return self._config.grid_rounding

    @property
    def build_seconds(self) -> float:
        """Wall-clock time spent building the table (Fig. 12 / Table 9)."""
        return self._build_seconds

    @property
    def sweeps_performed(self) -> int:
        """Bellman passes the dirty-worklist builder ran (0 for loaded tables)."""
        return self._table.sweeps_performed

    def min_cost(self, vertex: int) -> float:
        return self._binary.min_cost(vertex)

    def probability(self, vertex: int, remaining_budget: float) -> float:
        if vertex == self.destination:
            return 1.0 if remaining_budget >= 0 else 0.0
        if remaining_budget < self.min_cost(vertex):
            return 0.0
        # Online queries always round the residual budget up to the grid ("ceil"), which
        # keeps the heuristic admissible regardless of how the table itself was built.
        return self._table.value(vertex, remaining_budget, rounding="ceil")

    def probability_batch(self, vertex: int, budgets) -> np.ndarray:
        """Vectorized :meth:`probability` over an array of residual budgets."""
        budgets = np.asarray(budgets, dtype=float)
        if vertex == self.destination:
            return np.where(budgets >= 0, 1.0, 0.0)
        values = self._table.values_at(vertex, budgets, rounding="ceil")
        return np.where(budgets < self.min_cost(vertex), 0.0, values)

    def min_cost_many(self, vertices) -> np.ndarray:
        return self._binary.min_cost_many(vertices)

    def probability_many(self, vertices, budgets) -> np.ndarray:
        """Vectorized :meth:`probability` over paired (vertex, budget) arrays."""
        budgets = np.asarray(budgets, dtype=float)
        values = self._table.values_at_many(vertices, budgets, rounding="ceil")
        return np.where(budgets < self._binary.min_cost_many(vertices), 0.0, values)

    def storage_bytes(self) -> int:
        """Table storage plus the underlying binary heuristic's getMin values."""
        return self._table.storage_bytes() + self._binary.storage_bytes() + sys.getsizeof(self)
