"""Budget-specific heuristic tables (Section 3.3, Algorithms 3 and 4).

The budget-specific heuristic refines the binary heuristic by estimating, for
every vertex ``v`` and every budget ``x`` on a grid ``δ, 2δ, ..., ηδ``, an
admissible upper bound ``U(v, x)`` on the probability of reaching the
destination within ``x``:

    U(v, x) = max over outgoing elements <v, z> of
              sum_c  W(<v, z>).pdf(c) · U(z, x - c)            (Eq. 5)

where ``<v, z>`` may be an edge or a T-path.  The table is built backwards
from the destination (whose row is identically 1) with the two observations
the paper exploits: every row is 0 below the budget ``l`` implied by
``v.getMin()`` and 1 from the first budget ``s`` where the maximum reaches 1,
so only the cells in between are computed and stored.

Admissibility is maintained throughout: rows that have not been computed yet
are read through the binary heuristic (an upper bound), and every Bellman
evaluation of Eq. 5 applied to upper bounds yields an upper bound.  Because
real road networks contain cycles, the builder optionally performs additional
sweeps that monotonically tighten the table without ever dropping below the
true probabilities.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.heuristics.base import Heuristic
from repro.heuristics.binary import BinaryHeuristic, PaceBinaryHeuristic
from repro.heuristics.tables import HeuristicRow, HeuristicTable

__all__ = ["BudgetHeuristicConfig", "BudgetSpecificHeuristic", "build_heuristic_table"]

_ONE = 1.0 - 1e-9


@dataclass(frozen=True)
class BudgetHeuristicConfig:
    """Parameters of the budget-specific heuristic.

    ``delta`` is the budget granularity (the paper's ``δ``, default 60),
    ``max_budget`` the largest budget the table must answer (the paper uses
    5 000 seconds), and ``sweeps`` the number of backward passes over the
    vertices (the first pass reproduces Algorithms 3–4; additional passes
    tighten rows affected by cycles).
    """

    delta: float = 60.0
    max_budget: float = 5000.0
    sweeps: int = 2
    grid_rounding: str = "ceil"

    def validate(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError("delta must be positive")
        if self.max_budget < self.delta:
            raise ConfigurationError("max_budget must be at least delta")
        if self.sweeps < 1:
            raise ConfigurationError("at least one sweep is required")
        if self.grid_rounding not in ("ceil", "floor"):
            raise ConfigurationError("grid_rounding must be 'ceil' or 'floor'")

    @property
    def eta(self) -> int:
        """The number of columns of the heuristic table.

        ``eta`` is the smallest integer with ``eta * delta >= max_budget``.
        Computed from the rounded ratio rather than float ``//`` / ``%``,
        which misfire on fractional grids: ``max_budget=0.1+0.2, delta=0.1``
        has ``max_budget % delta == 4e-17`` and would grow a spurious fourth
        column.
        """
        ratio = self.max_budget / self.delta
        return max(1, math.ceil(ratio - 1e-9))


def build_heuristic_table(
    graph,
    destination: int,
    config: BudgetHeuristicConfig | None = None,
    *,
    binary: BinaryHeuristic | None = None,
) -> HeuristicTable:
    """Build the heuristic table for one destination (Algorithms 3 and 4).

    ``graph`` is any PACE-like graph exposing ``outgoing_elements`` /
    ``network`` (a :class:`~repro.core.pace_graph.PaceGraph` or an
    :class:`~repro.vpaths.updated_graph.UpdatedPaceGraph`).
    """
    config = config or BudgetHeuristicConfig()
    config.validate()
    binary = binary or PaceBinaryHeuristic(
        graph if not hasattr(graph, "pace_graph") else graph.pace_graph, destination
    )
    eta = config.eta
    delta = config.delta
    table = HeuristicTable(destination=destination, delta=delta, eta=eta)

    network = graph.network
    # Destination row: probability 1 for every budget (second observation in the paper).
    table.set_row(destination, HeuristicRow(first_index=1, values=()))

    # Process vertices from the destination outwards (by increasing getMin); this is the
    # FIFO expansion of Algorithm 3 collapsed into a deterministic order, so that most
    # successor rows already exist when a row is computed.
    reachable = [
        (binary.min_cost(v), v)
        for v in network.vertex_ids()
        if v != destination and binary.min_cost(v) < float("inf")
    ]
    reachable.sort()

    def value_of(vertex: int, budget: float) -> float:
        """U(vertex, budget) from the table, falling back to the binary bound."""
        if vertex == destination:
            # Arriving exactly on budget counts (Prob(cost <= B)), so 0 remaining is fine.
            return 1.0 if budget >= 0 else 0.0
        if budget <= 0:
            return 0.0
        row = table.rows.get(vertex)
        if row is None:
            return binary.probability(vertex, budget)
        column = min(table.column_for(budget, rounding=config.grid_rounding), eta)
        return row.value_at_column(column)

    def compute_row(vertex: int) -> HeuristicRow:
        """One application of Eq. 5 for every budget column of ``vertex`` (Algorithm 4)."""
        get_min = binary.min_cost(vertex)
        first_index = max(1, table.column_for(get_min))
        elements = graph.outgoing_elements(vertex)
        values: list[float] = []
        for column in range(first_index, eta + 1):
            budget = column * delta
            best = 0.0
            for element in elements:
                acc = 0.0
                for cost, probability in element.distribution.items():
                    remaining = budget - cost
                    if remaining < 0:
                        continue
                    acc += probability * value_of(element.target, remaining)
                if acc > best:
                    best = acc
                    if best >= _ONE:
                        break
            values.append(min(best, 1.0))
            if best >= _ONE:
                break
        return HeuristicRow(first_index=first_index, values=tuple(values))

    for _ in range(config.sweeps):
        for _, vertex in reachable:
            table.set_row(vertex, compute_row(vertex))
    return table


class BudgetSpecificHeuristic(Heuristic):
    """The T-BS-δ heuristic: budget-specific probabilities from a pre-computed table."""

    def __init__(
        self,
        graph,
        destination: int,
        config: BudgetHeuristicConfig | None = None,
        *,
        binary: BinaryHeuristic | None = None,
    ):
        self._config = config or BudgetHeuristicConfig()
        self._config.validate()
        pace_graph = graph.pace_graph if hasattr(graph, "pace_graph") else graph
        self._binary = binary or PaceBinaryHeuristic(pace_graph, destination)
        start = time.perf_counter()
        self._table = build_heuristic_table(graph, destination, self._config, binary=self._binary)
        self._build_seconds = time.perf_counter() - start

    @property
    def destination(self) -> int:
        return self._table.destination

    @property
    def table(self) -> HeuristicTable:
        """The underlying heuristic table (exposed for inspection and storage accounting)."""
        return self._table

    @property
    def delta(self) -> float:
        return self._config.delta

    @property
    def build_seconds(self) -> float:
        """Wall-clock time spent building the table (Fig. 12 / Table 9)."""
        return self._build_seconds

    def min_cost(self, vertex: int) -> float:
        return self._binary.min_cost(vertex)

    def probability(self, vertex: int, remaining_budget: float) -> float:
        if vertex == self.destination:
            return 1.0 if remaining_budget >= 0 else 0.0
        if remaining_budget < self.min_cost(vertex):
            return 0.0
        # Online queries always round the residual budget up to the grid ("ceil"), which
        # keeps the heuristic admissible regardless of how the table itself was built.
        return self._table.value(vertex, remaining_budget, rounding="ceil")

    def storage_bytes(self) -> int:
        """Table storage plus the underlying binary heuristic's getMin values."""
        return self._table.storage_bytes() + self._binary.storage_bytes() + sys.getsizeof(self)
