"""Admissible search heuristics: binary (T-B-*) and budget-specific (T-BS-δ)."""

from repro.heuristics.base import Heuristic, NoHeuristic, max_prob
from repro.heuristics.binary import (
    BinaryHeuristic,
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    PaceBinaryHeuristic,
)
from repro.heuristics.budget import (
    BudgetHeuristicConfig,
    BudgetSpecificHeuristic,
    build_heuristic_table,
)
from repro.heuristics.sptree import (
    PaceShortestPathTree,
    SpTreeLabel,
    build_pace_shortest_path_tree,
)
from repro.heuristics.tables import HeuristicRow, HeuristicTable

__all__ = [
    "Heuristic",
    "NoHeuristic",
    "max_prob",
    "BinaryHeuristic",
    "EuclideanBinaryHeuristic",
    "EdgeOnlyBinaryHeuristic",
    "PaceBinaryHeuristic",
    "BudgetHeuristicConfig",
    "BudgetSpecificHeuristic",
    "build_heuristic_table",
    "PaceShortestPathTree",
    "SpTreeLabel",
    "build_pace_shortest_path_tree",
    "HeuristicRow",
    "HeuristicTable",
]
