"""Heuristic interface shared by the routing algorithms.

A heuristic estimates, for an intermediate vertex ``v_i`` and a remaining
budget ``x``, the largest possible probability ``U(v_i, x)`` of reaching the
query destination within ``x`` cost units (Section 3.1).  Routing only relies
on two properties:

* **admissibility** — ``U`` never under-estimates the true maximum
  probability, so pruning and early termination stay correct, and
* a cheap lower bound ``getMin(v_i)`` on the cost of reaching the destination
  at all, used for budget pruning (``D(P).min + v.getMin() <= B``).

Three implementations exist: the trivial heuristic (used by T-None / V-None),
the binary heuristics (:mod:`repro.heuristics.binary`), and the
budget-specific heuristic tables (:mod:`repro.heuristics.budget`).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.distributions import Distribution

__all__ = ["Heuristic", "NoHeuristic", "max_prob", "max_prob_segments"]

#: Below this support size (and only for a single segment) the scalar
#: ``maxProb`` loop beats the fixed per-call overhead of the vectorized
#: lookup.  This lives next to :func:`max_prob_segments` — the one Eq. 3
#: implementation — and selects between its two arithmetically identical
#: evaluation strategies.
_BATCH_THRESHOLD = 8


class Heuristic(abc.ABC):
    """Destination-specific admissible estimate of reachability probabilities."""

    @property
    @abc.abstractmethod
    def destination(self) -> int:
        """The destination vertex this heuristic was built for."""

    @abc.abstractmethod
    def min_cost(self, vertex: int) -> float:
        """``v.getMin()``: a lower bound on the cost from ``vertex`` to the destination.

        Returns ``inf`` when the destination is unreachable from ``vertex``.
        """

    @abc.abstractmethod
    def probability(self, vertex: int, remaining_budget: float) -> float:
        """``U(vertex, x)``: an upper bound on the probability of arriving within ``x``."""

    def probability_batch(self, vertex: int, budgets) -> np.ndarray:
        """``U(vertex, ·)`` for a whole array of residual budgets.

        The default falls back to one :meth:`probability` call per budget;
        the table- and step-function-backed heuristics override it with a
        single vectorized lookup, which is what makes batched ``maxProb``
        evaluation cheap.
        """
        budgets = np.asarray(budgets, dtype=float)
        return np.array([self.probability(vertex, float(budget)) for budget in budgets])

    def min_cost_many(self, vertices) -> np.ndarray:
        """``getMin`` for a whole array of vertices.

        The default loops over :meth:`min_cost`; the binary heuristics
        override it with one sorted-array gather so the batched frontier
        kernel prices an entire successor slice in a single call.
        """
        return np.array([self.min_cost(int(vertex)) for vertex in np.asarray(vertices)])

    def probability_many(self, vertices, budgets) -> np.ndarray:
        """``U(v_k, x_k)`` for paired arrays of vertices and residual budgets.

        Unlike :meth:`probability_batch` (one vertex, many budgets) this
        answers one lookup per (vertex, budget) *pair*, which is what the
        segmented Eq. 3 kernel needs: the concatenated supports of many
        candidate distributions, each paired with its candidate's end vertex.
        The default loops; the concrete heuristics override it vectorized.
        """
        vertices = np.asarray(vertices)
        budgets = np.asarray(budgets, dtype=float)
        return np.array(
            [
                self.probability(int(vertex), float(budget))
                for vertex, budget in zip(vertices, budgets)
            ]
        )

    def storage_bytes(self) -> int:
        """Approximate storage needed to keep this heuristic in memory (for Tables 8–10)."""
        return 0


class NoHeuristic(Heuristic):
    """The trivial heuristic: everything looks reachable for free.

    Used by the baselines T-None and V-None; with it, ``maxProb`` degenerates
    to the probability of the candidate path itself, exactly the priority the
    existing PACE routing uses (Algorithm 1).
    """

    def __init__(self, destination: int):
        self._destination = destination

    @property
    def destination(self) -> int:
        return self._destination

    def min_cost(self, vertex: int) -> float:
        return 0.0

    def probability(self, vertex: int, remaining_budget: float) -> float:
        return 1.0 if remaining_budget >= 0 else 0.0

    def probability_batch(self, vertex: int, budgets) -> np.ndarray:
        budgets = np.asarray(budgets, dtype=float)
        return np.where(budgets >= 0, 1.0, 0.0)

    def min_cost_many(self, vertices) -> np.ndarray:
        return np.zeros(len(np.asarray(vertices)))

    def probability_many(self, vertices, budgets) -> np.ndarray:
        budgets = np.asarray(budgets, dtype=float)
        return np.where(budgets >= 0, 1.0, 0.0)


def max_prob_segments(
    values: np.ndarray,
    probabilities: np.ndarray,
    offsets: np.ndarray,
    vertices: np.ndarray,
    heuristic: Heuristic,
    budget: float,
) -> np.ndarray:
    """Eq. 3 over many candidate distributions at once — the one implementation.

    ``values`` / ``probabilities`` are the concatenated supports of the
    candidates' cost distributions, ``offsets`` the ``len(candidates) + 1``
    segment boundaries into them, and ``vertices[k]`` the end vertex of
    candidate ``k``.  Returns one ``maxProb`` per candidate.  Segments must be
    non-empty (a distribution always has at least one support point).

    Both strategies below — the scalar small-support one and the vectorized
    one — build the exact same per-outcome terms (infeasible outcomes, with
    residual budget < 0, contribute an exact ``0.0``) and reduce them through
    the *same* ``np.add.reduceat`` op, whose per-segment result depends only
    on the segment's contents (not on its offset, nor on the other segments).
    A hand-written sequential Python sum would NOT do: numpy's reduction
    loops are unrolled and may associate additions differently, which
    changes the last ulp.  So the scalar path, the single-candidate
    :func:`max_prob` wrapper and a whole-frontier batch all produce bitwise
    identical numbers.
    """
    count = len(offsets) - 1
    if count == 0:
        return np.empty(0)
    if count == 1 and offsets[1] - offsets[0] <= _BATCH_THRESHOLD:
        vertex = int(vertices[0])
        terms = np.empty(len(values))
        for index, (cost, probability) in enumerate(zip(values, probabilities)):
            remaining = budget - cost
            if remaining < 0:
                terms[index] = 0.0
            else:
                terms[index] = probability * heuristic.probability(vertex, float(remaining))
        return np.add.reduceat(terms, np.array([0], dtype=np.intp))
    remaining = budget - np.asarray(values, dtype=float)
    segment_vertices = np.repeat(np.asarray(vertices), np.diff(offsets))
    bounds = heuristic.probability_many(segment_vertices, remaining)
    terms = np.where(remaining < 0, 0.0, np.asarray(probabilities, dtype=float) * bounds)
    return np.add.reduceat(terms, np.asarray(offsets[:-1], dtype=np.intp))


def max_prob(distribution: Distribution, heuristic: Heuristic, vertex: int, budget: float) -> float:
    """Eq. 3: the admissible upper bound on the arrival probability of a candidate path.

    ``distribution`` is the cost distribution of the candidate path from the
    source to ``vertex``; the heuristic bounds the probability of covering the
    remaining distance within what is left of ``budget``.  A thin
    single-candidate wrapper over :func:`max_prob_segments`.
    """
    values = distribution.values_array
    result = max_prob_segments(
        values,
        distribution.probabilities_array,
        np.array([0, len(values)]),
        np.array([vertex]),
        heuristic,
        budget,
    )
    return float(result[0])
