"""Heuristic interface shared by the routing algorithms.

A heuristic estimates, for an intermediate vertex ``v_i`` and a remaining
budget ``x``, the largest possible probability ``U(v_i, x)`` of reaching the
query destination within ``x`` cost units (Section 3.1).  Routing only relies
on two properties:

* **admissibility** — ``U`` never under-estimates the true maximum
  probability, so pruning and early termination stay correct, and
* a cheap lower bound ``getMin(v_i)`` on the cost of reaching the destination
  at all, used for budget pruning (``D(P).min + v.getMin() <= B``).

Three implementations exist: the trivial heuristic (used by T-None / V-None),
the binary heuristics (:mod:`repro.heuristics.binary`), and the
budget-specific heuristic tables (:mod:`repro.heuristics.budget`).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.distributions import Distribution

__all__ = ["Heuristic", "NoHeuristic", "max_prob"]

#: Below this support size the scalar ``maxProb`` loop beats the fixed
#: per-call overhead of the vectorized batch lookup.
_BATCH_THRESHOLD = 8


class Heuristic(abc.ABC):
    """Destination-specific admissible estimate of reachability probabilities."""

    @property
    @abc.abstractmethod
    def destination(self) -> int:
        """The destination vertex this heuristic was built for."""

    @abc.abstractmethod
    def min_cost(self, vertex: int) -> float:
        """``v.getMin()``: a lower bound on the cost from ``vertex`` to the destination.

        Returns ``inf`` when the destination is unreachable from ``vertex``.
        """

    @abc.abstractmethod
    def probability(self, vertex: int, remaining_budget: float) -> float:
        """``U(vertex, x)``: an upper bound on the probability of arriving within ``x``."""

    def probability_batch(self, vertex: int, budgets) -> np.ndarray:
        """``U(vertex, ·)`` for a whole array of residual budgets.

        The default falls back to one :meth:`probability` call per budget;
        the table- and step-function-backed heuristics override it with a
        single vectorized lookup, which is what makes batched ``maxProb``
        evaluation cheap.
        """
        budgets = np.asarray(budgets, dtype=float)
        return np.array([self.probability(vertex, float(budget)) for budget in budgets])

    def storage_bytes(self) -> int:
        """Approximate storage needed to keep this heuristic in memory (for Tables 8–10)."""
        return 0


class NoHeuristic(Heuristic):
    """The trivial heuristic: everything looks reachable for free.

    Used by the baselines T-None and V-None; with it, ``maxProb`` degenerates
    to the probability of the candidate path itself, exactly the priority the
    existing PACE routing uses (Algorithm 1).
    """

    def __init__(self, destination: int):
        self._destination = destination

    @property
    def destination(self) -> int:
        return self._destination

    def min_cost(self, vertex: int) -> float:
        return 0.0

    def probability(self, vertex: int, remaining_budget: float) -> float:
        return 1.0 if remaining_budget >= 0 else 0.0

    def probability_batch(self, vertex: int, budgets) -> np.ndarray:
        budgets = np.asarray(budgets, dtype=float)
        return np.where(budgets >= 0, 1.0, 0.0)


def max_prob(distribution: Distribution, heuristic: Heuristic, vertex: int, budget: float) -> float:
    """Eq. 3: the admissible upper bound on the arrival probability of a candidate path.

    ``distribution`` is the cost distribution of the candidate path from the
    source to ``vertex``; the heuristic bounds the probability of covering the
    remaining distance within what is left of ``budget``.  Large supports are
    evaluated as one batched ``U(vertex, ·)`` lookup over the whole support
    instead of a Python-level call per cost outcome.
    """
    if len(distribution) > _BATCH_THRESHOLD:
        remaining = budget - distribution.values_array
        feasible = remaining >= 0
        if not feasible.any():
            return 0.0
        bounds = heuristic.probability_batch(vertex, remaining[feasible])
        return float(np.dot(distribution.probabilities_array[feasible], bounds))
    total = 0.0
    for cost, probability in distribution.items():
        remaining = budget - cost
        if remaining < 0:
            continue
        total += probability * heuristic.probability(vertex, remaining)
    return total
