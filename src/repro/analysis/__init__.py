"""Project-invariant static analysis: AST lint rules for this repo's contracts.

The subsystem behind ``repro analyze``.  It is intentionally standalone —
stdlib :mod:`ast` only, no runtime dependency on the rest of the package —
so it can check the tree it ships in.  See :mod:`repro.analysis.framework`
for the machinery, :mod:`repro.analysis.rules` for the rule set (each rule
documents the PR/bug that motivated it), and the README's "Static analysis
& typing" section for how to run it and the suppression syntax.
"""

from repro.analysis.framework import (
    AnalysisReport,
    Rule,
    SourceFile,
    Violation,
    all_rules,
    analyze_paths,
    analyze_source,
    module_path_for,
    register,
)
from repro.analysis.reporter import render_json, render_text
from repro.analysis import rules as rules  # noqa: F401 - registers the rule set

__all__ = [
    "AnalysisReport",
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "module_path_for",
    "register",
    "render_json",
    "render_text",
]
