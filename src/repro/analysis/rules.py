"""The project's rule set, grounded in this repo's actual bug history.

Each rule encodes an invariant a previous PR paid for the hard way:

* ``strict-json`` — PR 3 standardised strict JSON at every boundary; a bare
  ``json.dumps`` re-opens the NaN/Infinity corruption hole.
* ``data-error-taxonomy`` — decode paths must fail as
  :class:`~repro.core.errors.DataError`; PR 6's scan found ``ValueError``
  escaping ostensibly-taxonomised readers.
* ``format-version`` — PR 4 found readers silently accepting any
  ``format_version``; every read of the field must validate it.
* ``fingerprint-hygiene`` — PR 3 replaced ``id(graph)`` cache keys (they do
  not survive process boundaries), and PR 4 found codec constructors
  renormalising persisted floats and shifting content fingerprints by ULPs.
* ``lock-discipline`` — the heuristic cache is shared by serving threads;
  state written under a lock must never be touched outside one.
* ``float-equality`` — the heuristic grid arithmetic is float-based;
  ``==``/``!=`` on floats is almost always a latent off-by-ULP bug.
* ``sqlite-discipline`` — the fleet catalog (PR 8) runs SQLite in WAL mode
  with foreign keys on and explicit ``BEGIN IMMEDIATE`` transactions; a
  connection opened anywhere else silently loses all three guarantees.
* ``residency-discipline`` — PR 10 made v2 decode zero-copy via mmap
  streaming; a whole-file ``read()`` on the persistence path re-introduces
  the doubled boot peak, and a writable map would let consumers corrupt
  each other's zero-copy views.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.framework import Rule, SourceFile, Violation, register

__all__ = [
    "StrictJsonRule",
    "DataErrorTaxonomyRule",
    "FormatVersionRule",
    "FingerprintHygieneRule",
    "LockDisciplineRule",
    "FloatEqualityRule",
    "SqliteDisciplineRule",
    "ResidencyDisciplineRule",
]


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for name/attribute chains, ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _is_persistence(source: SourceFile) -> bool:
    return source.module_path.startswith("persistence/")


def _is_catalog(source: SourceFile) -> bool:
    return source.module_path.startswith("catalog/")


@register
class StrictJsonRule(Rule):
    """R1: persistence and the service boundary must use the strict JSON codecs.

    ``json.dumps(float("nan"))`` happily emits ``NaN`` — a token strict JSON
    parsers reject — and a bare ``json.loads`` accepts it back, so one bare
    call anywhere on the persistence path can write artifacts that only this
    process can read.  All (de)serialisation in ``persistence/``,
    ``routing/service.py`` and the HTTP serving tier (``serving/``) must go
    through
    :func:`repro.persistence.codecs.strict_json_dumps` /
    :func:`~repro.persistence.codecs.strict_json_loads` (which pass
    ``allow_nan=False`` and reject non-standard constants on decode).  The
    helpers' own internal calls carry the suppression comment.
    """

    rule_id = "strict-json"
    description = (
        "json.dumps/json.loads in persistence/, catalog/, routing/service.py and "
        "serving/ must go through the strict codec helpers (allow_nan=False, "
        "strict decode)"
    )

    _BARE: ClassVar[dict[str, str]] = {
        "json.dumps": "strict_json_dumps",
        "json.dump": "strict_json_dump",
        "json.loads": "strict_json_loads",
        "json.load": "strict_json_loads",
    }

    def applies_to(self, source: SourceFile) -> bool:
        return (
            _is_persistence(source)
            or _is_catalog(source)
            or source.module_path == "routing/service.py"
            or source.module_path.startswith("serving/")
        )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        aliases: dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "json":
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"json.{alias.name}"
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            target = aliases.get(name, name)
            helper = self._BARE.get(target)
            if helper is not None:
                yield self.violation(
                    source,
                    node,
                    f"bare {target}() on the persistence path; route it through "
                    f"repro.persistence.codecs.{helper} so NaN/Infinity are "
                    "rejected on both directions",
                )


@register
class DataErrorTaxonomyRule(Rule):
    """R2: persistence read/decode paths may only raise the DataError taxonomy.

    Callers of the persistence readers catch :class:`DataError`; any builtin
    exception that escapes instead (a ``KeyError`` from a missing field, a
    ``ValueError`` from ``int()`` on garbage, an ``AssertionError``) turns a
    malformed document into a crash with a misleading traceback.  Flagged:
    ``raise`` of builtin exception types, ``assert`` statements, and
    ``int()``/``float()`` conversions inside ``try`` blocks whose handlers
    catch ``KeyError``/``TypeError`` but let ``ValueError`` through — the
    exact escape PR 6's scan found in the index and heuristic readers.
    """

    rule_id = "data-error-taxonomy"
    description = (
        "read/decode paths under persistence/ and catalog/ may only raise "
        "DataError (or taxonomy subclasses), never bare "
        "KeyError/ValueError/AssertionError"
    )

    _BUILTIN_RAISES: ClassVar[set[str]] = {
        "AssertionError",
        "AttributeError",
        "IndexError",
        "KeyError",
        "LookupError",
        "RuntimeError",
        "TypeError",
        "ValueError",
    }
    _CONVERSIONS: ClassVar[set[str]] = {"int", "float", "complex"}
    _VALUE_ERROR_CATCHERS: ClassVar[set[str]] = {"ValueError", "Exception", "BaseException"}

    def applies_to(self, source: SourceFile) -> bool:
        # The catalog is a persistence layer too: its readers (SQLite rows,
        # store manifests) answer to the same taxonomy.
        return _is_persistence(source) or _is_catalog(source)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(source, node)
            elif isinstance(node, ast.Assert):
                yield self.violation(
                    source,
                    node,
                    "assert escapes as AssertionError (and vanishes under -O); "
                    "raise DataError with a diagnostic message instead",
                )
            elif isinstance(node, ast.Try):
                yield from self._check_try(source, node)

    def _check_raise(self, source: SourceFile, node: ast.Raise) -> Iterator[Violation]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _dotted_name(exc) if exc is not None else None
        if name in self._BUILTIN_RAISES:
            yield self.violation(
                source,
                node,
                f"raising builtin {name} from a persistence module; raise "
                "DataError (or a taxonomy subclass) so callers can catch "
                "malformed documents uniformly",
            )

    @staticmethod
    def _caught_names(node: ast.Try) -> set[str]:
        caught: set[str] = set()
        for handler in node.handlers:
            kind = handler.type
            types = kind.elts if isinstance(kind, ast.Tuple) else [kind]
            for entry in types:
                if entry is None:
                    caught.add("BaseException")  # a bare except catches everything
                else:
                    name = _dotted_name(entry)
                    if name is not None:
                        caught.add(name.rsplit(".", 1)[-1])
        return caught

    def _check_try(self, source: SourceFile, node: ast.Try) -> Iterator[Violation]:
        caught = self._caught_names(node)
        if caught & self._VALUE_ERROR_CATCHERS:
            return
        # Only try statements that already map decode errors are considered:
        # the bug pattern is "caught KeyError/TypeError, forgot ValueError".
        if not caught & {"KeyError", "TypeError"}:
            return
        for call in self._body_calls(node):
            name = _dotted_name(call.func)
            if name in self._CONVERSIONS:
                yield self.violation(
                    source,
                    call,
                    f"{name}() raises ValueError on malformed input, which "
                    f"escapes this try (handlers catch {sorted(caught)}); add "
                    "ValueError to the except tuple",
                )

    def _body_calls(self, node: ast.Try) -> Iterator[ast.Call]:
        """Calls in the try body, not descending into nested try statements."""
        stack: list[ast.AST] = list(node.body)
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Try):
                continue  # the nested try is analysed on its own
            if isinstance(current, ast.Call):
                yield current
            stack.extend(ast.iter_child_nodes(current))


@register
class FormatVersionRule(Rule):
    """R3: every read of a ``format_version`` field must validate it.

    PR 4 found readers that subscripted ``payload["format_version"]`` (or
    defaulted it with ``.get``) and then parsed whatever followed — so a
    document written by a newer codec was silently mis-parsed instead of
    refused.  Any function that reads the field must call
    :func:`repro.persistence.codecs.require_format_version` (the definer
    itself is exempt).
    """

    rule_id = "format-version"
    description = (
        "functions reading a format_version field must validate it via "
        "persistence.codecs.require_format_version"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "require_format_version":
                continue
            reads = [read for read in ast.walk(node) if self._reads_format_version(read)]
            if not reads:
                continue
            if any(self._calls_validator(child) for child in ast.walk(node)):
                continue
            for read in reads:
                yield self.violation(
                    source,
                    read,
                    f"{node.name}() reads format_version without calling "
                    "require_format_version; unknown versions must be refused, "
                    "not mis-parsed",
                )

    @staticmethod
    def _reads_format_version(node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            key = node.slice
            return isinstance(key, ast.Constant) and key.value == "format_version"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "get" and node.args:
                first = node.args[0]
                return isinstance(first, ast.Constant) and first.value == "format_version"
        return False

    @staticmethod
    def _calls_validator(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _dotted_name(node.func)
        return name is not None and name.rsplit(".", 1)[-1] == "require_format_version"


@register
class FingerprintHygieneRule(Rule):
    """R4: identity is content, never ``id()``; codecs must not renormalise.

    ``id(graph)`` keys broke the moment heuristic bundles crossed a process
    boundary (PR 3); content fingerprints replaced them everywhere, so any
    new ``id(...)`` call is wrong by construction.  In ``persistence/``
    codec paths, ``Distribution(...)``/``JointDistribution(...)``
    constructor calls renormalise probabilities and can change a persisted
    graph's fingerprint by ULPs (PR 4's round-trip bug); decoders must use
    ``from_normalised``, with the lenient constructor allowed only as the
    fallback inside an ``except`` handler.
    """

    rule_id = "fingerprint-hygiene"
    description = (
        "no id(...) as a cache/dict key; persistence codec fast paths must use "
        "from_normalised, not renormalising Distribution(...) constructors"
    )

    _CONSTRUCTORS: ClassVar[set[str]] = {"Distribution", "JointDistribution"}

    def check(self, source: SourceFile) -> Iterator[Violation]:
        handler_spans = [
            (handler.lineno, handler.end_lineno or handler.lineno)
            for node in ast.walk(source.tree)
            if isinstance(node, ast.Try)
            for handler in node.handlers
        ]
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name == "id" and len(node.args) == 1:
                yield self.violation(
                    source,
                    node,
                    "id() is process-local object identity, not content; key "
                    "caches and bundles by content fingerprint instead",
                )
            elif (
                name in self._CONSTRUCTORS
                and _is_persistence(source)
                and not self._inside_handler(node, handler_spans)
            ):
                yield self.violation(
                    source,
                    node,
                    f"{name}(...) renormalises probabilities and can shift a "
                    "persisted graph's content fingerprint by ULPs; decode "
                    f"through {name}.from_normalised (the lenient constructor "
                    "is only sanctioned as an except-handler fallback)",
                )

    @staticmethod
    def _inside_handler(node: ast.Call, spans: list[tuple[int, int]]) -> bool:
        return any(start <= node.lineno <= end for start, end in spans)


@register
class LockDisciplineRule(Rule):
    """R5: state written under a lock is lock-guarded state, everywhere.

    A lightweight race detector for the serving-path modules: within one
    class, any attribute that is ever written inside a ``with self._lock``
    (or ``self._stats_lock`` / ``self._router_lock`` / any ``self.*_lock``)
    block is considered guarded, and every other touch of it — read or write
    — outside a lock context (and outside ``__init__``, which runs before
    the object is shared) is a violation.  This is what caught the engine's
    unlocked stats reads.  The serving tier (``repro.serving``) registers all
    of its modules here: every piece of state its request handlers, reload
    watcher and respawn loop share is lock-checked.
    """

    rule_id = "lock-discipline"
    description = (
        "attributes written inside `with self._lock` blocks in the serving "
        "modules must never be touched outside a lock context in the same class"
    )

    #: Modules whose classes are subject to the lock analysis.
    LOCKED_MODULES = (
        "routing/engine.py",
        "routing/backends.py",
        # The frontier accelerator is shared by every router over a graph
        # (including the serving tier's worker threads); its memo caches are
        # lock-guarded state.
        "routing/accel.py",
        "routing/service.py",
        "serving/admission.py",
        "serving/faults.py",
        "serving/reload.py",
        "serving/resilience.py",
        "serving/server.py",
        # The catalog is read by serving boxes while fleet jobs write it;
        # any locked state its helpers grow is held to the same discipline.
        "catalog/db.py",
        "catalog/registry.py",
        "catalog/fleet.py",
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.module_path in self.LOCKED_MODULES

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    # -- per-class analysis ------------------------------------------------ #
    def _check_class(self, source: SourceFile, klass: ast.ClassDef) -> Iterator[Violation]:
        methods = [
            child
            for child in klass.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        guarded: set[str] = set()
        for method in methods:
            if method.name == "__init__":
                continue
            for attr, _node, locked in self._self_attribute_writes(method):
                if locked:
                    guarded.add(attr)
        if not guarded:
            return
        for method in methods:
            if method.name == "__init__":
                continue
            for attr, node, locked in self._self_attribute_accesses(method):
                if attr in guarded and not locked:
                    yield self.violation(
                        source,
                        node,
                        f"self.{attr} is written under a lock elsewhere in "
                        f"{klass.name} but touched here without one; take the "
                        "lock (or snapshot under it) to avoid torn reads/races",
                    )

    @staticmethod
    def _is_lock_context(item: ast.withitem) -> bool:
        expr = item.context_expr
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and (expr.attr == "_lock" or expr.attr.endswith("_lock"))
        )

    def _walk_with_locks(
        self, node: ast.AST, locked: bool
    ) -> Iterator[tuple[ast.AST, bool]]:
        """Yield ``(node, inside-lock)`` pairs over a method body."""
        yield node, locked
        entered = locked
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered = locked or any(self._is_lock_context(item) for item in node.items)
        for child in ast.iter_child_nodes(node):
            yield from self._walk_with_locks(child, entered)

    @staticmethod
    def _written_attr(node: ast.AST) -> str | None:
        """The ``self.X`` attribute a statement writes, if any."""
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Starred)):
                target = target.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target.attr
        return None

    def _self_attribute_writes(
        self, method: ast.AST
    ) -> Iterator[tuple[str, ast.AST, bool]]:
        for node, locked in self._walk_with_locks(method, False):
            attr = self._written_attr(node)
            if attr is not None:
                yield attr, node, locked

    def _self_attribute_accesses(
        self, method: ast.AST
    ) -> Iterator[tuple[str, ast.AST, bool]]:
        """Every ``self.X`` touch (read or write) with its lock status."""
        for node, locked in self._walk_with_locks(method, False):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                yield node.attr, node, locked


@register
class FloatEqualityRule(Rule):
    """R6: no ``==``/``!=`` on expressions that are textually float-typed.

    The heuristic grid arithmetic lives on floats; ``0.3 / 0.1 != 3.0`` is
    this codebase's canonical example (see ``heuristics/tables.py``).  The
    rule flags comparisons where an operand is a float literal or a
    ``float(...)`` call — the cases that are knowably floats without type
    inference.  Exact sentinel comparisons (``scale != 1.0`` against a
    default that was never computed) carry suppressions with a justification.
    """

    rule_id = "float-equality"
    description = (
        "no ==/!= on float-typed expressions outside tolerance helpers; "
        "use math.isclose or an explicit epsilon"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_float_typed(operand) for operand in operands):
                yield self.violation(
                    source,
                    node,
                    "==/!= on a float-typed expression; floats that should be "
                    "equal can differ by ULPs — compare with math.isclose or "
                    "an explicit tolerance",
                )

    @staticmethod
    def _is_float_typed(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
            return isinstance(node.operand.value, float)
        if isinstance(node, ast.Call):
            return isinstance(node.func, ast.Name) and node.func.id == "float"
        return False


@register
class SqliteDisciplineRule(Rule):
    """R7: all SQLite access goes through the catalog's connection discipline.

    The fleet catalog requires WAL journaling (readers unblocked during
    writes), ``foreign_keys=ON`` (off by default!) and explicit ``BEGIN
    IMMEDIATE`` transactions.  ``sqlite3.connect`` delivers none of those, so
    a connection opened outside ``catalog/db.py`` silently loses all three —
    the catalog would still *work* on the happy path, which is exactly why
    this needs a rule.  Flagged:

    * any ``sqlite3.connect(...)`` call outside ``catalog/db.py`` (import
      aliases included) — open a :class:`~repro.catalog.db.CatalogDB` instead;
    * inside ``catalog/db.py``, a function that calls ``sqlite3.connect``
      without also calling the pragma helper (``*apply_pragmas``) — a raw
      connection must never escape the module either;
    * manual transaction control in ``catalog/`` modules outside ``db.py``:
      ``.commit()`` / ``.rollback()`` calls, or ``execute`` of a
      ``BEGIN``/``COMMIT``/``ROLLBACK`` statement — use
      ``CatalogDB.transaction()``.
    """

    rule_id = "sqlite-discipline"
    description = (
        "sqlite3 connections are opened only in catalog/db.py (with the pragma "
        "helper applied); transaction control goes through CatalogDB.transaction()"
    )

    _DB_MODULE: ClassVar[str] = "catalog/db.py"
    _TXN_METHODS: ClassVar[set[str]] = {"commit", "rollback"}
    _TXN_KEYWORDS: ClassVar[tuple[str, ...]] = ("BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT")

    def check(self, source: SourceFile) -> Iterator[Violation]:
        aliases = self._connect_aliases(source.tree)
        if source.module_path == self._DB_MODULE:
            yield from self._check_db_module(source, aliases)
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_connect(node, aliases):
                yield self.violation(
                    source,
                    node,
                    "sqlite3.connect() outside catalog/db.py skips the WAL + "
                    "foreign-keys pragmas and the transaction discipline; open a "
                    "repro.catalog.db.CatalogDB instead",
                )
            elif _is_catalog(source):
                yield from self._check_manual_txn(source, node)

    # -- helpers ----------------------------------------------------------- #
    @staticmethod
    def _connect_aliases(tree: ast.AST) -> set[str]:
        """Every local name that resolves to ``sqlite3.connect``."""
        names = {"sqlite3.connect"}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "sqlite3" and alias.asname:
                        names.add(f"{alias.asname}.connect")
            elif isinstance(node, ast.ImportFrom) and node.module == "sqlite3":
                for alias in node.names:
                    if alias.name == "connect":
                        names.add(alias.asname or "connect")
        return names

    @staticmethod
    def _is_connect(node: ast.Call, aliases: set[str]) -> bool:
        name = _dotted_name(node.func)
        return name is not None and name in aliases

    def _check_manual_txn(self, source: SourceFile, node: ast.Call) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in self._TXN_METHODS and not node.args and not node.keywords:
            yield self.violation(
                source,
                node,
                f".{func.attr}() is manual transaction control; write inside "
                "'with db.transaction():' so the batch commits or rolls back "
                "as one unit",
            )
            return
        if func.attr in {"execute", "executescript"} and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                statement = first.value.lstrip().upper()
                if statement.startswith(self._TXN_KEYWORDS):
                    yield self.violation(
                        source,
                        node,
                        "hand-rolled BEGIN/COMMIT/ROLLBACK; transaction control "
                        "belongs to CatalogDB.transaction()",
                    )

    def _check_db_module(
        self, source: SourceFile, aliases: set[str]
    ) -> Iterator[Violation]:
        """Within db.py: every connect-calling function also applies the pragmas."""
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            connects = [
                call
                for call in ast.walk(node)
                if isinstance(call, ast.Call) and self._is_connect(call, aliases)
            ]
            if not connects:
                continue
            applies = any(
                isinstance(call, ast.Call)
                and (name := _dotted_name(call.func)) is not None
                and name.rsplit(".", 1)[-1].endswith("apply_pragmas")
                for call in ast.walk(node)
            )
            if not applies:
                for call in connects:
                    yield self.violation(
                        source,
                        call,
                        f"{node.name}() opens a sqlite connection without applying "
                        "the catalog pragmas; call _apply_pragmas(connection, ...) "
                        "before the connection is used",
                    )


@register
class ResidencyDisciplineRule(Rule):
    """R8: persistence decode paths stream v2 documents, never slurp them.

    PR 10's country-scale boots hinge on the v2 column containers being
    *mapped*, not read: one whole-file ``read()`` of a country-sized index
    holds every byte in Python heap alongside the decoded arrays, doubling
    the boot peak the streaming reader was built to eliminate.  Whole-file
    reads in ``persistence/`` are therefore opt-in: v1 JSON documents and
    manifest/summary reads carry an explicit suppression, everything else
    must go through :class:`~repro.persistence.codecs.ColumnDocumentReader`.
    Flagged:

    * ``.read_bytes()`` / ``.read_text()`` calls and argless ``.read()``
      calls (a bounded ``.read(n)`` — e.g. the 4-byte magic sniff — is
      fine) anywhere in ``persistence/``;
    * ``mmap.mmap(...)`` without ``access=mmap.ACCESS_READ`` — the streaming
      reader's maps hand out long-lived ndarray views, so a writable (or
      copy-on-write) map would let any consumer corrupt every other
      consumer's arrays.
    """

    rule_id = "residency-discipline"
    description = (
        "persistence/ must stream v2 column documents through the mmap reader: "
        "whole-file read()/read_bytes()/read_text() calls need an explicit "
        "suppression, and mmap maps must be opened ACCESS_READ"
    )

    _WHOLE_FILE: ClassVar[set[str]] = {"read_bytes", "read_text"}

    def applies_to(self, source: SourceFile) -> bool:
        return _is_persistence(source)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            method = name.rsplit(".", 1)[-1]
            if method in self._WHOLE_FILE:
                yield self.violation(
                    source,
                    node,
                    f".{method}() slurps a whole document into heap; v2 column "
                    "containers must stream through "
                    "repro.persistence.codecs.ColumnDocumentReader (suppress "
                    "explicitly for v1 JSON / manifest reads)",
                )
            elif method == "read" and not node.args and not node.keywords:
                yield self.violation(
                    source,
                    node,
                    "argless .read() slurps a whole stream into heap; read a "
                    "bounded .read(n) or stream through "
                    "repro.persistence.codecs.ColumnDocumentReader",
                )
            elif name in ("mmap.mmap", "mmap"):
                yield from self._check_mmap(source, node)

    def _check_mmap(self, source: SourceFile, node: ast.Call) -> Iterator[Violation]:
        for keyword in node.keywords:
            if keyword.arg != "access":
                continue
            if _dotted_name(keyword.value) == "mmap.ACCESS_READ":
                return
            break
        yield self.violation(
            source,
            node,
            "mmap.mmap() without access=mmap.ACCESS_READ; the streaming reader "
            "exports long-lived ndarray views, so persistence maps must be "
            "read-only",
        )
