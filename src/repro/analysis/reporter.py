"""Rendering of analysis results: human-readable text and machine JSON.

The text form mirrors compiler diagnostics (``path:line:col: rule-id
message``) so editors and CI log scrapers pick the locations up; the JSON
form is what the CI ``analysis`` job uploads as its report artifact.
"""

from __future__ import annotations

import json

from repro.analysis.framework import AnalysisReport

__all__ = ["render_text", "render_json"]


def render_text(report: AnalysisReport) -> str:
    """One diagnostic line per violation plus a one-line summary."""
    lines = [
        f"{violation.location()}: {violation.rule_id}: {violation.message}"
        for violation in report.violations
    ]
    count = len(report.violations)
    noun = "violation" if count == 1 else "violations"
    lines.append(
        f"repro analyze: {count} {noun} in {report.checked_files} files "
        f"({len(report.rule_ids)} rules)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """The report as a strict JSON document (stable key order, no NaN)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True, allow_nan=False)
