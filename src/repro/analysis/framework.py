"""Core machinery of the project's static-analysis pass.

The repo's correctness story rests on a handful of invariants that ordinary
linters cannot see: persisted JSON must be strict (no NaN/Infinity), decode
paths must fail as :class:`~repro.core.errors.DataError`, every versioned
document read must validate its ``format_version``, caches must be keyed by
content fingerprints rather than object identity, and state shared with the
serving threads must stay behind its lock.  Each of those is a
:class:`Rule` here: a small AST visitor scoped to the modules where the
invariant applies.  ``repro analyze`` runs the registry over a source tree
and fails on any violation, so the bug classes PRs 3–5 fixed cannot quietly
return.

Suppressions are per-line and per-rule: a trailing ``# repro:
ignore[rule-id]`` comment (comma-separated ids) on any line a violation's
node spans silences exactly that rule there.  Suppression comments are
expected to carry a justification, like ``noqa`` in this codebase.
"""

from __future__ import annotations

import ast
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path as FilePath

__all__ = [
    "Violation",
    "SourceFile",
    "Rule",
    "AnalysisReport",
    "register",
    "all_rules",
    "analyze_source",
    "analyze_paths",
    "module_path_for",
]

#: ``# repro: ignore[rule-id]`` / ``# repro: ignore[a, b]`` suppressions.
_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule violation, anchored to a file position.

    ``line``/``end_line`` span the offending AST node (suppression comments
    anywhere in that span silence it); ``column`` is 1-based like editors.
    """

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    end_line: int = 0

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass(frozen=True)
class SourceFile:
    """One parsed module plus everything the rules need to scope and suppress.

    ``module_path`` is the path relative to the ``repro`` package root
    (``"persistence/codecs.py"``), which is what rules scope on — it is
    stable no matter where the tree is checked out or which absolute path
    the analyzer was pointed at.
    """

    path: str
    module_path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, *, path: str, module_path: str) -> "SourceFile":
        tree = ast.parse(text, filename=path)
        return cls(
            path=path,
            module_path=module_path,
            text=text,
            tree=tree,
            suppressions=_parse_suppressions(text),
        )

    def suppressed(self, rule_id: str, line: int, end_line: int) -> bool:
        """Whether ``rule_id`` is suppressed on any line of ``line..end_line``."""
        for number in range(line, max(line, end_line) + 1):
            if rule_id in self.suppressions.get(number, frozenset()):
                return True
        return False


def _parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    suppressions: dict[int, frozenset[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        ids: set[str] = set()
        for match in _SUPPRESSION.finditer(line):
            ids.update(part.strip() for part in match.group(1).split(",") if part.strip())
        if ids:
            suppressions[number] = frozenset(ids)
    return suppressions


class Rule:
    """Base class of the analysis rules; subclasses register themselves.

    A rule declares its identity (``rule_id``, ``description``), the modules
    it applies to (:meth:`applies_to`, on the repo-relative module path), and
    yields :class:`Violation` objects from :meth:`check`.  Suppression
    filtering is the framework's job, not the rule's.
    """

    rule_id: str = ""
    description: str = ""

    def applies_to(self, source: SourceFile) -> bool:
        return True

    def check(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator

    def violation(self, source: SourceFile, node: ast.AST, message: str) -> Violation:
        """A violation anchored to ``node`` (1-based editor-style column)."""
        line = getattr(node, "lineno", 1)
        end_line = getattr(node, "end_lineno", None) or line
        column = getattr(node, "col_offset", 0) + 1
        return Violation(
            rule_id=self.rule_id,
            path=source.path,
            line=line,
            column=column,
            message=message,
            end_line=end_line,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``rule_id``) to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} declares no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by rule id for stable output."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analysis run: what was checked and what was found."""

    violations: tuple[Violation, ...]
    checked_files: int
    rule_ids: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "rules": list(self.rule_ids),
            "violations": [violation.to_dict() for violation in self.violations],
        }


def module_path_for(path: FilePath) -> str:
    """The path of ``path`` relative to the ``repro`` package root, as posix.

    Files outside any ``repro`` directory fall back to their filename, so the
    analyzer still runs on loose files (rules scoped to package subtrees then
    simply do not apply).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return path.name


def check_source(source: SourceFile, rules: Sequence[Rule]) -> list[Violation]:
    """Run ``rules`` over one parsed module, applying suppression comments."""
    violations: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(source):
            continue
        for violation in rule.check(source):
            if not source.suppressed(violation.rule_id, violation.line, violation.end_line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule_id))
    return violations


def analyze_source(
    text: str,
    *,
    virtual_path: str = "module.py",
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Analyze a source string as if it lived at ``virtual_path``.

    ``virtual_path`` is interpreted relative to the ``repro`` package root
    (``"persistence/fake.py"`` is scoped like a persistence module), which is
    how the test suite feeds the rules seeded fixture snippets.
    """
    source = SourceFile.from_text(text, path=virtual_path, module_path=virtual_path)
    return check_source(source, list(rules) if rules is not None else all_rules())


def iter_python_files(paths: Iterable[FilePath]) -> Iterator[FilePath]:
    """Every ``.py`` file under ``paths`` (directories recursed, sorted)."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Sequence[FilePath | str],
    *,
    rules: Sequence[Rule] | None = None,
) -> AnalysisReport:
    """Analyze every python file under ``paths`` with ``rules`` (default: all).

    Unreadable or syntactically invalid files are reported as ``parse-error``
    violations rather than aborting the run — an analyzer that crashes on the
    code it is meant to check protects nothing.
    """
    chosen = list(rules) if rules is not None else all_rules()
    violations: list[Violation] = []
    checked = 0
    for file_path in iter_python_files(FilePath(p) for p in paths):
        display = str(file_path)
        try:
            with tokenize.open(file_path) as handle:
                text = handle.read()
            source = SourceFile.from_text(
                text, path=display, module_path=module_path_for(file_path)
            )
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            violations.append(
                Violation(
                    rule_id="parse-error",
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                    column=1,
                    message=f"could not parse file: {exc}",
                    end_line=getattr(exc, "lineno", None) or 1,
                )
            )
            continue
        checked += 1
        violations.extend(check_source(source, chosen))
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule_id))
    return AnalysisReport(
        violations=tuple(violations),
        checked_files=checked,
        rule_ids=tuple(rule.rule_id for rule in chosen),
    )
