"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses exist for the major
subsystems (distributions, graphs, routing, heuristics, data handling), which
keeps error handling explicit at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DistributionError(ReproError):
    """Raised when a cost distribution is malformed or an operation on it is invalid."""


class JointDistributionError(DistributionError):
    """Raised for invalid joint-distribution construction or assembly."""


class PathError(ReproError):
    """Raised when an edge sequence does not form a valid (simple, connected) path."""


class GraphError(ReproError):
    """Raised for malformed road networks or uncertain graphs."""


class UnknownVertexError(GraphError):
    """Raised when a vertex id is not present in the graph."""


class UnknownEdgeError(GraphError):
    """Raised when an edge id or (source, target) pair is not present in the graph."""


class RoutingError(ReproError):
    """Raised when a routing query cannot be evaluated."""


class NoPathError(RoutingError):
    """Raised when no path exists between the requested source and destination."""


class HeuristicError(ReproError):
    """Raised when a heuristic is queried for a destination it was not built for."""


class DataError(ReproError):
    """Raised for malformed trajectory / GPS input data."""


class ConfigurationError(ReproError):
    """Raised when user-supplied parameters are inconsistent or out of range."""
