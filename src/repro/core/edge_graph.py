"""The edge-centric uncertain road network (EDGE model).

The EDGE model assigns an independent cost distribution to every edge and
computes the cost of a path by convolution (Section 2.1 of the paper).  It is
both the classical baseline the paper compares against conceptually and the
substrate for the EDGE-model stochastic router in :mod:`repro.edgemodel`.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.distributions import Distribution
from repro.core.elements import ElementKind, WeightedElement
from repro.core.errors import GraphError, UnknownEdgeError
from repro.core.paths import Path
from repro.network.road_network import RoadNetwork

__all__ = ["EdgeGraph"]


class EdgeGraph:
    """An uncertain road network in the edge-centric (EDGE) model.

    Parameters
    ----------
    network:
        The structural road network.
    weights:
        Cost distributions for (some) edges.  Edges without an explicit
        distribution fall back to a deterministic free-flow travel time, the
        same convention the paper uses for edges not covered by trajectories.
    """

    def __init__(
        self,
        network: RoadNetwork,
        weights: Mapping[int, Distribution] | None = None,
        *,
        fill_uncovered: bool = True,
    ):
        self._network = network
        self._weights: dict[int, Distribution] = {}
        if weights:
            for edge_id, distribution in weights.items():
                self.set_weight(edge_id, distribution)
        if fill_uncovered:
            for edge in network.edges():
                if edge.edge_id not in self._weights:
                    self._weights[edge.edge_id] = Distribution.point(
                        round(edge.free_flow_time(), 3)
                    )
        else:
            missing = [e.edge_id for e in network.edges() if e.edge_id not in self._weights]
            if missing:
                raise GraphError(
                    f"{len(missing)} edges have no cost distribution (first: {missing[:5]})"
                )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RoadNetwork:
        """The underlying structural road network."""
        return self._network

    def set_weight(self, edge_id: int, distribution: Distribution) -> None:
        """Assign the cost distribution of an edge."""
        if not self._network.has_edge(edge_id):
            raise UnknownEdgeError(f"unknown edge {edge_id}")
        self._weights[edge_id] = distribution

    def weight(self, edge_id: int) -> Distribution:
        """The cost distribution ``W(e)`` of an edge."""
        try:
            return self._weights[edge_id]
        except KeyError as exc:
            raise UnknownEdgeError(f"edge {edge_id} has no cost distribution") from exc

    def weights(self) -> dict[int, Distribution]:
        """A copy of the full edge-weight mapping."""
        return dict(self._weights)

    def min_cost(self, edge_id: int) -> float:
        """The minimum possible cost of an edge (used for deterministic bounds)."""
        return self.weight(edge_id).min()

    def expected_cost(self, edge_id: int) -> float:
        """The expected cost of an edge (used for workload budgets and baselines)."""
        return self.weight(edge_id).expectation()

    # ------------------------------------------------------------------ #
    # Path costs
    # ------------------------------------------------------------------ #
    def path_cost_distribution(self, path: Path, *, max_support: int | None = None) -> Distribution:
        """The convolution ``W(e1) ⊕ ... ⊕ W(en)`` of the path's edge costs."""
        result: Distribution | None = None
        for edge_id in path.edges:
            weight = self.weight(edge_id)
            result = weight if result is None else result.convolve(weight, max_support=max_support)
        assert result is not None  # a Path always has at least one edge
        return result

    def path_expected_cost(self, path: Path) -> float:
        """The expected cost of a path (sum of expected edge costs)."""
        return sum(self.expected_cost(edge_id) for edge_id in path.edges)

    def path_min_cost(self, path: Path) -> float:
        """The minimum possible cost of a path (sum of minimum edge costs)."""
        return sum(self.min_cost(edge_id) for edge_id in path.edges)

    # ------------------------------------------------------------------ #
    # Routing support
    # ------------------------------------------------------------------ #
    def outgoing_elements(self, vertex_id: int) -> list[WeightedElement]:
        """The traversable elements from a vertex: in EDGE, just its outgoing edges."""
        elements = []
        for edge in self._network.out_edges(vertex_id):
            path = Path([edge.edge_id], [edge.source, edge.target])
            elements.append(
                WeightedElement(
                    kind=ElementKind.EDGE,
                    path=path,
                    distribution=self.weight(edge.edge_id),
                )
            )
        return elements

    def __repr__(self) -> str:
        return f"EdgeGraph(network={self._network!r}, weighted_edges={len(self._weights)})"
