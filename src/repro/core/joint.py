"""Joint cost distributions over the edges of a path, and the assembly operator.

The PACE model maintains, for every T-path, a *joint* distribution over the
cost vectors of its edges (Table 2(a) of the paper).  The joint preserves the
dependency among edge costs — e.g. that a driver who is fast on ``e1`` is also
fast on ``e2`` — which a product of edge marginals would destroy.

The key operation is the T-path assembly ``⋄`` (Eq. 1):

    D_J(P) = W_J(p1) ⋄ W_J(p2) ⋄ ... ⋄ W_J(pm)
           = Π W_J(p_i)  /  Π W_J(p_i ∩ p_{i+1})

for a coarsest T-path sequence of ``P`` whose consecutive elements overlap.
Dividing by the overlap joint is the usual conditional-chain (Markov)
construction: the cost of the next T-path is conditioned on the costs of the
edges it shares with the previous one.  When consecutive elements do not
overlap they are independent and the assembly degenerates to a product, which
at the total-cost level is plain convolution — the basis of Lemma 4.1 and the
V-path construction.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.core.distributions import PROBABILITY_TOLERANCE, Distribution
from repro.core.errors import JointDistributionError

__all__ = ["JointDistribution", "assemble_sequence"]


class JointDistribution:
    """A discrete joint distribution over the per-edge costs of a path.

    Parameters
    ----------
    edge_ids:
        The edges the joint is defined over, in path order.
    pmf:
        Mapping from cost vectors (tuples aligned with ``edge_ids``) to
        probabilities.  Probabilities must sum to one.
    """

    __slots__ = ("_edge_ids", "_pmf")

    def __init__(
        self,
        edge_ids: Sequence[int],
        pmf: Mapping[tuple[float, ...], float] | Iterable[tuple[tuple[float, ...], float]],
        *,
        normalise: bool = False,
    ):
        edge_ids = tuple(int(e) for e in edge_ids)
        if not edge_ids:
            raise JointDistributionError("a joint distribution needs at least one edge")
        if len(set(edge_ids)) != len(edge_ids):
            raise JointDistributionError("edge ids in a joint distribution must be distinct")
        items = pmf.items() if isinstance(pmf, Mapping) else pmf
        accumulator: dict[tuple[float, ...], float] = {}
        for costs, prob in items:
            costs = tuple(float(c) for c in costs)
            if len(costs) != len(edge_ids):
                raise JointDistributionError(
                    f"cost vector {costs!r} does not match the {len(edge_ids)} edges of the joint"
                )
            if any(c < 0 or not math.isfinite(c) for c in costs):
                raise JointDistributionError(f"costs must be finite and non-negative, got {costs!r}")
            if prob < -PROBABILITY_TOLERANCE or not math.isfinite(prob):
                raise JointDistributionError(f"probabilities must be non-negative, got {prob!r}")
            if prob <= 0:
                continue
            accumulator[costs] = accumulator.get(costs, 0.0) + float(prob)
        if not accumulator:
            raise JointDistributionError("a joint distribution needs at least one outcome")
        total = sum(accumulator.values())
        if not normalise and abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise JointDistributionError(f"probabilities must sum to 1, got {total!r}")
        self._edge_ids = edge_ids
        self._pmf = {costs: prob / total for costs, prob in accumulator.items()}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_normalised(
        cls,
        edge_ids: Sequence[int],
        items: Iterable[tuple[tuple[float, ...], float]],
    ) -> "JointDistribution":
        """Reconstruct a joint from already-normalised persisted outcomes.

        Like :meth:`repro.core.distributions.Distribution.from_normalised`,
        this skips the constructor's rescale-by-total so loading a persisted
        joint restores the exact probabilities it was saved with (rescaling
        by a sum one ULP off 1.0 would change every float and with it the
        graph's content fingerprint).  Outcomes must be distinct, finite and
        positive, with probabilities summing to 1 within the tolerance.
        """
        edge_ids = tuple(int(e) for e in edge_ids)
        if not edge_ids:
            raise JointDistributionError("a joint distribution needs at least one edge")
        if len(set(edge_ids)) != len(edge_ids):
            raise JointDistributionError("edge ids in a joint distribution must be distinct")
        pmf: dict[tuple[float, ...], float] = {}
        for costs, prob in items:
            costs = tuple(float(c) for c in costs)
            if len(costs) != len(edge_ids):
                raise JointDistributionError(
                    f"cost vector {costs!r} does not match the {len(edge_ids)} edges of the joint"
                )
            if any(c < 0 or not math.isfinite(c) for c in costs):
                raise JointDistributionError(f"costs must be finite and non-negative, got {costs!r}")
            prob = float(prob)
            if prob <= 0 or not math.isfinite(prob):
                raise JointDistributionError(
                    f"persisted probabilities must be positive and finite, got {prob!r}"
                )
            if costs in pmf:
                raise JointDistributionError(f"duplicate persisted outcome {costs!r}")
            pmf[costs] = prob
        if not pmf:
            raise JointDistributionError("a joint distribution needs at least one outcome")
        total = sum(pmf.values())
        if abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise JointDistributionError(
                f"persisted probabilities must sum to 1, got {total!r}"
            )
        self = object.__new__(cls)
        self._edge_ids = edge_ids
        self._pmf = pmf
        return self

    @classmethod
    def from_samples(
        cls,
        edge_ids: Sequence[int],
        cost_vectors: Sequence[Sequence[float]],
        *,
        resolution: float = 1.0,
    ) -> "JointDistribution":
        """Estimate a joint from observed per-edge cost vectors (one per trajectory)."""
        if not cost_vectors:
            raise JointDistributionError("cannot estimate a joint from zero trajectories")
        if resolution <= 0:
            raise JointDistributionError("resolution must be positive")
        counts: dict[tuple[float, ...], int] = {}
        for vector in cost_vectors:
            binned = tuple(round(c / resolution) * resolution for c in vector)
            counts[binned] = counts.get(binned, 0) + 1
        n = len(cost_vectors)
        return cls(edge_ids, {costs: count / n for costs, count in counts.items()})

    @classmethod
    def independent(cls, edge_ids: Sequence[int], marginals: Sequence[Distribution]) -> "JointDistribution":
        """Build a joint as the product of independent per-edge marginals."""
        if len(edge_ids) != len(marginals):
            raise JointDistributionError("need exactly one marginal per edge")
        outcomes: dict[tuple[float, ...], float] = {(): 1.0}
        for marginal in marginals:
            extended: dict[tuple[float, ...], float] = {}
            for costs, prob in outcomes.items():
                for value, p in marginal.items():
                    extended[costs + (value,)] = extended.get(costs + (value,), 0.0) + prob * p
            outcomes = extended
        return cls(edge_ids, outcomes)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def edge_ids(self) -> tuple[int, ...]:
        """The edges this joint is defined over, in path order."""
        return self._edge_ids

    @property
    def pmf(self) -> dict[tuple[float, ...], float]:
        """A copy of the probability mass function."""
        return dict(self._pmf)

    def items(self):
        """Iterate over ``(cost_vector, probability)`` pairs."""
        return self._pmf.items()

    def __len__(self) -> int:
        return len(self._pmf)

    def __repr__(self) -> str:
        return f"JointDistribution(edges={list(self._edge_ids)}, outcomes={len(self._pmf)})"

    def probability_of(self, costs: Sequence[float]) -> float:
        """The probability of an exact per-edge cost vector."""
        return self._pmf.get(tuple(float(c) for c in costs), 0.0)

    # ------------------------------------------------------------------ #
    # Projections
    # ------------------------------------------------------------------ #
    def marginal(self, edge_ids: Sequence[int]) -> "JointDistribution":
        """The marginal joint over a subset of edges (kept in the given order)."""
        edge_ids = tuple(int(e) for e in edge_ids)
        try:
            positions = [self._edge_ids.index(e) for e in edge_ids]
        except ValueError as exc:
            raise JointDistributionError(f"edge not covered by this joint: {exc}") from exc
        accumulator: dict[tuple[float, ...], float] = {}
        for costs, prob in self._pmf.items():
            key = tuple(costs[i] for i in positions)
            accumulator[key] = accumulator.get(key, 0.0) + prob
        return JointDistribution(edge_ids, accumulator)

    def edge_marginal(self, edge_id: int) -> Distribution:
        """The marginal cost distribution of a single edge."""
        accumulator: dict[float, float] = {}
        position = self._edge_ids.index(edge_id)
        for costs, prob in self._pmf.items():
            accumulator[costs[position]] = accumulator.get(costs[position], 0.0) + prob
        return Distribution(accumulator.items(), normalise=True)

    def total_cost_distribution(self) -> Distribution:
        """The distribution of the total (summed) cost — Table 2(b) in the paper."""
        accumulator: dict[float, float] = {}
        for costs, prob in self._pmf.items():
            total = sum(costs)
            accumulator[total] = accumulator.get(total, 0.0) + prob
        return Distribution(accumulator.items(), normalise=True)

    # ------------------------------------------------------------------ #
    # Assembly (Eq. 1)
    # ------------------------------------------------------------------ #
    def assemble(
        self,
        other: "JointDistribution",
        *,
        overlap: "JointDistribution | None" = None,
    ) -> "JointDistribution":
        """The assembly ``self ⋄ other`` of two (possibly overlapping) path joints.

        The overlap is the set of edges the two joints share; it must be a
        suffix of ``self`` and a prefix of ``other`` in edge order.  The
        result is defined over the union of the edges, with

            P(a ∪ b) = P_self(a) * P_other(b) / P_overlap(o)

        where ``o`` is the shared sub-vector.  ``overlap`` defaults to the
        marginal of ``other`` on the shared edges, which makes the operation a
        proper conditional chain (probabilities sum to one as long as every
        overlap outcome of ``self`` also has positive mass under ``other``).
        When the two joints share no edges they are treated as independent.
        """
        shared = [e for e in self._edge_ids if e in other._edge_ids]
        if not shared:
            combined: dict[tuple[float, ...], float] = {}
            for costs_a, prob_a in self._pmf.items():
                for costs_b, prob_b in other._pmf.items():
                    combined[costs_a + costs_b] = (
                        combined.get(costs_a + costs_b, 0.0) + prob_a * prob_b
                    )
            return JointDistribution(self._edge_ids + other._edge_ids, combined)

        shared_tuple = tuple(shared)
        if self._edge_ids[-len(shared_tuple) :] != shared_tuple:
            raise JointDistributionError(
                f"overlap {shared_tuple} is not a suffix of the left joint {self._edge_ids}"
            )
        if other._edge_ids[: len(shared_tuple)] != shared_tuple:
            raise JointDistributionError(
                f"overlap {shared_tuple} is not a prefix of the right joint {other._edge_ids}"
            )
        overlap_joint = overlap if overlap is not None else other.marginal(shared_tuple)
        if tuple(overlap_joint.edge_ids) != shared_tuple:
            overlap_joint = overlap_joint.marginal(shared_tuple)

        new_edges = self._edge_ids + other._edge_ids[len(shared_tuple) :]
        left_positions = [self._edge_ids.index(e) for e in shared_tuple]
        combined = {}
        for costs_b, prob_b in other._pmf.items():
            overlap_costs = costs_b[: len(shared_tuple)]
            denom = overlap_joint.probability_of(overlap_costs)
            if denom <= 0:
                continue
            tail = costs_b[len(shared_tuple) :]
            for costs_a, prob_a in self._pmf.items():
                if tuple(costs_a[i] for i in left_positions) != overlap_costs:
                    continue
                key = costs_a + tail
                combined[key] = combined.get(key, 0.0) + prob_a * prob_b / denom
        if not combined:
            raise JointDistributionError(
                "assembly produced an empty distribution: the overlap outcomes of the two "
                "joints are disjoint"
            )
        return JointDistribution(new_edges, combined, normalise=True)

    def restrict_to_resolution(self, resolution: float) -> "JointDistribution":
        """Round every per-edge cost to the nearest multiple of ``resolution``."""
        if resolution <= 0:
            raise JointDistributionError("resolution must be positive")
        accumulator: dict[tuple[float, ...], float] = {}
        for costs, prob in self._pmf.items():
            key = tuple(round(c / resolution) * resolution for c in costs)
            accumulator[key] = accumulator.get(key, 0.0) + prob
        return JointDistribution(self._edge_ids, accumulator, normalise=True)


def assemble_sequence(joints: Sequence[JointDistribution]) -> JointDistribution:
    """Assemble a whole coarsest T-path sequence ``p1 ⋄ p2 ⋄ ... ⋄ pm``.

    Consecutive joints may overlap (shared edges) or be merely adjacent
    (no shared edges, treated as independent).
    """
    if not joints:
        raise JointDistributionError("cannot assemble an empty sequence")
    result = joints[0]
    for joint in joints[1:]:
        result = result.assemble(joint)
    return result
