"""Paths as sequences of adjacent edges.

A path in the paper is a sequence of adjacent, non-repeating edges
``P = <e1, e2, ..., en>``.  T-paths, V-paths and candidate routing paths are
all paths in this sense.  This module provides an immutable :class:`Path`
value type with the algebra the PACE machinery relies on:

* sub-paths and prefix/suffix tests,
* the *overlap* between two paths (the suffix of the first that equals a
  prefix of the second — this is the ``p_i ∩ p_{i+1}`` of Eq. 1),
* concatenation of overlapping or adjacent paths, and
* simplicity checks (no repeated vertex), needed when V-paths are built and
  when candidate paths are extended during routing.

A path stores both its edge-id sequence and its vertex-id sequence; the two
are kept consistent at construction time.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.errors import PathError

__all__ = ["Path"]


class Path:
    """An immutable sequence of adjacent edges in a road network.

    Parameters
    ----------
    edges:
        The edge ids, in traversal order.
    vertices:
        The vertex ids visited, in order.  Must have exactly one more element
        than ``edges``.
    """

    __slots__ = ("_edges", "_vertices")

    def __init__(self, edges: Sequence[int], vertices: Sequence[int]):
        if len(vertices) != len(edges) + 1:
            raise PathError(
                f"a path over {len(edges)} edges must visit {len(edges) + 1} vertices, "
                f"got {len(vertices)}"
            )
        if not edges:
            raise PathError("a path must contain at least one edge")
        if len(set(edges)) != len(edges):
            raise PathError("a path must not repeat an edge")
        self._edges: tuple[int, ...] = tuple(int(e) for e in edges)
        self._vertices: tuple[int, ...] = tuple(int(v) for v in vertices)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> tuple[int, ...]:
        """The edge ids in traversal order."""
        return self._edges

    @property
    def vertices(self) -> tuple[int, ...]:
        """The vertex ids visited, in order (one more than the number of edges)."""
        return self._vertices

    @property
    def source(self) -> int:
        """The first vertex of the path."""
        return self._vertices[0]

    @property
    def target(self) -> int:
        """The last vertex of the path."""
        return self._vertices[-1]

    @property
    def cardinality(self) -> int:
        """The number of edges (the paper groups T-paths by this value)."""
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[int]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._edges == other._edges and self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash((self._edges, self._vertices))

    def __repr__(self) -> str:
        return f"Path(edges={list(self._edges)}, vertices={list(self._vertices)})"

    def is_simple(self) -> bool:
        """True when no vertex is visited twice (loops are not allowed in candidates)."""
        return len(set(self._vertices)) == len(self._vertices)

    def visits(self, vertex: int) -> bool:
        """True when ``vertex`` appears anywhere along the path."""
        return vertex in self._vertices

    # ------------------------------------------------------------------ #
    # Sub-path algebra
    # ------------------------------------------------------------------ #
    def sub_path(self, start: int, stop: int) -> "Path":
        """The sub-path covering edges ``start`` (inclusive) to ``stop`` (exclusive)."""
        if not 0 <= start < stop <= len(self._edges):
            raise PathError(f"invalid sub-path bounds [{start}, {stop}) for length {len(self)}")
        return Path(self._edges[start:stop], self._vertices[start : stop + 1])

    def prefix(self, length: int) -> "Path":
        """The prefix consisting of the first ``length`` edges."""
        return self.sub_path(0, length)

    def suffix(self, length: int) -> "Path":
        """The suffix consisting of the last ``length`` edges."""
        return self.sub_path(len(self) - length, len(self))

    def is_prefix_of(self, other: "Path") -> bool:
        """True when ``self`` equals the first ``len(self)`` edges of ``other``."""
        if len(self) > len(other):
            return False
        return other._edges[: len(self)] == self._edges

    def is_suffix_of(self, other: "Path") -> bool:
        """True when ``self`` equals the last ``len(self)`` edges of ``other``."""
        if len(self) > len(other):
            return False
        return other._edges[-len(self) :] == self._edges

    def is_sub_path_of(self, other: "Path") -> bool:
        """True when ``self`` appears as a contiguous edge block inside ``other``."""
        n, m = len(self), len(other)
        if n > m:
            return False
        return any(other._edges[i : i + n] == self._edges for i in range(m - n + 1))

    def index_of_edge(self, edge_id: int) -> int:
        """The position of ``edge_id`` within the path, or ``-1`` when absent."""
        try:
            return self._edges.index(edge_id)
        except ValueError:
            return -1

    # ------------------------------------------------------------------ #
    # Overlap and concatenation
    # ------------------------------------------------------------------ #
    def overlap_with(self, other: "Path") -> "Path | None":
        """The longest suffix of ``self`` that is a prefix of ``other``.

        Returns ``None`` when the two paths share no edges in that pattern.
        This is exactly the overlap ``p_i ∩ p_{i+1}`` used by the T-path
        assembly operation (Eq. 1): two consecutive T-paths in a coarsest
        sequence overlap on a common sub-path.
        """
        max_len = min(len(self), len(other))
        for length in range(max_len, 0, -1):
            if self._edges[-length:] == other._edges[:length]:
                return self.suffix(length)
        return None

    def follows(self, other: "Path") -> bool:
        """True when ``self`` starts at the vertex where ``other`` ends."""
        return self.source == other.target

    def concat(self, other: "Path") -> "Path":
        """Concatenate an adjacent path (``other.source == self.target``)."""
        if other.source != self.target:
            raise PathError(
                f"cannot concatenate: path ends at vertex {self.target} but the next "
                f"path starts at vertex {other.source}"
            )
        edges = self._edges + other._edges
        vertices = self._vertices + other._vertices[1:]
        return Path(edges, vertices)

    def merge_overlapping(self, other: "Path") -> "Path":
        """Merge with a path that overlaps this one (suffix of ``self`` = prefix of ``other``).

        The result covers the union of the two edge sequences; it is how two
        overlapping T-paths are merged into a V-path.
        """
        overlap = self.overlap_with(other)
        if overlap is None:
            raise PathError("paths do not overlap; use concat() for adjacent paths")
        extra = len(other) - len(overlap)
        if extra == 0:
            # ``other`` is entirely contained in the suffix of ``self``.
            return self
        edges = self._edges + other._edges[len(overlap) :]
        vertices = self._vertices + other._vertices[len(overlap) + 1 :]
        return Path(edges, vertices)

    def reversed_vertices(self) -> tuple[int, ...]:
        """The vertex sequence of the reversed path (used to build the reversed graph)."""
        return tuple(reversed(self._vertices))
