"""The path-centric uncertain road network (PACE model).

A PACE graph ``G_p = (V, E, P, W)`` extends the edge-centric graph with a set
of *T-paths*: paths traversed by at least ``τ`` trajectories, each carrying a
joint distribution over its per-edge costs (``W_J``) and the induced
total-cost distribution (``W``).  Computing the cost distribution of an
arbitrary path assembles the joints of the *coarsest* sequence of T-paths
covering it (Eq. 1), which preserves cost dependencies that the EDGE model's
convolution would lose.

This module provides:

* :class:`PaceGraph` — storage and indexing of edge weights and T-paths,
* the coarsest T-path sequence computation (:meth:`PaceGraph.coarsest_sequence`),
* exact path-cost evaluation under the PACE semantics, both as a full joint
  (:meth:`PaceGraph.path_joint_distribution`) and as a memory-friendly
  incremental chain over the coarsest sequence
  (:meth:`PaceGraph.path_cost_distribution`).
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.elements import ElementKind, WeightedElement
from repro.core.errors import GraphError, PathError
from repro.core.joint import JointDistribution
from repro.core.paths import Path
from repro.network.road_network import RoadNetwork

__all__ = ["PaceGraph", "DEFAULT_MAX_CHAIN_STATES"]

#: Default bound on the (last-element outcome, total) states kept while
#: walking a coarsest sequence (see :meth:`PaceGraph.path_cost_distribution`).
#: The frontier accelerator resumes chains from checkpoints and must prune
#: with exactly the same bound to stay result-identical.
DEFAULT_MAX_CHAIN_STATES = 4096


class PaceGraph:
    """A PACE uncertain road network: edge weights plus T-paths with joint costs."""

    def __init__(self, edge_graph: EdgeGraph, *, tau: int = 50):
        if tau < 1:
            raise GraphError("the trajectory threshold tau must be at least 1")
        self._edge_graph = edge_graph
        self._tau = tau
        self._tpaths: dict[tuple[int, ...], WeightedElement] = {}
        self._tpaths_by_source: dict[int, list[WeightedElement]] = {}
        self._tpaths_by_target: dict[int, list[WeightedElement]] = {}
        self._tpaths_by_first_edge: dict[int, list[WeightedElement]] = {}
        self._fingerprint: str | None = None
        self._max_cardinality: int | None = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RoadNetwork:
        """The structural road network."""
        return self._edge_graph.network

    @property
    def edge_graph(self) -> EdgeGraph:
        """The underlying edge-centric graph (edge weight function ``W`` on ``E``)."""
        return self._edge_graph

    @property
    def tau(self) -> int:
        """The trajectory-count threshold used when the T-paths were mined."""
        return self._tau

    @property
    def num_tpaths(self) -> int:
        """The number of multi-edge T-paths maintained in the graph."""
        return len(self._tpaths)

    def edge_weight(self, edge_id: int) -> Distribution:
        """The cost distribution of a single edge."""
        return self._edge_graph.weight(edge_id)

    def tpaths(self) -> Iterator[WeightedElement]:
        """Iterate over all T-paths."""
        return iter(self._tpaths.values())

    def has_tpath(self, edge_ids: Iterable[int]) -> bool:
        """True when a T-path with exactly this edge sequence is maintained."""
        return tuple(edge_ids) in self._tpaths

    def tpath(self, edge_ids: Iterable[int]) -> WeightedElement:
        """The T-path with exactly this edge sequence."""
        key = tuple(edge_ids)
        try:
            return self._tpaths[key]
        except KeyError as exc:
            raise GraphError(f"no T-path for edge sequence {key}") from exc

    def tpaths_from(self, vertex_id: int) -> list[WeightedElement]:
        """T-paths starting at a vertex."""
        return list(self._tpaths_by_source.get(vertex_id, []))

    def tpaths_into(self, vertex_id: int) -> list[WeightedElement]:
        """T-paths ending at a vertex."""
        return list(self._tpaths_by_target.get(vertex_id, []))

    def max_element_cardinality(self) -> int:
        """The largest number of edges any traversable element covers (>= 1).

        This bounds how far back a greedy CPS choice can reach: a T-path
        considered while ``covered`` edges are accounted for ends at most
        ``covered + max_element_cardinality()`` edges in.  The frontier
        accelerator uses it to resume CPS construction from a checkpoint
        that extending the path can never invalidate.
        """
        if self._max_cardinality is None:
            self._max_cardinality = max(
                (element.cardinality for element in self._tpaths.values()), default=1
            )
        return self._max_cardinality

    def content_fingerprint(self) -> str:
        """A stable digest of everything routing-relevant in this graph.

        Two independently built graphs with identical content — vertices with
        coordinates, edges with geometry, edge cost distributions, τ, and the
        T-paths with their joints — produce the same fingerprint, even in
        different processes.  This is the portable replacement for
        ``id(graph)``: heuristic cache keys and persisted bundles keyed by the
        fingerprint can be shared between engines and across process
        boundaries (the same deterministic dataset spec rebuilds the same
        graph, hence the same fingerprint).

        The digest is cached and invalidated by :meth:`add_tpath`; mutating
        the underlying :class:`~repro.core.edge_graph.EdgeGraph` directly
        after fingerprinting is not supported.
        """
        if self._fingerprint is None:
            self._fingerprint = self._compute_fingerprint()
        return self._fingerprint

    def _compute_fingerprint(self) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"pace-graph/v1")
        digest.update(struct.pack("<q", self._tau))
        network = self.network
        digest.update(struct.pack("<qq", network.num_vertices, network.num_edges))
        for vertex in sorted(network.vertices(), key=lambda v: v.vertex_id):
            digest.update(struct.pack("<qdd", vertex.vertex_id, vertex.x, vertex.y))
        for edge in sorted(network.edges(), key=lambda e: e.edge_id):
            digest.update(
                struct.pack(
                    "<qqqdd", edge.edge_id, edge.source, edge.target, edge.length, edge.speed_limit
                )
            )
            _hash_distribution(digest, self._edge_graph.weight(edge.edge_id))
        for key in sorted(self._tpaths):
            digest.update(struct.pack("<q", len(key)))
            digest.update(np.asarray(key, dtype=np.int64).tobytes())
            joint = self._tpaths[key].joint
            if joint is not None:
                for costs in sorted(joint.pmf):
                    _hash_floats(digest, costs)
                    digest.update(struct.pack("<d", joint.pmf[costs]))
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_tpath(self, path: Path, joint: JointDistribution, *, support: int = 0) -> WeightedElement:
        """Register a T-path with its joint distribution.

        Single-edge T-paths refine the corresponding edge weight rather than
        being stored in ``P`` (the paper's ``P`` contains paths; an edge's
        trajectory-derived distribution simply becomes ``W(e)``).
        """
        if tuple(joint.edge_ids) != path.edges:
            raise GraphError(
                f"joint distribution edges {joint.edge_ids} do not match the path edges {path.edges}"
            )
        self._fingerprint = None
        self._max_cardinality = None
        if path.cardinality == 1:
            self._edge_graph.set_weight(path.edges[0], joint.total_cost_distribution())
            return self.edge_element(path.edges[0])
        key = path.edges
        element = WeightedElement(
            kind=ElementKind.TPATH,
            path=path,
            distribution=joint.total_cost_distribution(),
            joint=joint,
            support=support,
        )
        self._tpaths[key] = element
        self._tpaths_by_source.setdefault(path.source, []).append(element)
        self._tpaths_by_target.setdefault(path.target, []).append(element)
        self._tpaths_by_first_edge.setdefault(path.edges[0], []).append(element)
        return element

    # ------------------------------------------------------------------ #
    # Elements (edges and T-paths) for traversal
    # ------------------------------------------------------------------ #
    def edge_element(self, edge_id: int) -> WeightedElement:
        """A single edge wrapped as a traversable weighted element."""
        segment = self.network.edge(edge_id)
        path = Path([segment.edge_id], [segment.source, segment.target])
        return WeightedElement(
            kind=ElementKind.EDGE,
            path=path,
            distribution=self._edge_graph.weight(edge_id),
        )

    def outgoing_elements(self, vertex_id: int) -> list[WeightedElement]:
        """Every edge or T-path leaving a vertex (what routing may extend with)."""
        elements = [self.edge_element(e.edge_id) for e in self.network.out_edges(vertex_id)]
        elements.extend(self._tpaths_by_source.get(vertex_id, []))
        return elements

    def incoming_elements(self, vertex_id: int) -> list[WeightedElement]:
        """Every edge or T-path arriving at a vertex (used by the heuristics' backward pass)."""
        elements = [self.edge_element(e.edge_id) for e in self.network.in_edges(vertex_id)]
        elements.extend(self._tpaths_by_target.get(vertex_id, []))
        return elements

    def out_degree_with_tpaths(self, vertex_id: int) -> int:
        """Number of traversable elements leaving a vertex (Fig. 10d statistic)."""
        return self.network.out_degree(vertex_id) + len(self._tpaths_by_source.get(vertex_id, []))

    # ------------------------------------------------------------------ #
    # Coarsest T-path sequence (CPS)
    # ------------------------------------------------------------------ #
    def coarsest_sequence(self, path: Path) -> list[WeightedElement]:
        """The coarsest sequence of overlapping T-paths/edges covering ``path``.

        The sequence is built greedily: at every step we pick, among the
        T-paths that match the path at a position overlapping what is already
        covered, the one reaching furthest; single edges are the fallback.
        This mirrors the "longest overlapping T-paths" rule of the paper
        (Section 2.2) and of the original PACE work.
        """
        return [element for element, _ in self.coarsest_tail(path.edges, 0)]

    def coarsest_tail(
        self, edges: tuple[int, ...], covered: int
    ) -> list[tuple[WeightedElement, int]]:
        """Resume the greedy CPS construction with ``covered`` leading edges done.

        Returns ``(element, end)`` pairs where ``end`` is the number of leading
        edges accounted for once the element is appended (the CPS milestone).
        ``coarsest_tail(path.edges, 0)`` walks exactly the
        :meth:`coarsest_sequence` elements.  With ``covered > 0`` the greedy
        continues as if the first ``covered`` edges were already accounted
        for, which is how the frontier accelerator extends a cached CPS
        prefix instead of rebuilding the sequence from scratch on every
        expansion.  Starting positions more than
        ``max_element_cardinality()`` edges behind the frontier are skipped —
        no element is long enough to reach past ``covered`` from there, so
        the produced sequence is identical to the full scan.
        """
        n = len(edges)
        window = self.max_element_cardinality()
        sequence: list[tuple[WeightedElement, int]] = []
        while covered < n:
            best: WeightedElement | None = None
            best_span: tuple[int, int] | None = None
            # Consider T-paths starting at any already-covered position (overlap)
            # or exactly at the frontier (adjacent).
            for start in range(max(0, covered - window + 1), covered + 1):
                for candidate in self._tpaths_by_first_edge.get(edges[start], []):
                    length = candidate.cardinality
                    end = start + length
                    if end <= covered or end > n:
                        continue
                    if edges[start:end] != candidate.path.edges:
                        continue
                    if best_span is None or end > best_span[1] or (
                        end == best_span[1] and start < best_span[0]
                    ):
                        best = candidate
                        best_span = (start, end)
            if best is None:
                best = self.edge_element(edges[covered])
                best_span = (covered, covered + 1)
            covered = best_span[1]
            sequence.append((best, covered))
        return sequence

    # ------------------------------------------------------------------ #
    # Path-cost evaluation under PACE semantics
    # ------------------------------------------------------------------ #
    def path_joint_distribution(self, path: Path) -> JointDistribution:
        """The full joint distribution ``D_J(P)`` over all edges of ``path`` (Eq. 1).

        Exponential in the path length in the worst case; intended for short
        paths and for testing.  Routing uses :meth:`path_cost_distribution`.
        """
        sequence = self.coarsest_sequence(path)
        result = sequence[0].joint_distribution()
        for element in sequence[1:]:
            result = result.assemble(element.joint_distribution())
        return result

    def path_cost_distribution(
        self,
        path: Path,
        *,
        max_support: int | None = None,
        max_states: int | None = DEFAULT_MAX_CHAIN_STATES,
    ) -> Distribution:
        """The total-cost distribution ``D(P)`` of a path under PACE semantics.

        The computation walks the coarsest sequence and maintains, for every
        possible cost vector of the *last* element, the distribution of the
        accumulated total.  This is exact for Eq. 1 (the chain only ever needs
        to condition on the edges shared with the next element, which are a
        subset of the last element's edges) while avoiding materialising the
        joint over all edges of the path.

        ``max_states`` bounds the number of (last-element outcome, total)
        states kept; when exceeded, the least likely states are merged into
        the closest surviving total, which keeps long-path evaluation fast at
        a negligible accuracy cost.  ``max_support`` optionally compresses the
        final distribution.
        """
        sequence = self.coarsest_sequence(path)
        states = self.seed_chain_states(sequence[0])
        previous = sequence[0]
        for element in sequence[1:]:
            states = self.chain_step(states, previous, element, max_states)
            previous = element
        return self.finish_chain_states(states, max_support)

    # The three pieces below are the state-chain walk of
    # :meth:`path_cost_distribution`, split so callers holding a partially
    # evaluated chain (the frontier accelerator's per-candidate checkpoints)
    # can resume it over a CPS tail instead of recomputing the whole path.
    # Every step builds fresh dicts, so a shared checkpoint is never mutated
    # by the children extending it.

    def seed_chain_states(
        self, first: WeightedElement
    ) -> dict[tuple[float, ...], dict[float, float]]:
        """The chain state after the first CPS element.

        State shape: (cost vector of the last element) -> {accumulated total
        -> probability}.
        """
        states: dict[tuple[float, ...], dict[float, float]] = {}
        for costs, prob in first.joint_distribution().items():
            states.setdefault(costs, {})[sum(costs)] = (
                states.get(costs, {}).get(sum(costs), 0.0) + prob
            )
        return states

    def chain_step(
        self,
        states: dict[tuple[float, ...], dict[float, float]],
        previous: WeightedElement,
        element: WeightedElement,
        max_states: int | None,
    ) -> dict[tuple[float, ...], dict[float, float]]:
        """Advance the chain by one CPS element (conditioning on the overlap).

        This is the plain-dict reference fold.  The frontier accelerator's
        batched expansion mode re-implements it as an array-native kernel
        (:mod:`repro.routing.accel`) that performs the identical float
        operations in the identical order; the parity suite pins the two
        bitwise equal.  Keeping this one free of ndarray staging preserves
        the pre-accelerator evaluation behaviour for ``expansion="scalar"``.
        """
        overlap = previous.path.overlap_with(element.path)
        element_joint = element.joint_distribution()
        new_states: dict[tuple[float, ...], dict[float, float]] = {}
        if overlap is None:
            for costs_next, prob_next in element_joint.items():
                added = sum(costs_next)
                bucket = new_states.setdefault(costs_next, {})
                for totals in states.values():
                    for total, prob in totals.items():
                        key = total + added
                        bucket[key] = bucket.get(key, 0.0) + prob * prob_next
        else:
            overlap_edges = overlap.edges
            overlap_count = len(overlap_edges)
            prev_positions = [previous.path.edges.index(e) for e in overlap_edges]
            overlap_marginal = element_joint.marginal(overlap_edges)
            for costs_next, prob_next in element_joint.items():
                overlap_costs = costs_next[:overlap_count]
                denominator = overlap_marginal.probability_of(overlap_costs)
                if denominator <= 0:
                    continue
                added = sum(costs_next[overlap_count:])
                conditional = prob_next / denominator
                bucket = new_states.setdefault(costs_next, {})
                for costs_prev, totals in states.items():
                    if tuple(costs_prev[i] for i in prev_positions) != overlap_costs:
                        continue
                    for total, prob in totals.items():
                        key = total + added
                        bucket[key] = bucket.get(key, 0.0) + prob * conditional
        result = {costs: totals for costs, totals in new_states.items() if totals}
        if not result:
            raise PathError(
                "path cost evaluation lost all probability mass; the T-path joints are "
                "mutually inconsistent on their overlaps"
            )
        if max_states is not None:
            result = _prune_states(result, max_states)
        return result

    def finish_chain_states(
        self,
        states: dict[tuple[float, ...], dict[float, float]],
        max_support: int | None,
    ) -> Distribution:
        """Collapse chain states into the path's total-cost distribution.

        Like :meth:`chain_step`, this is the plain-dict reference; the
        accelerator's array-native collapse must match it bitwise.
        """
        accumulator: dict[float, float] = {}
        for totals in states.values():
            for total, prob in totals.items():
                accumulator[total] = accumulator.get(total, 0.0) + prob
        result = Distribution(accumulator.items(), normalise=True)
        if max_support is not None and len(result) > max_support:
            result = result.compress(max_support)
        return result

    def path_expected_cost(self, path: Path) -> float:
        """Expected travel cost of a path under PACE semantics."""
        return self.path_cost_distribution(path).expectation()

    def path_min_cost(self, path: Path) -> float:
        """Minimum possible travel cost of a path (sum of minimum edge costs)."""
        return self._edge_graph.path_min_cost(path)

    def __repr__(self) -> str:
        return (
            f"PaceGraph(network={self.network.name!r}, tau={self._tau}, "
            f"tpaths={self.num_tpaths})"
        )


def _hash_floats(digest, values) -> None:
    """Feed a sequence of floats into ``digest`` as their exact IEEE-754 bytes."""
    digest.update(np.asarray(values, dtype=np.float64).tobytes())


def _hash_distribution(digest, distribution: Distribution) -> None:
    """Feed a cost distribution (support and probabilities) into ``digest``."""
    digest.update(struct.pack("<q", len(distribution)))
    _hash_floats(digest, distribution.values_array)
    _hash_floats(digest, distribution.probabilities_array)


def _prune_states(
    states: dict[tuple[float, ...], dict[float, float]], max_states: int
) -> dict[tuple[float, ...], dict[float, float]]:
    """Keep at most ``max_states`` (outcome, total) entries, merging the rest.

    Low-probability totals are folded into the most likely total of the same
    outcome so probability mass (and approximately the mean) is preserved.
    """
    flat = [
        (prob, costs, total)
        for costs, totals in states.items()
        for total, prob in totals.items()
    ]
    if len(flat) <= max_states:
        return states
    flat.sort(reverse=True)
    kept = flat[:max_states]
    dropped = flat[max_states:]
    pruned: dict[tuple[float, ...], dict[float, float]] = {}
    for prob, costs, total in kept:
        pruned.setdefault(costs, {})[total] = pruned.get(costs, {}).get(total, 0.0) + prob
    for prob, costs, total in dropped:
        bucket = pruned.get(costs)
        if bucket:
            # merge onto the nearest surviving total of the same outcome
            nearest = min(bucket, key=lambda t, total=total: abs(t - total))
            bucket[nearest] += prob
        else:
            # outcome lost entirely: fold into the globally most likely state
            top_costs = kept[0][1]
            top_total = kept[0][2]
            pruned[top_costs][top_total] += prob
    return pruned
