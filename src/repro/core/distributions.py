"""Discrete travel-cost distributions.

The EDGE and PACE models both describe travel costs as discrete distributions,
e.g. ``{[8, 0.9], [10, 0.1]}`` meaning a cost of 8 units with probability 0.9
and 10 units with probability 0.1.  This module provides an immutable
:class:`Distribution` value type together with the operations the routing
algorithms need:

* convolution (``⊕`` in the paper) for summing independent costs,
* cumulative probabilities (``Prob(cost <= B)`` — the arriving-on-time
  objective),
* first-order stochastic dominance (the pruning rule used in the EDGE model
  and, after V-paths are introduced, in the PACE model),
* expectation / min / max summaries used as search priorities,
* KL divergence, used by the accuracy experiment (Fig. 10b), and
* re-binning and truncation used to keep supports bounded during long
  convolution chains.

Costs are represented as floats; in practice the estimators in
:mod:`repro.tpaths` round costs onto a configurable resolution grid so that
supports stay small.

Internally every distribution is backed by a pair of sorted NumPy arrays
(support values and probabilities) plus a precomputed CDF, so that the hot
operations of the routing algorithms — convolution, CDF lookups, stochastic
dominance, compression and sampling — run as vectorized array kernels rather
than Python-level dict and tuple scans.  Construction and convolution are
size-adaptive: below :data:`VECTORIZE_THRESHOLD` support values the fixed
per-call overhead of NumPy dominates, so tiny distributions (the bulk of raw
edge weights) take a scalar fast path that produces bit-identical state.  The
public API is unchanged: :attr:`Distribution.support` and
:attr:`Distribution.probabilities` are still tuples of plain Python floats,
so persistence codecs and report renderers can keep treating distributions as
JSON-friendly value objects.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import DistributionError

__all__ = ["Distribution", "PROBABILITY_TOLERANCE", "SUPPORT_MERGE_TOLERANCE"]

#: Probabilities are accepted as normalised when they sum to 1 within this tolerance.
PROBABILITY_TOLERANCE = 1e-6

#: Support values closer than this (relative to their magnitude, with an absolute
#: floor of 1) are considered the same cost and merged.  Long convolution chains
#: otherwise accumulate near-duplicate supports (``0.1 + 0.2`` vs ``0.3``) that
#: bloat distributions and defeat ``max_support``.
SUPPORT_MERGE_TOLERANCE = 1e-9

#: Inputs smaller than this take the scalar construction/convolution path; the
#: crossover where NumPy's fixed per-call overhead is amortised sits around a
#: few dozen elements on current hardware.
VECTORIZE_THRESHOLD = 32


def _merge_close_values(
    values: np.ndarray, probs: np.ndarray, *, tolerance: float = SUPPORT_MERGE_TOLERANCE
) -> tuple[np.ndarray, np.ndarray]:
    """Merge support values that coincide within ``tolerance``, summing their masses.

    Values are grouped by scanning the sorted support and starting a new group
    whenever the gap to the previous value exceeds ``tolerance * max(1, |v|)``;
    each group collapses onto its first (smallest) value, so bit-identical
    values merge exactly — no arithmetic perturbs the survivor — and values
    that differ only by float rounding noise (``0.1 + 0.2`` vs ``0.3``) merge
    within the tolerance.
    """
    order = np.argsort(values, kind="stable")
    values = values[order]
    probs = probs[order]
    if values.size <= 1:
        return values, probs
    gaps = np.diff(values)
    scale = np.maximum(1.0, np.abs(values[:-1]))
    starts = np.concatenate(([True], gaps > tolerance * scale))
    groups = np.cumsum(starts) - 1
    count = int(groups[-1]) + 1
    if count == values.size:
        return values, probs
    mass = np.bincount(groups, weights=probs, minlength=count)
    return values[starts], mass


class Distribution:
    """An immutable discrete distribution over travel costs.

    Instances are created from ``(cost, probability)`` pairs and validated:
    probabilities must be non-negative and sum to one (within
    :data:`PROBABILITY_TOLERANCE`); costs must be finite and non-negative.

    Examples
    --------
    >>> d = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
    >>> d.expectation()
    8.2
    >>> d.prob_at_most(9)
    0.9
    """

    __slots__ = ("_values", "_probs", "_cdf", "_cdf0", "_support", "_probabilities")

    def __init__(self, pairs: Iterable[tuple[float, float]], *, normalise: bool = False):
        pairs = list(pairs)
        if not pairs:
            raise DistributionError("a distribution needs at least one (cost, probability) pair")
        try:
            values = [float(value) for value, _ in pairs]
            probs = [float(prob) for _, prob in pairs]
        except (TypeError, ValueError) as exc:
            raise DistributionError("pairs must be (cost, probability) 2-tuples") from exc
        if len(values) <= VECTORIZE_THRESHOLD:
            self._init_small(values, probs, normalise=normalise)
        else:
            self._init_from_arrays(
                np.asarray(values, dtype=float), np.asarray(probs, dtype=float), normalise=normalise
            )

    def _init_small(
        self, values: list[float], probs: list[float], *, normalise: bool, validate: bool = True
    ) -> None:
        """Scalar constructor path: same merge/validate semantics, no array overhead.

        Mirrors :meth:`_init_from_arrays` exactly (including the chained
        tolerance merge relative to the previous sorted value) so that the two
        paths produce identical state for the same input.
        """
        if len(values) > 1:
            order = sorted(range(len(values)), key=values.__getitem__)
            merged_values: list[float] = []
            merged_probs: list[float] = []
            previous = None
            for index in order:
                value = values[index]
                prob = probs[index]
                if previous is not None and value - previous <= SUPPORT_MERGE_TOLERANCE * max(
                    1.0, abs(previous)
                ):
                    merged_probs[-1] += prob
                else:
                    merged_values.append(value)
                    merged_probs.append(prob)
                previous = value
            values, probs = merged_values, merged_probs
        if validate:
            kept_values: list[float] = []
            kept_probs: list[float] = []
            for value, prob in zip(values, probs):
                if not math.isfinite(value) or value < 0:
                    raise DistributionError(f"cost values must be finite and non-negative, got {value!r}")
                if not math.isfinite(prob) or prob < -PROBABILITY_TOLERANCE:
                    raise DistributionError(f"probabilities must be non-negative, got {prob!r}")
                if prob <= 0:
                    continue
                kept_values.append(value)
                kept_probs.append(prob)
        else:
            kept_values, kept_probs = list(values), list(probs)
        if not kept_values:
            raise DistributionError("all probabilities were zero")
        total = sum(kept_probs)
        if not normalise and abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise DistributionError(f"probabilities must sum to 1, got {total!r}")
        # Remove the residual numerical drift so long convolution chains stay normalised.
        kept_probs = [prob / total for prob in kept_probs]
        self._values: np.ndarray = np.asarray(kept_values, dtype=float)
        self._probs: np.ndarray = np.asarray(kept_probs, dtype=float)
        self._cdf: np.ndarray = np.cumsum(self._probs)
        self._cdf0 = None
        self._support: tuple[float, ...] = tuple(kept_values)
        self._probabilities: tuple[float, ...] = tuple(kept_probs)

    def _init_from_arrays(
        self,
        values: np.ndarray,
        probs: np.ndarray,
        *,
        normalise: bool,
        validate: bool = True,
        merge: bool = True,
    ) -> None:
        """Vectorized constructor body: merge, validate, normalise, precompute the CDF.

        Internal callers whose arrays are clean by construction (e.g.
        :meth:`compress` bucketing onto a fresh finite grid with positive
        masses) pass ``validate=False`` / ``merge=False`` to skip the
        corresponding array passes.
        """
        if validate:
            # Values are checked before merging: the tolerance merge groups by
            # gaps to the previous sorted value, and a NaN gap compares False,
            # which would silently absorb a NaN cost into the preceding group.
            bad_values = ~(np.isfinite(values) & (values >= 0))
            if bad_values.any():
                offender = values[bad_values][0]
                raise DistributionError(
                    f"cost values must be finite and non-negative, got {float(offender)!r}"
                )
        if merge:
            values, probs = _merge_close_values(values, probs)
        if validate:
            bad_probs = ~np.isfinite(probs) | (probs < -PROBABILITY_TOLERANCE)
            if bad_probs.any():
                offender = probs[bad_probs][0]
                raise DistributionError(f"probabilities must be non-negative, got {float(offender)!r}")
            keep = probs > 0
            if not keep.any():
                raise DistributionError("all probabilities were zero")
            values = values[keep]
            probs = probs[keep]
        total = float(probs.sum())
        if not normalise and abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise DistributionError(f"probabilities must sum to 1, got {total!r}")
        # Remove the residual numerical drift so long convolution chains stay normalised.
        probs = probs / total
        self._values: np.ndarray = values
        self._probs: np.ndarray = probs
        self._cdf: np.ndarray = np.cumsum(probs)
        self._cdf0 = None
        self._support: tuple[float, ...] = tuple(values.tolist())
        self._probabilities: tuple[float, ...] = tuple(probs.tolist())

    @classmethod
    def from_support_arrays(
        cls, values: np.ndarray, probs: np.ndarray, *, normalise: bool = False
    ) -> "Distribution":
        """Construct from parallel float64 support arrays, bitwise like pairs.

        Equivalent to ``Distribution(zip(values.tolist(), probs.tolist()))``
        without round-tripping through Python pair tuples: the small-support
        path receives exactly the lists the pairs constructor would build,
        and the vectorized path exactly its arrays, so the resulting state
        is bit-for-bit the same.  Used by hot callers (the frontier
        accelerator's chain finish) that already hold the support as arrays.
        """
        if len(values) == 0:
            raise DistributionError(
                "a distribution needs at least one (cost, probability) pair"
            )
        self = cls.__new__(cls)
        if len(values) <= VECTORIZE_THRESHOLD:
            self._init_small(values.tolist(), probs.tolist(), normalise=normalise)
        else:
            self._init_from_arrays(
                np.asarray(values, dtype=float),
                np.asarray(probs, dtype=float),
                normalise=normalise,
            )
        return self

    @classmethod
    def from_normalised(
        cls, values: Sequence[float], probs: Sequence[float]
    ) -> "Distribution":
        """Reconstruct a distribution from already-normalised persisted state.

        The regular constructor rescales probabilities by their sum to shed
        numerical drift — the right behaviour while *computing*, but wrong
        while *loading*: dividing by a sum one ULP away from 1.0 perturbs
        every probability, so a persisted graph would re-load with a
        different content fingerprint than it was saved under.  This path
        restores the exact floats, provided they already look like serialised
        distribution state: strictly increasing finite non-negative costs and
        positive probabilities summing to 1 within the probability tolerance.
        Raises :class:`DistributionError` otherwise.
        """
        try:
            values_array = np.asarray(values, dtype=float)
            probs_array = np.asarray(probs, dtype=float)
        except (TypeError, ValueError) as exc:
            raise DistributionError(f"persisted pairs must be numeric: {exc}") from exc
        if values_array.size == 0:
            raise DistributionError("a distribution needs at least one (cost, probability) pair")
        if values_array.shape != probs_array.shape or values_array.ndim != 1:
            raise DistributionError(
                "persisted costs and probabilities must be equal-length 1-d sequences, "
                f"got shapes {values_array.shape} and {probs_array.shape}"
            )
        if not (np.isfinite(values_array).all() and (values_array >= 0).all()):
            raise DistributionError("persisted cost values must be finite and non-negative")
        if values_array.size > 1 and not (np.diff(values_array) > 0).all():
            raise DistributionError("persisted cost values must be strictly increasing")
        if not (np.isfinite(probs_array).all() and (probs_array > 0).all()):
            raise DistributionError("persisted probabilities must be positive and finite")
        total = float(probs_array.sum())
        if abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise DistributionError(f"persisted probabilities must sum to 1, got {total!r}")
        self = object.__new__(cls)
        self._values = values_array
        self._probs = probs_array
        self._cdf = np.cumsum(probs_array)
        self._cdf0 = None
        self._support = tuple(values_array.tolist())
        self._probabilities = tuple(probs_array.tolist())
        return self

    @classmethod
    def _from_arrays(
        cls,
        values: np.ndarray,
        probs: np.ndarray,
        *,
        normalise: bool = True,
        validate: bool = True,
        merge: bool = True,
    ) -> "Distribution":
        """Fast internal constructor from raw (unsorted, possibly duplicated) arrays."""
        self = object.__new__(cls)
        if values.size == 0:
            raise DistributionError("a distribution needs at least one (cost, probability) pair")
        self._init_from_arrays(
            np.asarray(values, dtype=float),
            np.asarray(probs, dtype=float),
            normalise=normalise,
            validate=validate,
            merge=merge,
        )
        return self

    @classmethod
    def _from_lists(
        cls,
        values: list[float],
        probs: list[float],
        *,
        normalise: bool = True,
        validate: bool = True,
    ) -> "Distribution":
        """Fast internal constructor from raw scalar lists."""
        self = object.__new__(cls)
        if not values:
            raise DistributionError("a distribution needs at least one (cost, probability) pair")
        if len(values) <= VECTORIZE_THRESHOLD:
            self._init_small(values, probs, normalise=normalise, validate=validate)
        else:
            self._init_from_arrays(
                np.asarray(values, dtype=float),
                np.asarray(probs, dtype=float),
                normalise=normalise,
                validate=validate,
            )
        return self

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]], *, normalise: bool = False) -> "Distribution":
        """Build a distribution from ``(cost, probability)`` pairs."""
        return cls(pairs, normalise=normalise)

    @classmethod
    def from_mapping(cls, mapping: Mapping[float, float], *, normalise: bool = False) -> "Distribution":
        """Build a distribution from a ``{cost: probability}`` mapping."""
        return cls(mapping.items(), normalise=normalise)

    @classmethod
    def point(cls, value: float) -> "Distribution":
        """A deterministic cost (probability mass 1 on ``value``)."""
        return cls([(value, 1.0)])

    @classmethod
    def from_samples(cls, samples: Sequence[float], *, resolution: float = 1.0) -> "Distribution":
        """Estimate an empirical distribution from observed costs.

        ``resolution`` is the histogram bin width: each sample is rounded to
        the nearest multiple of ``resolution`` before counting.  This mirrors
        how the paper instantiates edge and T-path weights from trajectories.
        """
        samples = np.asarray(list(samples), dtype=float)
        if samples.size == 0:
            raise DistributionError("cannot estimate a distribution from zero samples")
        if resolution <= 0:
            raise DistributionError("resolution must be positive")
        if not np.all(np.isfinite(samples) & (samples >= 0)):
            offender = samples[~(np.isfinite(samples) & (samples >= 0))][0]
            raise DistributionError(f"samples must be finite and non-negative, got {float(offender)!r}")
        binned = np.round(samples / resolution) * resolution
        values, counts = np.unique(binned, return_counts=True)
        return cls._from_arrays(values, counts / samples.size, normalise=True)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def support(self) -> tuple[float, ...]:
        """The cost values carrying positive probability, in increasing order."""
        return self._support

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Probabilities aligned with :attr:`support`."""
        return self._probabilities

    @property
    def values_array(self) -> np.ndarray:
        """The support as a float64 array (treat as read-only; shared, not copied).

        Batch consumers — the Eq. 5 Bellman kernel, vectorized ``maxProb`` —
        read this instead of re-materialising :attr:`support` tuples.
        """
        return self._values

    @property
    def probabilities_array(self) -> np.ndarray:
        """Probabilities aligned with :attr:`values_array` (treat as read-only)."""
        return self._probs

    @property
    def cdf_array(self) -> np.ndarray:
        """``Prob(cost <= v)`` for each ``v`` in :attr:`values_array` (read-only).

        The cumulative masses the dominance pruner compares wholesale; equal to
        ``cdf_many(values_array)`` without the binary searches.
        """
        return self._cdf

    def items(self) -> Iterator[tuple[float, float]]:
        """Iterate over ``(cost, probability)`` pairs in increasing cost order."""
        return zip(self._support, self._probabilities)

    def __len__(self) -> int:
        return len(self._support)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return self.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self._support == other._support and all(
            abs(a - b) <= PROBABILITY_TOLERANCE for a, b in zip(self._probabilities, other._probabilities)
        )

    def __hash__(self) -> int:
        return hash((self._support, tuple(round(p, 9) for p in self._probabilities)))

    def __repr__(self) -> str:
        pairs = ", ".join(f"[{v:g}, {p:.3g}]" for v, p in self.items())
        return f"Distribution({{{pairs}}})"

    def is_close(self, other: "Distribution", *, tolerance: float = 1e-9) -> bool:
        """True when both distributions have the same support and near-equal probabilities."""
        if self._support != other._support:
            return False
        return all(abs(a - b) <= tolerance for a, b in zip(self._probabilities, other._probabilities))

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def expectation(self) -> float:
        """The expected cost (the AVG column in Table 1 of the paper)."""
        return float(np.dot(self._values, self._probs))

    def variance(self) -> float:
        """The variance of the cost."""
        mean = self.expectation()
        return float(np.dot(self._probs, (self._values - mean) ** 2))

    def min(self) -> float:
        """The smallest cost with positive probability (used by budget pruning)."""
        return self._support[0]

    def max(self) -> float:
        """The largest cost with positive probability."""
        return self._support[-1]

    def pdf(self, value: float, *, tolerance: float = 1e-9) -> float:
        """Probability mass at ``value`` (0 when ``value`` is not in the support)."""
        # Scalar lookups bisect the cached tuples: a single-point np.searchsorted
        # costs more in call overhead than the whole binary search.
        index = bisect_left(self._support, value)
        for candidate in (index - 1, index):
            if 0 <= candidate < len(self._support) and abs(self._support[candidate] - value) <= tolerance:
                return self._probabilities[candidate]
        return 0.0

    def cdf(self, value: float) -> float:
        """``Prob(cost <= value)``."""
        index = bisect_right(self._support, value)
        if index == 0:
            return 0.0
        return float(self._cdf[index - 1])

    def cdf_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cdf` over an array of query points."""
        return self._cdf_at(points)

    def cdf_before_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized left-limit CDF, ``Prob(cost < x)`` per query point.

        Where :meth:`cdf_many` includes the mass sitting exactly at ``x``,
        this excludes it — the value of the CDF just below each point, which
        is what dominance comparisons need when sweeping another
        distribution's support.
        """
        indices = np.searchsorted(self._values, points, side="left")
        padded = self._cdf0
        if padded is None:
            padded = np.concatenate(([0.0], self._cdf))
            self._cdf0 = padded
        return padded[indices]

    def _cdf_at(self, points: np.ndarray) -> np.ndarray:
        indices = np.searchsorted(self._values, points, side="right")
        padded = self._cdf0
        if padded is None:
            # Cached lazily: dominance-heavy workloads query the same
            # distribution's CDF many times.
            padded = np.concatenate(([0.0], self._cdf))
            self._cdf0 = padded
        return padded[indices]

    def prob_at_most(self, budget: float) -> float:
        """Alias for :meth:`cdf`; the arriving-on-time objective ``Prob(D(P) <= B)``."""
        return self.cdf(budget)

    def quantile(self, q: float) -> float:
        """The smallest cost ``c`` with ``Prob(cost <= c) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must lie in [0, 1], got {q!r}")
        index = int(np.searchsorted(self._cdf, q - PROBABILITY_TOLERANCE, side="left"))
        if index >= self._values.size:
            return self._support[-1]
        return self._support[index]

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def convolve(self, other: "Distribution", *, max_support: int | None = None) -> "Distribution":
        """The distribution of the sum of two independent costs (``⊕`` in the paper).

        Computed as a vectorized outer sum of the two supports with an outer
        product of the masses, accumulated onto the grid of distinct sums;
        tiny operands (product of support sizes up to 64 cells) take a scalar
        accumulator path that beats the array setup overhead.
        ``max_support`` optionally re-bins the result so that its support has
        at most that many values; this bounds the cost of long convolution
        chains during routing without affecting correctness materially.
        """
        if len(self._support) * len(other._support) <= 64:
            accumulator: dict[float, float] = {}
            for v1, p1 in zip(self._support, self._probabilities):
                for v2, p2 in zip(other._support, other._probabilities):
                    total = v1 + v2
                    accumulator[total] = accumulator.get(total, 0.0) + p1 * p2
            result = Distribution._from_lists(
                list(accumulator.keys()), list(accumulator.values()), normalise=True, validate=False
            )
        else:
            sums = np.add.outer(self._values, other._values).ravel()
            masses = np.outer(self._probs, other._probs).ravel()
            grid, inverse = np.unique(sums, return_inverse=True)
            accumulated = np.bincount(inverse, weights=masses, minlength=grid.size)
            # Sums of finite non-negative costs with positive masses need no
            # validation; the tolerance merge still runs to collapse float-noise
            # near-duplicates that np.unique keeps apart.
            result = Distribution._from_arrays(grid, accumulated, normalise=True, validate=False)
        if max_support is not None and len(result) > max_support:
            result = result.compress(max_support)
        return result

    def __add__(self, other: "Distribution") -> "Distribution":
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.convolve(other)

    def shift(self, offset: float) -> "Distribution":
        """Add a deterministic ``offset`` to every cost."""
        if offset < 0 and self._support[0] + offset < 0:
            raise DistributionError("shifting would create negative costs")
        return Distribution._from_arrays(self._values + offset, self._probs, normalise=True)

    def scale(self, factor: float) -> "Distribution":
        """Multiply every cost by a positive ``factor``."""
        if factor <= 0:
            raise DistributionError("scale factor must be positive")
        return Distribution._from_arrays(self._values * factor, self._probs, normalise=True)

    def rebin(self, resolution: float) -> "Distribution":
        """Round costs to the nearest multiple of ``resolution`` and merge masses."""
        if resolution <= 0:
            raise DistributionError("resolution must be positive")
        binned = np.round(self._values / resolution) * resolution
        return Distribution._from_arrays(binned, self._probs, normalise=True)

    def compress(self, max_support: int) -> "Distribution":
        """Reduce the support to at most ``max_support`` values.

        Mass is merged onto a uniform grid spanning ``[min, max]``; each value
        is mapped to the nearest grid point (integer bucketing).  The
        expectation is preserved up to the grid resolution.
        """
        if max_support < 1:
            raise DistributionError("max_support must be at least 1")
        if len(self) <= max_support:
            return self
        lo, hi = self.min(), self.max()
        if max_support == 1 or hi == lo:
            return Distribution.point(self.expectation())
        step = (hi - lo) / (max_support - 1)
        buckets = np.round((self._values - lo) / step).astype(np.int64)
        mass = np.bincount(buckets, weights=self._probs, minlength=max_support)
        grid = lo + np.arange(mass.size) * step
        occupied = mass > 0
        # The grid is sorted, distinct, finite and non-negative and every kept
        # bucket carries positive mass: skip the merge and validation passes.
        return Distribution._from_arrays(
            grid[occupied], mass[occupied], normalise=True, validate=False, merge=False
        )

    def truncate_above(self, budget: float) -> "Distribution":
        """Collapse all mass above ``budget`` onto a single overflow value.

        Useful during routing with a known budget: costs beyond the budget all
        mean "late", so their exact values are irrelevant.
        """
        at_most = self.cdf(budget)
        if at_most >= 1.0 - PROBABILITY_TOLERANCE:
            return self
        within = self._values <= budget
        overflow_value = max(self.max(), budget + 1.0)
        values = np.concatenate((self._values[within], [overflow_value]))
        probs = np.concatenate((self._probs[within], [1.0 - at_most]))
        return Distribution._from_arrays(values, probs, normalise=True)

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def stochastically_dominates(self, other: "Distribution", *, strict: bool = False) -> bool:
        """First-order stochastic dominance: smaller costs are uniformly more likely.

        ``self`` dominates ``other`` when ``self.cdf(x) >= other.cdf(x)`` for
        every ``x``.  With ``strict=True`` at least one inequality must be
        strict.  This is the pruning relation of the EDGE model and, after
        V-paths are introduced (Lemma 4.1), of the PACE model as well.  Both
        CDFs are evaluated on the merged support grid in one vectorized pass
        (scalar loop below the vectorization threshold).
        """
        # Cheap bail-out: if other has mass strictly below self's entire
        # support, self's CDF is 0 where other's is already positive.
        if self._support[0] > other._support[0] and other._probabilities[0] > PROBABILITY_TOLERANCE:
            return False
        if len(self._support) + len(other._support) <= VECTORIZE_THRESHOLD:
            some_strict = False
            for x in sorted(set(self._support) | set(other._support)):
                own_at = self.cdf(x)
                theirs_at = other.cdf(x)
                if own_at < theirs_at - PROBABILITY_TOLERANCE:
                    return False
                if own_at > theirs_at + PROBABILITY_TOLERANCE:
                    some_strict = True
            return some_strict if strict else True
        # Step CDFs only change at support points, so checking the (unsorted,
        # possibly duplicated) concatenation of both supports is equivalent to
        # checking the merged grid — and skips union1d's sort + dedup.
        points = np.concatenate((self._values, other._values))
        own = self._cdf_at(points)
        theirs = other._cdf_at(points)
        if bool(np.any(own < theirs - PROBABILITY_TOLERANCE)):
            return False
        if strict:
            return bool(np.any(own > theirs + PROBABILITY_TOLERANCE))
        return True

    def kl_divergence(self, other: "Distribution", *, epsilon: float = 1e-6) -> float:
        """KL divergence ``KL(self || other)`` on the union support.

        Zero probabilities in ``other`` are smoothed with ``epsilon`` so that
        the divergence stays finite, matching the accuracy evaluation of the
        paper (Fig. 10b) where estimated distributions may miss rare costs.
        """
        points = np.union1d(self._values, other._values)
        own = np.zeros(points.size)
        own[np.searchsorted(points, self._values)] = self._probs
        theirs = np.full(points.size, epsilon)
        positions = np.searchsorted(points, other._values)
        theirs[positions] = np.maximum(other._probs, epsilon)
        theirs = theirs / theirs.sum()
        positive = own > 0
        return float(np.sum(own[positive] * np.log(own[positive] / theirs[positive])))

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng, size: int = 1) -> list[float]:
        """Draw ``size`` independent samples using ``rng``.

        ``rng`` may be a ``random.Random`` or a NumPy ``Generator``.  Sampling
        inverts the precomputed CDF with ``np.searchsorted``, so every uniform
        draw maps to the exact support value whose cumulative probability
        covers it — including draws that land in the extreme tail when the
        stored probabilities sum to just under 1.
        """
        if size < 0:
            raise DistributionError("sample size must be non-negative")
        if size == 0:
            return []
        try:
            uniforms = np.asarray(rng.random(size), dtype=float)
        except TypeError:
            # random.Random.random takes no size argument.
            uniforms = np.array([rng.random() for _ in range(size)], dtype=float)
        indices = np.searchsorted(self._cdf, uniforms, side="left")
        indices = np.minimum(indices, self._values.size - 1)
        return self._values[indices].tolist()
