"""Discrete travel-cost distributions.

The EDGE and PACE models both describe travel costs as discrete distributions,
e.g. ``{[8, 0.9], [10, 0.1]}`` meaning a cost of 8 units with probability 0.9
and 10 units with probability 0.1.  This module provides an immutable
:class:`Distribution` value type together with the operations the routing
algorithms need:

* convolution (``⊕`` in the paper) for summing independent costs,
* cumulative probabilities (``Prob(cost <= B)`` — the arriving-on-time
  objective),
* first-order stochastic dominance (the pruning rule used in the EDGE model
  and, after V-paths are introduced, in the PACE model),
* expectation / min / max summaries used as search priorities,
* KL divergence, used by the accuracy experiment (Fig. 10b), and
* re-binning and truncation used to keep supports bounded during long
  convolution chains.

Costs are represented as floats; in practice the estimators in
:mod:`repro.tpaths` round costs onto a configurable resolution grid so that
supports stay small.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.errors import DistributionError

__all__ = ["Distribution", "PROBABILITY_TOLERANCE"]

#: Probabilities are accepted as normalised when they sum to 1 within this tolerance.
PROBABILITY_TOLERANCE = 1e-6


def _merge_close_values(pairs: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge identical support values, summing their probabilities."""
    merged: dict[float, float] = {}
    for value, prob in pairs:
        merged[value] = merged.get(value, 0.0) + prob
    return sorted(merged.items())


class Distribution:
    """An immutable discrete distribution over travel costs.

    Instances are created from ``(cost, probability)`` pairs and validated:
    probabilities must be non-negative and sum to one (within
    :data:`PROBABILITY_TOLERANCE`); costs must be finite and non-negative.

    Examples
    --------
    >>> d = Distribution.from_pairs([(8, 0.9), (10, 0.1)])
    >>> d.expectation()
    8.2
    >>> d.prob_at_most(9)
    0.9
    """

    __slots__ = ("_values", "_probs", "_cdf")

    def __init__(self, pairs: Iterable[tuple[float, float]], *, normalise: bool = False):
        merged = _merge_close_values(pairs)
        if not merged:
            raise DistributionError("a distribution needs at least one (cost, probability) pair")
        values = []
        probs = []
        for value, prob in merged:
            if not math.isfinite(value) or value < 0:
                raise DistributionError(f"cost values must be finite and non-negative, got {value!r}")
            if not math.isfinite(prob) or prob < -PROBABILITY_TOLERANCE:
                raise DistributionError(f"probabilities must be non-negative, got {prob!r}")
            if prob <= 0:
                continue
            values.append(float(value))
            probs.append(float(prob))
        if not values:
            raise DistributionError("all probabilities were zero")
        total = sum(probs)
        if normalise:
            probs = [p / total for p in probs]
        elif abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise DistributionError(f"probabilities must sum to 1, got {total!r}")
        else:
            # Remove the residual numerical drift so long convolution chains stay normalised.
            probs = [p / total for p in probs]
        self._values: tuple[float, ...] = tuple(values)
        self._probs: tuple[float, ...] = tuple(probs)
        cdf = []
        acc = 0.0
        for p in self._probs:
            acc += p
            cdf.append(acc)
        self._cdf: tuple[float, ...] = tuple(cdf)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]], *, normalise: bool = False) -> "Distribution":
        """Build a distribution from ``(cost, probability)`` pairs."""
        return cls(pairs, normalise=normalise)

    @classmethod
    def from_mapping(cls, mapping: Mapping[float, float], *, normalise: bool = False) -> "Distribution":
        """Build a distribution from a ``{cost: probability}`` mapping."""
        return cls(mapping.items(), normalise=normalise)

    @classmethod
    def point(cls, value: float) -> "Distribution":
        """A deterministic cost (probability mass 1 on ``value``)."""
        return cls([(value, 1.0)])

    @classmethod
    def from_samples(cls, samples: Sequence[float], *, resolution: float = 1.0) -> "Distribution":
        """Estimate an empirical distribution from observed costs.

        ``resolution`` is the histogram bin width: each sample is rounded to
        the nearest multiple of ``resolution`` before counting.  This mirrors
        how the paper instantiates edge and T-path weights from trajectories.
        """
        if not samples:
            raise DistributionError("cannot estimate a distribution from zero samples")
        if resolution <= 0:
            raise DistributionError("resolution must be positive")
        counts: dict[float, int] = {}
        for sample in samples:
            if sample < 0 or not math.isfinite(sample):
                raise DistributionError(f"samples must be finite and non-negative, got {sample!r}")
            binned = round(sample / resolution) * resolution
            counts[binned] = counts.get(binned, 0) + 1
        n = len(samples)
        return cls(((value, count / n) for value, count in counts.items()))

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def support(self) -> tuple[float, ...]:
        """The cost values carrying positive probability, in increasing order."""
        return self._values

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Probabilities aligned with :attr:`support`."""
        return self._probs

    def items(self) -> Iterator[tuple[float, float]]:
        """Iterate over ``(cost, probability)`` pairs in increasing cost order."""
        return zip(self._values, self._probs)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return self.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self._values == other._values and all(
            abs(a - b) <= PROBABILITY_TOLERANCE for a, b in zip(self._probs, other._probs)
        )

    def __hash__(self) -> int:
        return hash((self._values, tuple(round(p, 9) for p in self._probs)))

    def __repr__(self) -> str:
        pairs = ", ".join(f"[{v:g}, {p:.3g}]" for v, p in self.items())
        return f"Distribution({{{pairs}}})"

    def is_close(self, other: "Distribution", *, tolerance: float = 1e-9) -> bool:
        """True when both distributions have the same support and near-equal probabilities."""
        if self._values != other._values:
            return False
        return all(abs(a - b) <= tolerance for a, b in zip(self._probs, other._probs))

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def expectation(self) -> float:
        """The expected cost (the AVG column in Table 1 of the paper)."""
        return sum(v * p for v, p in self.items())

    def variance(self) -> float:
        """The variance of the cost."""
        mean = self.expectation()
        return sum(p * (v - mean) ** 2 for v, p in self.items())

    def min(self) -> float:
        """The smallest cost with positive probability (used by budget pruning)."""
        return self._values[0]

    def max(self) -> float:
        """The largest cost with positive probability."""
        return self._values[-1]

    def pdf(self, value: float, *, tolerance: float = 1e-9) -> float:
        """Probability mass at ``value`` (0 when ``value`` is not in the support)."""
        lo, hi = 0, len(self._values) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            v = self._values[mid]
            if abs(v - value) <= tolerance:
                return self._probs[mid]
            if v < value:
                lo = mid + 1
            else:
                hi = mid - 1
        return 0.0

    def cdf(self, value: float) -> float:
        """``Prob(cost <= value)``."""
        # Binary search for the right-most support value <= value.
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return 0.0
        return self._cdf[lo - 1]

    def prob_at_most(self, budget: float) -> float:
        """Alias for :meth:`cdf`; the arriving-on-time objective ``Prob(D(P) <= B)``."""
        return self.cdf(budget)

    def quantile(self, q: float) -> float:
        """The smallest cost ``c`` with ``Prob(cost <= c) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must lie in [0, 1], got {q!r}")
        for value, acc in zip(self._values, self._cdf):
            if acc >= q - PROBABILITY_TOLERANCE:
                return value
        return self._values[-1]

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def convolve(self, other: "Distribution", *, max_support: int | None = None) -> "Distribution":
        """The distribution of the sum of two independent costs (``⊕`` in the paper).

        ``max_support`` optionally re-bins the result so that its support has
        at most that many values; this bounds the cost of long convolution
        chains during routing without affecting correctness materially.
        """
        accumulator: dict[float, float] = {}
        for v1, p1 in self.items():
            for v2, p2 in other.items():
                total = v1 + v2
                accumulator[total] = accumulator.get(total, 0.0) + p1 * p2
        result = Distribution(accumulator.items(), normalise=True)
        if max_support is not None and len(result) > max_support:
            result = result.compress(max_support)
        return result

    def __add__(self, other: "Distribution") -> "Distribution":
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.convolve(other)

    def shift(self, offset: float) -> "Distribution":
        """Add a deterministic ``offset`` to every cost."""
        if offset < 0 and self._values[0] + offset < 0:
            raise DistributionError("shifting would create negative costs")
        return Distribution(((v + offset, p) for v, p in self.items()))

    def scale(self, factor: float) -> "Distribution":
        """Multiply every cost by a positive ``factor``."""
        if factor <= 0:
            raise DistributionError("scale factor must be positive")
        return Distribution(((v * factor, p) for v, p in self.items()))

    def rebin(self, resolution: float) -> "Distribution":
        """Round costs to the nearest multiple of ``resolution`` and merge masses."""
        if resolution <= 0:
            raise DistributionError("resolution must be positive")
        return Distribution(
            ((round(v / resolution) * resolution, p) for v, p in self.items()), normalise=True
        )

    def compress(self, max_support: int) -> "Distribution":
        """Reduce the support to at most ``max_support`` values.

        Mass is merged onto a uniform grid spanning ``[min, max]``; each value
        is mapped to the nearest grid point.  The expectation is preserved up
        to the grid resolution.
        """
        if max_support < 1:
            raise DistributionError("max_support must be at least 1")
        if len(self) <= max_support:
            return self
        lo, hi = self.min(), self.max()
        if max_support == 1 or hi == lo:
            return Distribution.point(self.expectation())
        step = (hi - lo) / (max_support - 1)
        accumulator: dict[float, float] = {}
        for v, p in self.items():
            idx = round((v - lo) / step)
            grid_value = lo + idx * step
            accumulator[grid_value] = accumulator.get(grid_value, 0.0) + p
        return Distribution(accumulator.items(), normalise=True)

    def truncate_above(self, budget: float) -> "Distribution":
        """Collapse all mass above ``budget`` onto a single overflow value.

        Useful during routing with a known budget: costs beyond the budget all
        mean "late", so their exact values are irrelevant.
        """
        at_most = self.cdf(budget)
        if at_most >= 1.0 - PROBABILITY_TOLERANCE:
            return self
        kept = [(v, p) for v, p in self.items() if v <= budget]
        overflow_mass = 1.0 - at_most
        overflow_value = max(self.max(), budget + 1.0)
        kept.append((overflow_value, overflow_mass))
        return Distribution(kept, normalise=True)

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def stochastically_dominates(self, other: "Distribution", *, strict: bool = False) -> bool:
        """First-order stochastic dominance: smaller costs are uniformly more likely.

        ``self`` dominates ``other`` when ``self.cdf(x) >= other.cdf(x)`` for
        every ``x``.  With ``strict=True`` at least one inequality must be
        strict.  This is the pruning relation of the EDGE model and, after
        V-paths are introduced (Lemma 4.1), of the PACE model as well.
        """
        points = sorted(set(self._values) | set(other._values))
        some_strict = False
        for x in points:
            own = self.cdf(x)
            theirs = other.cdf(x)
            if own < theirs - PROBABILITY_TOLERANCE:
                return False
            if own > theirs + PROBABILITY_TOLERANCE:
                some_strict = True
        return some_strict if strict else True

    def kl_divergence(self, other: "Distribution", *, epsilon: float = 1e-6) -> float:
        """KL divergence ``KL(self || other)`` on the union support.

        Zero probabilities in ``other`` are smoothed with ``epsilon`` so that
        the divergence stays finite, matching the accuracy evaluation of the
        paper (Fig. 10b) where estimated distributions may miss rare costs.
        """
        points = sorted(set(self._values) | set(other._values))
        own = [self.pdf(x) for x in points]
        theirs = [max(other.pdf(x), epsilon) for x in points]
        theirs_total = sum(theirs)
        theirs = [t / theirs_total for t in theirs]
        divergence = 0.0
        for p, q in zip(own, theirs):
            if p > 0:
                divergence += p * math.log(p / q)
        return divergence

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng, size: int = 1) -> list[float]:
        """Draw ``size`` independent samples using ``rng`` (a ``random.Random``)."""
        if size < 0:
            raise DistributionError("sample size must be non-negative")
        out = []
        for _ in range(size):
            u = rng.random()
            acc = 0.0
            chosen = self._values[-1]
            for value, prob in self.items():
                acc += prob
                if u <= acc:
                    chosen = value
                    break
            out.append(chosen)
        return out
