"""Scalar reference implementation of the distribution kernel.

This module preserves the original pure-Python semantics of
:class:`repro.core.distributions.Distribution` — dict-accumulator
convolution, tuple-scan CDF lookups, pairwise dominance over the merged
support — from before the NumPy rewrite.  It exists for two reasons:

* the property-based tests in ``tests/test_kernel_reference.py`` check that
  the vectorized kernel agrees with this (much simpler, obviously-correct)
  implementation on random distributions, and
* the micro-benchmark in ``benchmarks/test_kernel_microbench.py`` measures
  the vectorized kernel's speed-up against it on chained convolution and
  dominance workloads.

It is deliberately *not* exported from :mod:`repro.core`: production code
must use :class:`~repro.core.distributions.Distribution`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

__all__ = ["ScalarDistribution"]

_PROBABILITY_TOLERANCE = 1e-6


def _merge_identical_values(pairs: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge bit-identical support values, summing their probabilities."""
    merged: dict[float, float] = {}
    for value, prob in pairs:
        merged[value] = merged.get(value, 0.0) + prob
    return sorted(merged.items())


class ScalarDistribution:
    """The seed's dict-and-tuple distribution, kept as a reference oracle."""

    __slots__ = ("_values", "_probs", "_cdf")

    def __init__(self, pairs: Iterable[tuple[float, float]], *, normalise: bool = False):
        merged = _merge_identical_values(pairs)
        if not merged:
            raise ValueError("a distribution needs at least one (cost, probability) pair")
        values: list[float] = []
        probs: list[float] = []
        for value, prob in merged:
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"cost values must be finite and non-negative, got {value!r}")
            if not math.isfinite(prob) or prob < -_PROBABILITY_TOLERANCE:
                raise ValueError(f"probabilities must be non-negative, got {prob!r}")
            if prob <= 0:
                continue
            values.append(float(value))
            probs.append(float(prob))
        if not values:
            raise ValueError("all probabilities were zero")
        total = sum(probs)
        if not normalise and abs(total - 1.0) > _PROBABILITY_TOLERANCE:
            raise ValueError(f"probabilities must sum to 1, got {total!r}")
        probs = [p / total for p in probs]
        self._values: tuple[float, ...] = tuple(values)
        self._probs: tuple[float, ...] = tuple(probs)
        cdf = []
        acc = 0.0
        for p in self._probs:
            acc += p
            cdf.append(acc)
        self._cdf: tuple[float, ...] = tuple(cdf)

    # ------------------------------------------------------------------ #
    @property
    def support(self) -> tuple[float, ...]:
        return self._values

    @property
    def probabilities(self) -> tuple[float, ...]:
        return self._probs

    def items(self) -> Iterator[tuple[float, float]]:
        return zip(self._values, self._probs)

    def __len__(self) -> int:
        return len(self._values)

    def min(self) -> float:
        return self._values[0]

    def max(self) -> float:
        return self._values[-1]

    def expectation(self) -> float:
        return sum(v * p for v, p in self.items())

    def pdf(self, value: float, *, tolerance: float = 1e-9) -> float:
        for v, p in self.items():
            if abs(v - value) <= tolerance:
                return p
        return 0.0

    def cdf(self, value: float) -> float:
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return 0.0
        return self._cdf[lo - 1]

    def quantile(self, q: float) -> float:
        for value, acc in zip(self._values, self._cdf):
            if acc >= q - _PROBABILITY_TOLERANCE:
                return value
        return self._values[-1]

    def convolve(self, other: "ScalarDistribution", *, max_support: int | None = None) -> "ScalarDistribution":
        accumulator: dict[float, float] = {}
        for v1, p1 in self.items():
            for v2, p2 in other.items():
                total = v1 + v2
                accumulator[total] = accumulator.get(total, 0.0) + p1 * p2
        result = ScalarDistribution(accumulator.items(), normalise=True)
        if max_support is not None and len(result) > max_support:
            result = result.compress(max_support)
        return result

    def compress(self, max_support: int) -> "ScalarDistribution":
        if max_support < 1:
            raise ValueError("max_support must be at least 1")
        if len(self) <= max_support:
            return self
        lo, hi = self.min(), self.max()
        if max_support == 1 or hi == lo:
            return ScalarDistribution([(self.expectation(), 1.0)])
        step = (hi - lo) / (max_support - 1)
        accumulator: dict[float, float] = {}
        for v, p in self.items():
            idx = round((v - lo) / step)
            grid_value = lo + idx * step
            accumulator[grid_value] = accumulator.get(grid_value, 0.0) + p
        return ScalarDistribution(accumulator.items(), normalise=True)

    def stochastically_dominates(self, other: "ScalarDistribution", *, strict: bool = False) -> bool:
        points = sorted(set(self._values) | set(other._values))
        some_strict = False
        for x in points:
            own = self.cdf(x)
            theirs = other.cdf(x)
            if own < theirs - _PROBABILITY_TOLERANCE:
                return False
            if own > theirs + _PROBABILITY_TOLERANCE:
                some_strict = True
        return some_strict if strict else True
