"""Weighted graph elements: edges, T-paths and V-paths.

Both the PACE graph and the updated PACE graph (after V-paths are added)
expose the same kind of object when a routing algorithm asks "what can I
traverse from vertex ``v``?": a *weighted element*, which is either

* a single edge,
* a T-path (a path with enough trajectory support to have its own joint
  distribution), or
* a V-path (a virtual path whose distribution was pre-assembled from
  overlapping T-paths).

Every element carries the underlying :class:`~repro.core.paths.Path` (so
routing can expand it into road-network edges and avoid cycles) and the total
cost :class:`~repro.core.distributions.Distribution`.  T-paths additionally
carry their joint distribution, which is needed for the assembly operation and
for building V-paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.distributions import Distribution
from repro.core.joint import JointDistribution
from repro.core.paths import Path

__all__ = ["ElementKind", "WeightedElement"]


class ElementKind(str, enum.Enum):
    """The three kinds of traversable elements in (updated) PACE graphs."""

    EDGE = "edge"
    TPATH = "tpath"
    VPATH = "vpath"


@dataclass(frozen=True)
class WeightedElement:
    """A traversable element together with its cost information.

    Attributes
    ----------
    kind:
        Whether this is an edge, a T-path, or a V-path.
    path:
        The underlying sequence of road-network edges.
    distribution:
        The total-cost distribution ``W(element)``.
    joint:
        The joint per-edge distribution ``W_J(element)``; present for T-paths
        (and for V-paths while they are being built), ``None`` for plain
        edges whose joint is trivially their marginal.
    support:
        Number of trajectories that produced the element (0 for derived
        elements such as uncovered edges or V-paths).
    """

    kind: ElementKind
    path: Path
    distribution: Distribution
    joint: JointDistribution | None = None
    support: int = 0

    @property
    def source(self) -> int:
        """The vertex where the element starts."""
        return self.path.source

    @property
    def target(self) -> int:
        """The vertex where the element ends."""
        return self.path.target

    @property
    def cardinality(self) -> int:
        """The number of road-network edges the element covers."""
        return self.path.cardinality

    @property
    def min_cost(self) -> float:
        """The smallest possible cost of the element."""
        return self.distribution.min()

    def is_edge(self) -> bool:
        return self.kind is ElementKind.EDGE

    def is_tpath(self) -> bool:
        return self.kind is ElementKind.TPATH

    def is_vpath(self) -> bool:
        return self.kind is ElementKind.VPATH

    def joint_distribution(self) -> JointDistribution:
        """The joint distribution; synthesised from the marginal for single edges."""
        if self.joint is not None:
            return self.joint
        if self.path.cardinality != 1:
            raise ValueError(
                f"element over {self.path.cardinality} edges has no joint distribution"
            )
        edge_id = self.path.edges[0]
        return JointDistribution(
            (edge_id,), {(value,): prob for value, prob in self.distribution.items()}
        )
