"""Core data types of the PACE reproduction: distributions, paths and uncertain graphs."""

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.elements import ElementKind, WeightedElement
from repro.core.errors import (
    ConfigurationError,
    DataError,
    DistributionError,
    GraphError,
    HeuristicError,
    JointDistributionError,
    NoPathError,
    PathError,
    ReproError,
    RoutingError,
    UnknownEdgeError,
    UnknownVertexError,
)
from repro.core.joint import JointDistribution, assemble_sequence
from repro.core.pace_graph import PaceGraph
from repro.core.paths import Path

__all__ = [
    "Distribution",
    "JointDistribution",
    "assemble_sequence",
    "Path",
    "EdgeGraph",
    "PaceGraph",
    "ElementKind",
    "WeightedElement",
    "ReproError",
    "DistributionError",
    "JointDistributionError",
    "PathError",
    "GraphError",
    "UnknownVertexError",
    "UnknownEdgeError",
    "RoutingError",
    "NoPathError",
    "HeuristicError",
    "DataError",
    "ConfigurationError",
]
