"""Deterministic fault injection for the serving tier.

Robustness claims are only as good as the failures they were tested against,
so the serving tier carries its chaos harness with it: a
:class:`FaultInjector` is threaded through the server's seams (admission,
execution backend, reload watcher, request job) and each seam asks it, at the
moment the fault would naturally occur, whether to misbehave.  Faults are
*armed* with an explicit count and consumed one firing at a time — no random
sampling, no timing races — so the chaos test suite
(``tests/test_serving_faults.py``) can assert exact outcomes, and ``repro
serve --enable-fault-injection`` exposes the same switchboard over ``POST
/faults`` for manual drills.

The injectable faults (:data:`FAULT_NAMES`):

* ``crash-next-worker`` — hard-kill one process-pool worker before the next
  batch runs (exercises ``BrokenProcessPool`` recovery),
* ``delay-response``    — stall the next request job for ``delay_seconds``
  (exercises deadline expiry and late-result discarding),
* ``corrupt-reload``    — fail the next hot-reload boot with a
  :class:`~repro.core.errors.DataError` (exercises keep-serving-the-old-engine),
* ``fill-queue``        — make admission treat the queue as full for the next
  request (exercises structured ``overloaded`` rejection).

A disabled injector (the production default) refuses to arm anything and
never fires, so the seams cost one predicate call each.
"""

from __future__ import annotations

import threading

from repro.core.errors import ConfigurationError

__all__ = ["FAULT_NAMES", "FaultInjector"]

#: Every fault the serving tier knows how to inject.
FAULT_NAMES = ("crash-next-worker", "delay-response", "corrupt-reload", "fill-queue")


class FaultInjector:
    """The armed-fault switchboard shared by the serving tier's seams.

    Thread-safe: request handler threads, the reload watcher and the respawn
    loop all consult it concurrently.  ``arm`` raises
    :class:`~repro.core.errors.ConfigurationError` unless the injector was
    constructed with ``enabled=True`` — fault injection is opt-in per server
    process, never reachable by accident.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._armed: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._delay_seconds = 0.0

    def arm(self, fault: str, *, count: int = 1, delay_seconds: float | None = None) -> None:
        """Arm ``fault`` to fire ``count`` times (additive with prior arming)."""
        if not self.enabled:
            raise ConfigurationError(
                "fault injection is disabled on this server; start it with "
                "--enable-fault-injection (or FaultInjector(enabled=True)) to arm faults"
            )
        if fault not in FAULT_NAMES:
            raise ConfigurationError(
                f"unknown fault {fault!r}; choose from {', '.join(FAULT_NAMES)}"
            )
        if count < 1:
            raise ConfigurationError(f"fault count must be >= 1, got {count}")
        if delay_seconds is not None and delay_seconds < 0:
            raise ConfigurationError(f"delay_seconds must be >= 0, got {delay_seconds}")
        with self._lock:
            self._armed[fault] = self._armed.get(fault, 0) + count
            if delay_seconds is not None:
                self._delay_seconds = float(delay_seconds)

    def take(self, fault: str) -> bool:
        """Consume one armed firing of ``fault``; ``False`` when not armed.

        This is the seam-side call: it both decides *and* records, so a fault
        armed once fires exactly once no matter how many threads race it.
        """
        if not self.enabled:
            return False
        with self._lock:
            remaining = self._armed.get(fault, 0)
            if remaining <= 0:
                return False
            self._armed[fault] = remaining - 1
            self._fired[fault] = self._fired.get(fault, 0) + 1
            return True

    def delay_seconds(self) -> float:
        """The stall length a taken ``delay-response`` fault should apply."""
        with self._lock:
            return self._delay_seconds

    def disarm_all(self) -> None:
        """Drop every armed (not-yet-fired) fault."""
        with self._lock:
            self._armed.clear()

    def snapshot(self) -> dict:
        """Armed and fired counts, for ``/stats`` and the drill endpoint."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "armed": {name: count for name, count in sorted(self._armed.items()) if count},
                "fired": dict(sorted(self._fired.items())),
                "delay_seconds": self._delay_seconds,
            }
