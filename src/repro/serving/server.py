"""``repro serve``: the fault-tolerant HTTP serving tier over a routing engine.

:class:`RouteServer` is the long-lived process the offline pipeline hands its
artifact store to.  It composes the serving building blocks — admission
control (:mod:`repro.serving.admission`), per-request deadlines
(:mod:`repro.serving.deadlines`), pool supervision
(:mod:`repro.serving.resilience`), hot reload (:mod:`repro.serving.reload`)
and deterministic chaos (:mod:`repro.serving.faults`) — behind a small,
strict-JSON HTTP surface on a stdlib :class:`~http.server.ThreadingHTTPServer`:

* ``POST /route``   — one request object or an array of them; answers the
  wire-format :class:`~repro.routing.service.RouteResponse` shape(s).  Routed
  outcomes (including per-request taxonomy errors) are HTTP 200; whole-call
  failures use dedicated statuses: 400 malformed body, 429 ``overloaded``
  (with ``retry_after_ms``), 504 ``deadline_exceeded``, 500 ``internal``.
* ``GET /stats``    — engine counters and provenance plus admission, deadline,
  resilience, reload and fault-injection sections.
* ``GET /healthz``  — 200 while the preferred backend is serving and the last
  reload poll was clean; 503 (with the reasons) when degraded.
* ``POST /faults``  — the chaos switchboard; 404 unless the server was
  started with fault injection enabled.

The request path never leaks an exception or a traceback: every failure is a
structured error from the service taxonomy.  Results that outlive their
deadline are *discarded* (counted, never delivered late).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, cast

from repro.core.errors import ConfigurationError, DataError
from repro.persistence.codecs import strict_json_dumps, strict_json_loads
from repro.routing.backends import ProcessBackend
from repro.routing.service import RouteError, RouteResponse
from repro.serving.admission import AdmissionController
from repro.serving.deadlines import Clock, Deadline
from repro.serving.faults import FaultInjector
from repro.serving.reload import EngineReloader
from repro.serving.resilience import ResilientBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.engine import RouterSettings

__all__ = ["ServerConfig", "RouteServer"]

_BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class ServerConfig:
    """Everything tunable about a :class:`RouteServer`, validated up front."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free ephemeral port
    default_method: str = "V-BS-60"
    backend: str = "serial"
    workers: int = 2
    max_concurrency: int = 4
    queue_limit: int = 16
    default_deadline_ms: float = 10_000.0
    reload_poll_seconds: float = 2.0
    drain_timeout_seconds: float = 30.0
    max_body_bytes: int = 8_000_000
    enable_fault_injection: bool = False
    max_respawn_attempts: int = 5
    backoff_base_seconds: float = 0.1
    backoff_cap_seconds: float = 5.0
    #: Boot-time heuristic residency: ``"all"`` eagerly loads every persisted
    #: table (classic boot), ``"none"`` starts empty and faults tables in on
    #: first touch — the country-scale boot.  ``cache_bytes`` bounds the
    #: resident tier (LRU); ``None`` keeps everything resident.
    prewarm: str = "all"
    cache_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown serving backend {self.backend!r}; choose from {_BACKENDS}"
            )
        if self.default_deadline_ms <= 0:
            raise ConfigurationError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )
        if self.max_body_bytes < 1:
            raise ConfigurationError(f"max_body_bytes must be >= 1, got {self.max_body_bytes}")
        if self.prewarm not in ("all", "none"):
            raise ConfigurationError(
                f"prewarm must be 'all' or 'none', got {self.prewarm!r}"
            )
        if self.cache_bytes is not None and self.cache_bytes <= 0:
            raise ConfigurationError(
                f"cache_bytes must be a positive byte budget or None, got {self.cache_bytes}"
            )


class _ExpiredInQueue(Exception):
    """The request's deadline had already passed when a worker picked it up."""


class RouteServer:
    """The composed serving tier: boot from a store, serve until stopped."""

    def __init__(
        self,
        store_root: str | Path,
        config: ServerConfig | None = None,
        *,
        settings: "RouterSettings | None" = None,
        clock: Clock = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or ServerConfig()
        self._clock = clock
        self._sleep = sleep
        self.faults = FaultInjector(enabled=self.config.enable_fault_injection)
        self.reloader = EngineReloader(
            store_root,
            settings=settings,
            default_method=self.config.default_method,
            poll_seconds=self.config.reload_poll_seconds,
            drain_timeout_seconds=self.config.drain_timeout_seconds,
            faults=self.faults,
            prewarm=self.config.prewarm,
            cache_bytes=self.config.cache_bytes,
        )
        inner = (
            ProcessBackend(self.config.workers) if self.config.backend == "process" else None
        )
        self.backend = ResilientBackend(
            inner,
            max_respawn_attempts=self.config.max_respawn_attempts,
            backoff_base_seconds=self.config.backoff_base_seconds,
            backoff_cap_seconds=self.config.backoff_cap_seconds,
            faults=self.faults,
            sleep=sleep,
        )
        self.admission = AdmissionController(
            self.config.max_concurrency,
            self.config.queue_limit,
            faults=self.faults,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._httpd: _HTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._http_requests = 0
        self._deadline_exceeded = 0
        self._discarded_late_results = 0
        self._started_at = clock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RouteServer":
        """Bind the listening socket and start serving (idempotent)."""
        with self._lock:
            if self._httpd is not None:
                return self
            httpd = _HTTPServer((self.config.host, self.config.port), _Handler)
            httpd.route_server = self
            thread = threading.Thread(
                target=httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-serve-http",
                daemon=True,
            )
            self._httpd = httpd
            self._serve_thread = thread
        self.reloader.start()
        thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections, drain the pools, release the workers."""
        with self._lock:
            httpd = self._httpd
            thread = self._serve_thread
            self._httpd = None
            self._serve_thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=10.0)
        self.reloader.stop()
        self.admission.shutdown(wait=True)
        self.backend.close()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; raises unless :meth:`start` has run."""
        with self._lock:
            httpd = self._httpd
        if httpd is None:
            raise ConfigurationError("the server is not started; call start() first")
        host, port = httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def __enter__(self) -> "RouteServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Endpoint logic (transport-independent; the handler just dispatches)
    # ------------------------------------------------------------------ #
    def count_http_request(self) -> None:
        with self._lock:
            self._http_requests += 1

    def handle_route(self, body: bytes) -> tuple[int, object]:
        """``POST /route``: returns ``(http_status, wire_payload)``."""
        try:
            payload = strict_json_loads(body, what="route request body")
        except DataError as exc:
            return 400, _error_body("invalid_request", str(exc))
        single = isinstance(payload, dict)
        items: list[object] = [payload] if single else payload if isinstance(payload, list) else []
        if not items:
            return 400, _error_body(
                "invalid_request",
                "route body must be a request object or a non-empty array of them",
            )
        deadline = Deadline.after_ms(self._effective_deadline_ms(items), clock=self._clock)
        future = self.admission.admit(lambda: self._route_job(items, deadline))
        if future is None:
            hint = self.admission.retry_after_hint_ms()
            error = RouteError(
                "overloaded",
                f"server at capacity ({self.config.max_concurrency} running, "
                f"{self.config.queue_limit} queued); retry after {hint} ms",
                retry_after_ms=hint,
            )
            return 429, self._per_item(items, error, single)
        try:
            responses = future.result(timeout=max(0.0, deadline.remaining_seconds()))
        except TimeoutError:
            self._note_deadline_exceeded(future)
            error = RouteError(
                "deadline_exceeded",
                f"no result within the {deadline.budget_ms:g} ms deadline; "
                "any late result was discarded",
            )
            return 504, self._per_item(items, error, single)
        except _ExpiredInQueue:
            self._note_deadline_exceeded(None)
            error = RouteError(
                "deadline_exceeded",
                f"the {deadline.budget_ms:g} ms deadline expired while the request "
                "was still queued; routing was skipped",
            )
            return 504, self._per_item(items, error, single)
        except Exception as exc:  # noqa: BLE001 - transport boundary: answer, never raise
            error = RouteError("internal", f"request execution failed: {exc}")
            return 500, self._per_item(items, error, single)
        return 200, responses[0] if single else responses

    def _route_job(self, items: list[object], deadline: Deadline) -> list[dict]:
        """The admitted unit of work, run on an admission worker thread."""
        if deadline.expired():
            # Picked out of the queue too late: the answer could only be
            # late, so skip the routing work entirely.
            raise _ExpiredInQueue()
        if self.faults.take("delay-response"):
            # Simulated slow routing: the handler times out at the deadline
            # and the (late) result below is discarded, never delivered.
            self._sleep(self.faults.delay_seconds())
        with self.reloader.lease() as service:
            responses = service.handle_batch(
                cast("list[dict]", items), backend=self.backend
            )
        return [response.to_dict() for response in responses]

    def _effective_deadline_ms(self, items: list[object]) -> float:
        """The server's default deadline, tightened by any per-item budget."""
        budget_ms = self.config.default_deadline_ms
        for item in items:
            if isinstance(item, dict):
                value = item.get("deadline_ms")
                if isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0:
                    budget_ms = min(budget_ms, float(value))
        return budget_ms

    @staticmethod
    def _per_item(items: list[object], error: RouteError, single: bool) -> object:
        """The same structured error for every request in the call, ids echoed."""
        responses = []
        for item in items:
            request_id = item.get("request_id") if isinstance(item, dict) else None
            responses.append(
                RouteResponse(
                    ok=False,
                    request_id=request_id if isinstance(request_id, str) else None,
                    error=error,
                ).to_dict()
            )
        return responses[0] if single else responses

    def _note_deadline_exceeded(self, future: "Future[list[dict]] | None") -> None:
        with self._lock:
            self._deadline_exceeded += 1
        if future is not None and not future.cancel():
            # The job is already running (or just finished): its result must
            # not be delivered late, only counted as discarded.
            future.add_done_callback(self._note_late_result)

    def _note_late_result(self, future: "Future[list[dict]]") -> None:
        if future.cancelled() or future.exception() is not None:
            return
        with self._lock:
            self._discarded_late_results += 1

    def stats(self) -> dict:
        """``GET /stats``: every serving subsystem's counters in one document."""
        with self.reloader.lease() as service:
            engine_stats = asdict(service.stats())
        with self._lock:
            http_requests = self._http_requests
            deadline_exceeded = self._deadline_exceeded
            discarded = self._discarded_late_results
        return {
            "server": {
                "uptime_seconds": self._clock() - self._started_at,
                "http_requests": http_requests,
                "default_method": self.config.default_method,
            },
            "engine": engine_stats,
            "admission": self.admission.snapshot(),
            "deadlines": {
                "default_deadline_ms": self.config.default_deadline_ms,
                "deadline_exceeded": deadline_exceeded,
                "discarded_late_results": discarded,
            },
            "resilience": self.backend.snapshot(),
            "reload": self.reloader.snapshot(),
            "faults": self.faults.snapshot(),
        }

    def health(self) -> tuple[int, dict]:
        """``GET /healthz``: 200 only when nothing is degraded."""
        backend_healthy = self.backend.healthy()
        reload_healthy = self.reloader.healthy()
        healthy = backend_healthy and reload_healthy
        return 200 if healthy else 503, {
            "status": "ok" if healthy else "degraded",
            "backend_healthy": backend_healthy,
            "reload_healthy": reload_healthy,
            "resilience": self.backend.snapshot(),
            "reload": self.reloader.snapshot(),
        }

    def handle_faults(self, body: bytes) -> tuple[int, object]:
        """``POST /faults``: arm or disarm chaos (only when enabled)."""
        if not self.faults.enabled:
            return 404, _error_body(
                "invalid_request",
                "fault injection is disabled; start the server with --enable-fault-injection",
            )
        try:
            payload = strict_json_loads(body, what="fault request body")
        except DataError as exc:
            return 400, _error_body("invalid_request", str(exc))
        if not isinstance(payload, dict):
            return 400, _error_body("invalid_request", "fault body must be a JSON object")
        try:
            if payload.get("disarm"):
                self.faults.disarm_all()
            else:
                fault = payload.get("fault")
                if not isinstance(fault, str):
                    raise ConfigurationError("fault body needs a string 'fault' field")
                count = payload.get("count", 1)
                if isinstance(count, bool) or not isinstance(count, int):
                    raise ConfigurationError("'count' must be an integer")
                delay = payload.get("delay_seconds")
                if delay is not None and (
                    isinstance(delay, bool) or not isinstance(delay, (int, float))
                ):
                    raise ConfigurationError("'delay_seconds' must be a number")
                self.faults.arm(
                    fault, count=count, delay_seconds=None if delay is None else float(delay)
                )
        except ConfigurationError as exc:
            return 400, _error_body("invalid_request", str(exc))
        return 200, self.faults.snapshot()


def _error_body(code: str, message: str) -> dict:
    """A whole-call structured failure (nothing was routed)."""
    return {"ok": False, "error": RouteError(code, message).to_dict()}


class _HTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the backref handlers dispatch through."""

    daemon_threads = True
    route_server: RouteServer


class _Handler(BaseHTTPRequestHandler):
    """Thin dispatch onto :class:`RouteServer`; all logic lives there."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    @property
    def _route_server(self) -> RouteServer:
        return cast(_HTTPServer, self.server).route_server

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default stderr access log; /stats is the observable."""

    def _send_json(self, status: int, payload: object) -> None:
        data = strict_json_dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, handler: Callable[[], tuple[int, object]]) -> None:
        try:
            self._route_server.count_http_request()
            status, payload = handler()
            self._send_json(status, payload)
        except Exception as exc:  # noqa: BLE001 - never leak a traceback to the wire
            try:
                self._send_json(500, _error_body("internal", f"unexpected failure: {exc}"))
            except OSError:  # pragma: no cover - client already gone
                pass

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` (already answered) when oversized."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > self._route_server.config.max_body_bytes:
            self._send_json(
                413,
                _error_body(
                    "invalid_request",
                    f"request body of {length} bytes exceeds the "
                    f"{self._route_server.config.max_body_bytes} byte limit",
                ),
            )
            return None
        return self.rfile.read(length)

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/stats":
            self._dispatch(lambda: (200, self._route_server.stats()))
        elif path == "/healthz":
            self._dispatch(self._route_server.health)
        else:
            self._dispatch(lambda: (404, _error_body("not_found", f"unknown path {path!r}")))

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        body = self._read_body()
        if body is None:
            return
        if path == "/route":
            self._dispatch(lambda: self._route_server.handle_route(body))
        elif path == "/faults":
            self._dispatch(lambda: self._route_server.handle_faults(body))
        else:
            self._dispatch(lambda: (404, _error_body("not_found", f"unknown path {path!r}")))
