"""Per-request deadline budgets for the serving tier.

Every request admitted by the server carries a :class:`Deadline` — a point on
the monotonic clock after which its answer is worthless.  The contract the
serving tier enforces with it (see :mod:`repro.serving.server`):

* the handler thread waits for the routing result **at most** until the
  deadline, then answers ``deadline_exceeded`` — the caller never blocks past
  its budget,
* a worker that picks an already-expired request out of the queue skips the
  routing work entirely (the answer could only be late), and
* a result that is computed anyway (the job was already running when the
  deadline fired) is *discarded*, never delivered late — it is only counted.

The clock is injectable so tests can expire deadlines without sleeping.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

__all__ = ["Deadline"]

#: A monotonic clock: seconds from an arbitrary origin, never going backwards.
Clock = Callable[[], float]


@dataclass(frozen=True)
class Deadline:
    """One request's time budget, pinned to the monotonic clock.

    ``expires_at`` is a :func:`time.monotonic` timestamp; ``budget_ms`` keeps
    the originally requested budget for reporting.  Construct via
    :meth:`after_ms`.
    """

    expires_at: float
    budget_ms: float
    clock: Clock = field(default=time.monotonic, repr=False, compare=False)

    @classmethod
    def after_ms(cls, budget_ms: float, *, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        if not math.isfinite(budget_ms) or budget_ms <= 0:
            raise ConfigurationError(
                f"a deadline budget must be a positive finite number of ms, got {budget_ms!r}"
            )
        return cls(expires_at=clock() + budget_ms / 1000.0, budget_ms=budget_ms, clock=clock)

    def remaining_seconds(self) -> float:
        """Seconds left before expiry; negative once the deadline has passed."""
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.remaining_seconds() <= 0.0
