"""Admission control for the serving tier: bounded queue, honest rejections.

A long-lived server that accepts every request eventually answers none of
them — queues grow without bound, latency follows, and clients time out
anyway after having held a connection open.  The serving tier instead admits
at most ``max_concurrency + queue_limit`` requests at a time and rejects the
rest *immediately* with a structured ``overloaded`` error carrying a
``retry_after_ms`` hint, so well-behaved clients back off instead of piling
on.

:class:`AdmissionController` wraps a :class:`~concurrent.futures.ThreadPoolExecutor`
whose worker count is the concurrency limit; the "queue" is simply the
admitted-but-not-yet-running overflow, tracked by an in-flight counter rather
than by inspecting executor internals.  The retry hint is derived from an
exponential moving average of observed service times — an overloaded server
tells clients roughly how long the backlog in front of them will take to
drain, not a made-up constant.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, TypeVar

from repro.core.errors import ConfigurationError
from repro.serving.deadlines import Clock
from repro.serving.faults import FaultInjector

__all__ = ["AdmissionController"]

T = TypeVar("T")

#: Smoothing factor for the service-time moving average.
_EMA_ALPHA = 0.2
#: Assumed per-request service time before any request has completed.
_DEFAULT_SERVICE_SECONDS = 0.05
#: Bounds for the retry hint so it stays useful (ms).
_MIN_RETRY_AFTER_MS = 50
_MAX_RETRY_AFTER_MS = 5_000


class AdmissionController:
    """Bounded admission over a thread pool, with load-derived retry hints."""

    def __init__(
        self,
        max_concurrency: int,
        queue_limit: int,
        *,
        faults: FaultInjector | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        if max_concurrency < 1:
            raise ConfigurationError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if queue_limit < 0:
            raise ConfigurationError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self._capacity = max_concurrency + queue_limit
        self._faults = faults or FaultInjector()
        self._clock = clock
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._in_flight = 0
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._service_ema_seconds = 0.0

    def admit(self, fn: Callable[[], T]) -> Future[T] | None:
        """Run ``fn`` on the pool, or return ``None`` when over capacity.

        ``None`` means the caller must answer ``overloaded`` (with
        :meth:`retry_after_hint_ms`); the rejection has already been counted.
        """
        # The fill-queue fault makes this one admission behave as if the
        # backlog were already at capacity — consult it outside our lock
        # since the injector locks internally.
        forced_full = self._faults.take("fill-queue")
        with self._lock:
            if forced_full or self._in_flight >= self._capacity:
                self._rejected += 1
                return None
            self._in_flight += 1
            self._admitted += 1
        started = self._clock()
        try:
            return self._executor.submit(self._run_admitted, fn, started)
        except RuntimeError:
            # Executor already shut down: the slot we reserved will never run.
            with self._lock:
                self._in_flight -= 1
                self._admitted -= 1
                self._rejected += 1
            return None

    def _run_admitted(self, fn: Callable[[], T], admitted_at: float) -> T:
        try:
            return fn()
        finally:
            elapsed = self._clock() - admitted_at
            with self._lock:
                self._in_flight -= 1
                self._completed += 1
                if self._service_ema_seconds <= 0.0:
                    self._service_ema_seconds = elapsed
                else:
                    self._service_ema_seconds += _EMA_ALPHA * (
                        elapsed - self._service_ema_seconds
                    )

    def retry_after_hint_ms(self) -> int:
        """How long a rejected client should wait before retrying.

        Estimated as the time for the current backlog to drain through
        ``max_concurrency`` workers at the observed average service time,
        clamped to a sane range.
        """
        with self._lock:
            in_flight = self._in_flight
            ema = self._service_ema_seconds
        if ema <= 0.0:
            ema = _DEFAULT_SERVICE_SECONDS
        queued = max(0, in_flight - self.max_concurrency)
        drain_seconds = (queued + 1) * ema / self.max_concurrency
        hint = int(drain_seconds * 1000.0)
        return max(_MIN_RETRY_AFTER_MS, min(_MAX_RETRY_AFTER_MS, hint))

    def queue_depth(self) -> int:
        """Admitted requests currently waiting for a worker thread."""
        with self._lock:
            return max(0, self._in_flight - self.max_concurrency)

    def snapshot(self) -> dict:
        """Counters for ``/stats``."""
        with self._lock:
            in_flight = self._in_flight
            admitted = self._admitted
            rejected = self._rejected
            completed = self._completed
            ema = self._service_ema_seconds
        return {
            "max_concurrency": self.max_concurrency,
            "queue_limit": self.queue_limit,
            "in_flight": in_flight,
            "queue_depth": max(0, in_flight - self.max_concurrency),
            "admitted": admitted,
            "rejected": rejected,
            "completed": completed,
            "service_ema_ms": ema * 1000.0,
            "retry_after_hint_ms": self.retry_after_hint_ms(),
        }

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for in-flight jobs."""
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
