"""Graceful hot reload: swap the served engine when its artifact store changes.

The offline pipeline (``repro pipeline``) periodically re-mines a city and
republishes its :class:`~repro.persistence.store.ArtifactStore`; a long-lived
server should pick the new build up **without dropping a request**.
:class:`EngineReloader` owns the live :class:`~repro.routing.service.RoutingService`
and makes that safe:

* change detection is the store's *manifest fingerprint* (a checksum of the
  manifest bytes).  Writers replace the manifest atomically and **last**, so
  a changed fingerprint means a complete new build is on disk — the watcher
  never boots off a half-written store;
* on change, the new engine is booted **off the request path** (in the poll
  thread), then swapped in atomically under a lock.  Request handlers hold a
  :meth:`lease` on the generation they started with, and the old generation
  is drained (waited idle) after the swap — in-flight requests finish on the
  engine that admitted them;
* a reload that fails to boot — corrupt artifact, truncated file, the
  injected ``corrupt-reload`` fault — **keeps the old engine serving**,
  counts the failure and surfaces the error on ``/healthz``; it is retried on
  every subsequent poll, so fixing the store heals the server with no
  restart.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING

from repro.persistence.store import ArtifactStore, StoreSummary
from repro.routing.engine import RoutingEngine
from repro.routing.service import RoutingService
from repro.serving.faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.engine import RouterSettings

__all__ = ["EngineReloader"]


class _Generation:
    """One booted engine plus the count of requests still running on it."""

    def __init__(
        self,
        number: int,
        service: RoutingService,
        fingerprint: str | None,
        summary: StoreSummary | None = None,
    ) -> None:
        self.number = number
        self.service = service
        self.fingerprint = fingerprint
        #: The StoreSummary the generation booted from (None when the
        #: manifest vanished between the fingerprint check and the boot).
        self.summary = summary
        self._lock = threading.Lock()
        self._active = 0
        self._idle = threading.Event()
        self._idle.set()

    def acquire(self) -> None:
        with self._lock:
            self._active += 1
            self._idle.clear()

    def release(self) -> None:
        with self._lock:
            self._active = max(0, self._active - 1)
            if self._active == 0:
                self._idle.set()

    def active(self) -> int:
        with self._lock:
            return self._active

    def drain(self, timeout: float | None) -> bool:
        """Wait until no request still runs on this generation."""
        return self._idle.wait(timeout)


class EngineReloader:
    """Owns the live service and swaps it when the artifact store republishes."""

    def __init__(
        self,
        store_root: str | Path,
        *,
        settings: "RouterSettings | None" = None,
        default_method: str = "V-BS-60",
        poll_seconds: float = 2.0,
        drain_timeout_seconds: float = 30.0,
        faults: FaultInjector | None = None,
        prewarm: "str | tuple[str, ...]" = "all",
        cache_bytes: int | None = None,
    ) -> None:
        self.store_root = str(store_root)
        self.poll_seconds = poll_seconds
        self.drain_timeout_seconds = drain_timeout_seconds
        self._settings = settings
        self._default_method = default_method
        self._prewarm = prewarm
        self._cache_bytes = cache_bytes
        self._faults = faults or FaultInjector()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        # Fail fast at boot: a server that cannot load its store should not
        # start.  Reload failures after this point keep the old engine.  The
        # summary is the same store accessor the fleet catalog syncs from —
        # one manifest read yields the change-detection fingerprint plus the
        # identity /stats surfaces (format version, graph fingerprints).
        summary = ArtifactStore(self.store_root).summary()
        self._current = _Generation(1, self._boot(), summary.manifest_fingerprint, summary)
        self._poll_thread: threading.Thread | None = None
        self._reloads = 0
        self._reload_failures = 0
        self._last_error: str | None = None

    def _boot(self) -> RoutingService:
        engine = RoutingEngine.from_artifacts(
            self.store_root,
            settings=self._settings,
            prewarm=self._prewarm,
            cache_bytes=self._cache_bytes,
        )
        # Pay the one-time frontier-accelerator flattening at (re)boot, not
        # on the first query after a generation swap.
        engine.build_accelerators()
        return RoutingService(engine, default_method=self._default_method)

    # ------------------------------------------------------------------ #
    # Request-path API
    # ------------------------------------------------------------------ #
    @contextmanager
    def lease(self) -> Iterator[RoutingService]:
        """The current service, pinned for the duration of one request.

        A swap that happens mid-request does not affect the leased service;
        the old generation is only retired once every lease on it is released.
        """
        with self._lock:
            generation = self._current
            generation.acquire()
        try:
            yield generation.service
        finally:
            generation.release()

    @property
    def service(self) -> RoutingService:
        """The current service (unpinned — prefer :meth:`lease` on request paths)."""
        with self._lock:
            return self._current.service

    @property
    def generation(self) -> int:
        """The swap count of the live engine (1 = the boot engine)."""
        with self._lock:
            return self._current.number

    # ------------------------------------------------------------------ #
    # Reload machinery
    # ------------------------------------------------------------------ #
    def poll_once(self) -> bool:
        """Check the store once; swap if it changed.  Returns ``True`` on swap."""
        fingerprint = ArtifactStore(self.store_root).manifest_fingerprint()
        with self._lock:
            current_fingerprint = self._current.fingerprint
        if fingerprint is None:
            # The manifest vanished or turned unreadable under us.  The loaded
            # engine is self-contained, so keep serving it — but say so.
            with self._lock:
                self._last_error = (
                    f"artifact store manifest at {self.store_root} is unreadable; "
                    "still serving the previously loaded engine"
                )
            return False
        if fingerprint == current_fingerprint:
            with self._lock:
                self._last_error = None
            return False
        try:
            if self._faults.take("corrupt-reload"):
                raise OSError("fault injection: corrupt-reload armed, boot aborted")
            summary = ArtifactStore(self.store_root).summary()
            service = self._boot()
        except Exception as exc:  # noqa: BLE001 - any boot failure keeps the old engine
            with self._lock:
                self._reload_failures += 1
                self._last_error = f"reload from {self.store_root} failed: {exc}"
            return False
        with self._lock:
            old = self._current
            # The summary's fingerprint, not the probe's: the two reads can
            # straddle a republish, and the summary is what actually booted.
            self._current = _Generation(
                old.number + 1, service, summary.manifest_fingerprint, summary
            )
            self._reloads += 1
            self._last_error = None
        # Drain outside the lock: new requests already land on the new
        # generation; we only wait for stragglers on the old one.
        old.drain(self.drain_timeout_seconds)
        return True

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            try:
                self.poll_once()
            except Exception as exc:  # noqa: BLE001 - the watcher must not die
                with self._lock:
                    self._last_error = f"reload poll failed: {exc}"

    def start(self) -> None:
        """Start the background store watcher (idempotent)."""
        with self._lock:
            if self._poll_thread is not None:
                return
            thread = threading.Thread(
                target=self._poll_loop, name="repro-serve-reload", daemon=True
            )
            self._poll_thread = thread
        self._stop.clear()
        thread.start()

    def stop(self) -> None:
        """Stop the watcher and wait for it to exit."""
        self._stop.set()
        with self._lock:
            thread = self._poll_thread
            self._poll_thread = None
        if thread is not None:
            thread.join(timeout=10.0)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def healthy(self) -> bool:
        """True while the last poll saw a loadable, current store."""
        with self._lock:
            return self._last_error is None

    def snapshot(self) -> dict:
        """Reload state for ``/stats`` and ``/healthz``."""
        with self._lock:
            summary = self._current.summary
            return {
                "store": self.store_root,
                "generation": self._current.number,
                "manifest_fingerprint": self._current.fingerprint,
                "store_format_version": (
                    None if summary is None else summary.index_format_version
                ),
                "pace_fingerprint": None if summary is None else summary.pace_fingerprint,
                "active_leases": self._current.active(),
                "reloads": self._reloads,
                "reload_failures": self._reload_failures,
                "last_error": self._last_error,
                "watching": self._poll_thread is not None,
            }
