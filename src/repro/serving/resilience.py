"""Graceful degradation around the process pool: fall back, respawn, recover.

A :class:`~repro.routing.backends.ProcessBackend` is the serving tier's fast
path and its sharpest failure mode: one worker dying (OOM kill, segfault,
injected crash) breaks the whole ``ProcessPoolExecutor``, and a broken
executor never accepts work again.  :class:`ResilientBackend` wraps the pool
so the server survives that:

* a ``BrokenProcessPool`` on a batch marks the backend *degraded* and starts
  **one** background respawn loop (bounded attempts, exponential backoff);
  the batch that hit the failure — and every batch while degraded — is
  re-routed through an in-process :class:`~repro.routing.backends.SerialBackend`,
  so callers see slower answers, never errors;
* the respawn loop discards the broken pool
  (:meth:`~repro.routing.backends.ProcessBackend.respawn`), spawns a fresh
  one and *probes* it (:meth:`~repro.routing.backends.ProcessBackend.ensure_ready`)
  off the request path; the first healthy probe restores process fan-out;
* after ``max_respawn_attempts`` consecutive failed probes the loop gives up
  and the backend stays on the serial fallback permanently (visible on
  ``/healthz`` as degraded) — a persistently broken environment should page a
  human, not spin-restart forever.

The sleep function is injectable so the chaos tests exercise real respawns
without real backoff waits.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.routing.backends import ProcessBackend, SerialBackend
from repro.routing.methods import MethodSpec
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.serving.faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.engine import RoutingEngine

__all__ = ["ResilientBackend"]


class ResilientBackend:
    """An :class:`~repro.routing.backends.ExecutionBackend` that survives pool death.

    With ``inner=None`` (a serial-only server) every batch runs in-process and
    the resilience machinery is inert; otherwise batches prefer the process
    pool and degrade as described in the module docstring.
    """

    def __init__(
        self,
        inner: ProcessBackend | None,
        *,
        max_respawn_attempts: int = 5,
        backoff_base_seconds: float = 0.1,
        backoff_cap_seconds: float = 5.0,
        faults: FaultInjector | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_respawn_attempts < 1:
            raise ConfigurationError(
                f"max_respawn_attempts must be >= 1, got {max_respawn_attempts}"
            )
        if backoff_base_seconds < 0 or backoff_cap_seconds < backoff_base_seconds:
            raise ConfigurationError(
                "backoff must satisfy 0 <= base <= cap, got "
                f"base={backoff_base_seconds} cap={backoff_cap_seconds}"
            )
        self.inner = inner
        self.max_respawn_attempts = max_respawn_attempts
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self._faults = faults or FaultInjector()
        self._sleep = sleep
        self._serial = SerialBackend()
        self._lock = threading.Lock()
        self._degraded = False
        self._abandoned = False
        self._respawn_thread: threading.Thread | None = None
        self._backend_failures = 0
        self._fallback_batches = 0
        self._fallback_queries = 0
        self._respawn_attempts = 0
        self._respawns_succeeded = 0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        engine: "RoutingEngine",
        method: MethodSpec,
        queries: Sequence[RoutingQuery],
    ) -> list[RoutingResult]:
        """Evaluate the batch, falling back to serial when the pool is broken."""
        inner = self.inner
        if inner is None:
            return self._serial.run(engine, method, queries)
        if self._faults.take("crash-next-worker"):
            # Deterministic chaos: kill one worker *before* this batch so the
            # batch itself observes the genuine BrokenProcessPool.
            inner.kill_one_worker(wait=True)
        with self._lock:
            degraded = self._degraded
        if degraded:
            return self._fallback(engine, method, queries)
        try:
            return inner.run(engine, method, queries)
        except BrokenProcessPool:
            self._note_pool_broken(engine)
            return self._fallback(engine, method, queries)

    def _fallback(
        self,
        engine: "RoutingEngine",
        method: MethodSpec,
        queries: Sequence[RoutingQuery],
    ) -> list[RoutingResult]:
        with self._lock:
            self._fallback_batches += 1
            self._fallback_queries += len(queries)
        return self._serial.run(engine, method, queries)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _note_pool_broken(self, engine: "RoutingEngine") -> None:
        """Record a pool failure and start the (single) respawn loop."""
        with self._lock:
            self._backend_failures += 1
            self._degraded = True
            if self._abandoned or self._respawn_thread is not None:
                return
            thread = threading.Thread(
                target=self._respawn_loop,
                args=(engine,),
                name="repro-serve-respawn",
                daemon=True,
            )
            self._respawn_thread = thread
        thread.start()

    def _respawn_loop(self, engine: "RoutingEngine") -> None:
        """Bounded exponential-backoff respawn, off the request path."""
        inner = self.inner
        assert inner is not None  # only started from the process-pool path
        for attempt in range(self.max_respawn_attempts):
            self._sleep(
                min(self.backoff_cap_seconds, self.backoff_base_seconds * (2.0**attempt))
            )
            with self._lock:
                self._respawn_attempts += 1
            try:
                inner.respawn()
                inner.ensure_ready(engine)
            except Exception:  # noqa: BLE001 - any probe failure means retry
                continue
            with self._lock:
                self._degraded = False
                self._respawns_succeeded += 1
                self._respawn_thread = None
            return
        with self._lock:
            self._abandoned = True
            self._respawn_thread = None

    def await_recovery(self, timeout: float | None = None) -> bool:
        """Block until the current respawn loop finishes (test/drain helper).

        Returns ``True`` when the backend is healthy afterwards.
        """
        with self._lock:
            thread = self._respawn_thread
        if thread is not None:
            thread.join(timeout)
        return self.healthy()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def healthy(self) -> bool:
        """True while batches run on their preferred (non-fallback) backend."""
        with self._lock:
            return not self._degraded

    def snapshot(self) -> dict:
        """Counters for ``/stats`` and ``/healthz``."""
        with self._lock:
            return {
                "backend": "serial" if self.inner is None else "process",
                "healthy": not self._degraded,
                "respawn_abandoned": self._abandoned,
                "backend_failures": self._backend_failures,
                "fallback_batches": self._fallback_batches,
                "fallback_queries": self._fallback_queries,
                "respawn_attempts": self._respawn_attempts,
                "respawns_succeeded": self._respawns_succeeded,
                "pool_generation": 0 if self.inner is None else self.inner.generation,
            }

    def close(self) -> None:
        """Release the worker pool (idempotent; serial-only servers no-op)."""
        if self.inner is not None:
            self.inner.close()
