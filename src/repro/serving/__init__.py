"""The fault-tolerant serving tier behind ``repro serve``.

The online half of the paper's offline/online split, grown into an actual
long-lived service: :class:`~repro.serving.server.RouteServer` exposes a
:class:`~repro.routing.service.RoutingService` over strict-JSON HTTP with
admission control (:class:`~repro.serving.admission.AdmissionController`),
per-request deadlines (:class:`~repro.serving.deadlines.Deadline`),
process-pool supervision and serial fallback
(:class:`~repro.serving.resilience.ResilientBackend`), graceful hot reload of
a republished artifact store (:class:`~repro.serving.reload.EngineReloader`)
and a deterministic chaos harness
(:class:`~repro.serving.faults.FaultInjector`).
"""

from repro.serving.admission import AdmissionController
from repro.serving.deadlines import Deadline
from repro.serving.faults import FAULT_NAMES, FaultInjector
from repro.serving.reload import EngineReloader
from repro.serving.resilience import ResilientBackend
from repro.serving.server import RouteServer, ServerConfig

__all__ = [
    "AdmissionController",
    "Deadline",
    "FAULT_NAMES",
    "FaultInjector",
    "EngineReloader",
    "ResilientBackend",
    "RouteServer",
    "ServerConfig",
]
