"""Accuracy of PACE path-cost estimation (the Fig. 10b experiment).

The paper quantifies how well the T-paths mined with a threshold ``τ``
reproduce held-out path cost distributions: trajectories are split with
five-fold cross validation, T-paths are mined on the training folds, each test
path that carries enough trajectories gets a ground-truth distribution from
its own (held-out) travel times, and the KL divergence between the ground
truth and the PACE estimate is averaged, with a 95 % confidence interval over
folds.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.distributions import Distribution
from repro.core.errors import PathError
from repro.network.road_network import RoadNetwork
from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph
from repro.trajectories.model import Trajectory
from repro.trajectories.splits import k_fold_split

__all__ = ["AccuracyResult", "evaluate_accuracy", "path_groups"]


@dataclass(frozen=True)
class AccuracyResult:
    """Mean KL divergence and its 95 % confidence interval for one configuration."""

    tau: int
    mean_kl: float
    ci_low: float
    ci_high: float
    evaluated_paths: int

    def as_row(self) -> tuple[object, ...]:
        return (self.tau, self.mean_kl, self.ci_low, self.ci_high, self.evaluated_paths)


def path_groups(
    trajectories: Sequence[Trajectory], *, min_support: int = 5
) -> dict[tuple[int, ...], list[Trajectory]]:
    """Group trajectories by their exact path, keeping groups with enough support."""
    groups: dict[tuple[int, ...], list[Trajectory]] = {}
    for trajectory in trajectories:
        groups.setdefault(trajectory.path.edges, []).append(trajectory)
    return {edges: group for edges, group in groups.items() if len(group) >= min_support}


def _confidence_interval(values: Sequence[float]) -> tuple[float, float, float]:
    """Mean and 95 % confidence interval of a sample (normal approximation)."""
    mean = statistics.fmean(values)
    if len(values) < 2:
        return mean, mean, mean
    stderr = statistics.stdev(values) / math.sqrt(len(values))
    return mean, mean - 1.96 * stderr, mean + 1.96 * stderr


def evaluate_accuracy(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    *,
    tau: int,
    folds: int = 5,
    resolution: float = 5.0,
    max_cardinality: int = 4,
    min_test_support: int = 5,
    max_paths_per_fold: int = 60,
    seed: int = 31,
) -> AccuracyResult:
    """KL divergence between held-out path distributions and their PACE estimates."""
    splits = k_fold_split(list(trajectories), folds=folds, seed=seed)
    per_fold_means: list[float] = []
    evaluated = 0
    for fold in splits:
        config = TPathMinerConfig(tau=tau, max_cardinality=max_cardinality, resolution=resolution)
        pace = build_pace_graph(network, list(fold.train), config)
        divergences: list[float] = []
        groups = path_groups(list(fold.test), min_support=min_test_support)
        for edges, group in sorted(groups.items())[:max_paths_per_fold]:
            if len(edges) < 2:
                continue
            try:
                path = network.path_from_edge_ids(edges)
                estimated = pace.path_cost_distribution(path, max_support=64)
            except PathError:
                continue
            ground_truth = Distribution.from_samples(
                [t.total_cost for t in group], resolution=resolution
            )
            divergences.append(ground_truth.kl_divergence(estimated))
        if divergences:
            per_fold_means.append(statistics.fmean(divergences))
            evaluated += len(divergences)
    if not per_fold_means:
        return AccuracyResult(tau=tau, mean_kl=float("nan"), ci_low=float("nan"), ci_high=float("nan"), evaluated_paths=0)
    mean, low, high = _confidence_interval(per_fold_means)
    return AccuracyResult(tau=tau, mean_kl=mean, ci_low=low, ci_high=high, evaluated_paths=evaluated)
