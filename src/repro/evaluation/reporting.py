"""Plain-text reporting of experiment results.

Every experiment driver returns structured rows; this module renders them as
aligned text tables (the same rows/series the paper's figures and tables
report) and optionally writes them to the ``results/`` directory so benchmark
runs leave an inspectable artefact behind.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

__all__ = ["format_table", "render_report", "write_report"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return f"{cell:.4f}"
    return str(cell)


def render_report(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A titled table, ready to print."""
    table = format_table(headers, rows)
    separator = "=" * max(len(title), 8)
    return f"{title}\n{separator}\n{table}\n"


def write_report(
    report: str, filename: str, *, directory: str | Path = "results", echo: bool = True
) -> Path:
    """Write a rendered report to ``results/<filename>`` and optionally print it."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    path.write_text(report, encoding="utf-8")
    if echo:
        print(report)
    return path
