"""Generation of stochastic routing query workloads.

The paper's workload generator (Section 5.1):

* source–destination pairs are taken from the testing trajectories so that
  the pairs are meaningful trips, and grouped into buckets by Euclidean
  distance,
* each pair receives five travel-time budgets at 50 %, 75 %, 100 %, 125 % and
  150 % of the least *expected* travel time found by Dijkstra over expected
  edge costs (too-small budgets make every path hopeless, too-large budgets
  make every path certain).

Because our synthetic cities are a few kilometres across rather than 35 km,
the distance buckets are expressed as quantiles of the observed
source–destination distances and labelled with their actual ranges; the
bucket *roles* (short / medium / long / longest trips) match the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.edge_graph import EdgeGraph
from repro.core.errors import ConfigurationError, NoPathError
from repro.network.algorithms import shortest_path
from repro.routing.queries import RoutingQuery
from repro.trajectories.model import Trajectory

__all__ = ["WorkloadConfig", "WorkloadQuery", "QueryWorkload", "generate_workload"]

#: Budget levels, as fractions of the least expected travel time (the paper's 50 %–150 %).
DEFAULT_BUDGET_FRACTIONS = (0.5, 0.75, 1.0, 1.25, 1.5)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the workload generator."""

    pairs_per_bucket: int = 6
    num_buckets: int = 4
    budget_fractions: tuple[float, ...] = DEFAULT_BUDGET_FRACTIONS
    min_expected_time: float = 60.0
    seed: int = 97

    def validate(self) -> None:
        if self.pairs_per_bucket < 1:
            raise ConfigurationError("pairs_per_bucket must be positive")
        if self.num_buckets < 1:
            raise ConfigurationError("num_buckets must be positive")
        if not self.budget_fractions:
            raise ConfigurationError("at least one budget fraction is needed")
        if any(f <= 0 for f in self.budget_fractions):
            raise ConfigurationError("budget fractions must be positive")


@dataclass(frozen=True)
class WorkloadQuery:
    """One query of the workload, annotated with its bucket and budget level."""

    query: RoutingQuery
    distance_bucket: str
    distance_km: float
    budget_fraction: float
    least_expected_time: float


@dataclass(frozen=True)
class QueryWorkload:
    """A full workload: queries grouped by distance bucket and budget fraction."""

    queries: tuple[WorkloadQuery, ...]
    bucket_labels: tuple[str, ...]

    def by_bucket(self, label: str) -> list[WorkloadQuery]:
        return [q for q in self.queries if q.distance_bucket == label]

    def by_budget_fraction(self, fraction: float) -> list[WorkloadQuery]:
        return [q for q in self.queries if abs(q.budget_fraction - fraction) < 1e-9]

    def budget_fractions(self) -> tuple[float, ...]:
        return tuple(sorted({q.budget_fraction for q in self.queries}))

    def __len__(self) -> int:
        return len(self.queries)


def _candidate_pairs(
    edge_graph: EdgeGraph,
    trajectories: Sequence[Trajectory],
    rng: random.Random,
    limit: int,
) -> list[tuple[int, int]]:
    """Source–destination pairs drawn from observed trips (falling back to random pairs)."""
    seen: set[tuple[int, int]] = set()
    pairs: list[tuple[int, int]] = []
    shuffled = list(trajectories)
    rng.shuffle(shuffled)
    for trajectory in shuffled:
        pair = (trajectory.path.source, trajectory.path.target)
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            pairs.append(pair)
        if len(pairs) >= limit:
            return pairs
    vertices = list(edge_graph.network.vertex_ids())
    attempts = 0
    while len(pairs) < limit and attempts < limit * 50:
        attempts += 1
        source, destination = rng.choice(vertices), rng.choice(vertices)
        if source == destination or (source, destination) in seen:
            continue
        seen.add((source, destination))
        pairs.append((source, destination))
    return pairs


def generate_workload(
    edge_graph: EdgeGraph,
    trajectories: Sequence[Trajectory],
    config: WorkloadConfig | None = None,
    *,
    departure_time: float = 8 * 3600.0,
) -> QueryWorkload:
    """Generate a bucketed query workload against an uncertain road network.

    ``edge_graph`` provides the expected edge travel times used both for the
    Dijkstra baseline that calibrates budgets and (via the network geometry)
    for the distance buckets.
    """
    config = config or WorkloadConfig()
    config.validate()
    rng = random.Random(config.seed)
    network = edge_graph.network

    needed = config.pairs_per_bucket * config.num_buckets
    candidates = _candidate_pairs(edge_graph, trajectories, rng, needed * 6)

    # Annotate candidates with distance and least expected travel time; drop unreachable pairs.
    annotated: list[tuple[int, int, float, float]] = []
    for source, destination in candidates:
        distance_km = network.euclidean_distance(source, destination) / 1000.0
        try:
            _, expected = shortest_path(
                network, source, destination, lambda e: edge_graph.expected_cost(e.edge_id)
            )
        except NoPathError:
            continue
        if expected < config.min_expected_time:
            continue
        annotated.append((source, destination, distance_km, expected))
        if len(annotated) >= needed * 4:
            break
    if not annotated:
        raise ConfigurationError("could not find any routable source-destination pairs")

    # Quantile-based distance buckets over the observed distances.
    annotated.sort(key=lambda item: item[2])
    distances = [item[2] for item in annotated]
    bucket_edges = [
        distances[min(len(distances) - 1, int(len(distances) * (i + 1) / config.num_buckets))]
        for i in range(config.num_buckets)
    ]
    bucket_edges[-1] = distances[-1] + 1e-9

    def bucket_index(distance: float) -> int:
        for index, upper in enumerate(bucket_edges):
            if distance <= upper:
                return index
        return len(bucket_edges) - 1

    lower = 0.0
    labels: list[str] = []
    for upper in bucket_edges:
        labels.append(f"({lower:.1f}, {upper:.1f}] km")
        lower = upper

    per_bucket: dict[int, list[tuple[int, int, float, float]]] = {}
    for item in annotated:
        per_bucket.setdefault(bucket_index(item[2]), []).append(item)

    queries: list[WorkloadQuery] = []
    for index in range(config.num_buckets):
        bucket_items = per_bucket.get(index, [])
        rng.shuffle(bucket_items)
        for source, destination, distance_km, expected in bucket_items[: config.pairs_per_bucket]:
            for fraction in config.budget_fractions:
                budget = max(1.0, expected * fraction)
                queries.append(
                    WorkloadQuery(
                        query=RoutingQuery(
                            source=source,
                            destination=destination,
                            budget=budget,
                            departure_time=departure_time,
                        ),
                        distance_bucket=labels[index],
                        distance_km=distance_km,
                        budget_fraction=fraction,
                        least_expected_time=expected,
                    )
                )
    return QueryWorkload(queries=tuple(queries), bucket_labels=tuple(labels))
