"""Experiment drivers reproducing every table and figure of the paper's evaluation.

Each driver returns an :class:`ExperimentReport` — a titled set of rows that
mirrors what the corresponding paper figure/table plots — and is invoked from
``benchmarks/`` (one bench module per figure/table) as well as usable
directly::

    context = ExperimentContext.build(aalborg_like(), ExperimentScale())
    report = fig13_binary_routing_by_distance(context, regime="peak")
    print(report.render())

The heavy inputs (datasets, PACE graphs, V-path closures, workloads, per-query
routing records) are built once per :class:`ExperimentContext` and shared by
all drivers, because the paper's figures slice the same measurements along
different axes (distance buckets vs. budget levels, peak vs. off-peak).

Scaling note: the synthetic networks are laptop-sized (the repro band flags
full-city index construction as infeasible in pure Python), and total
pre-computation costs (Tables 8 and 9) are extrapolated from a sample of
destinations; both substitutions are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.edge_graph import EdgeGraph
from repro.core.pace_graph import PaceGraph
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.reporting import render_report
from repro.evaluation.workloads import QueryWorkload, WorkloadConfig, generate_workload
from repro.heuristics.binary import (
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    PaceBinaryHeuristic,
)
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.network.algorithms import shortest_path
from repro.routing.accel import accelerator_for
from repro.routing.engine import RouterSettings, RoutingEngine
from repro.routing.methods import MethodSpec
from repro.routing.queries import RoutingQuery
from repro.tpaths.extraction import TPathMinerConfig, build_edge_graph, build_pace_graph, mine_tpaths
from repro.vpaths.builder import VPathBuilderConfig
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "ExperimentScale",
    "ExperimentReport",
    "ExperimentContext",
    "RoutingRecord",
    "table7_data_statistics",
    "fig10a_tpath_counts",
    "fig10b_accuracy",
    "fig10cd_vpaths",
    "fig11_binary_precompute",
    "table8_binary_precompute_total",
    "fig12_budget_precompute",
    "table9_budget_precompute_total",
    "routing_report_by_distance",
    "routing_report_by_budget",
    "table10_method_comparison",
    "fig19_case_study",
    "BINARY_ROUTING_METHODS",
    "BUDGET_ROUTING_METHODS",
    "VPATH_ROUTING_METHODS",
]

#: Methods plotted in Figs. 13–14.
BINARY_ROUTING_METHODS = ("T-None", "T-B-EU", "T-B-E", "T-B-P", "T-BS-60")
#: Methods plotted in Figs. 15–16 (δ sweep of the budget-specific heuristic).
BUDGET_ROUTING_METHODS = ("T-BS-30", "T-BS-60", "T-BS-120", "T-BS-240")
#: Methods plotted in Figs. 17–18.
VPATH_ROUTING_METHODS = ("V-None", "T-B-P", "V-B-P", "T-BS-60", "V-BS-60")


# --------------------------------------------------------------------------- #
# Scale and report containers
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that size the experiments (laptop-scale defaults)."""

    tau: int = 30
    taus: tuple[int, ...] = (15, 30, 50, 100)
    resolution: float = 5.0
    max_cardinality: int = 4
    delta: float = 60.0
    deltas: tuple[float, ...] = (30.0, 60.0, 120.0, 240.0)
    pairs_per_bucket: int = 3
    budget_fractions: tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.5)
    # Eq. 5 Bellman sweeps per budget table; ``None`` runs to the fixpoint.
    # Experiments now measure *converged* tables by default, matching what
    # production artifact builds serve (``repro build-artifacts``); pass a
    # fixed count for seed-parity measurements at capped work (the seed's
    # figures used a single sweep).
    heuristic_sweeps: int | None = None
    max_support: int = 48
    # Caps the exhaustive baselines (T-None / V-None); guided methods stop far earlier.
    # When a baseline hits the cap its measured runtime is a *lower* bound, which only
    # understates the speed-ups the paper reports.
    max_explored: int = 3000
    sample_destinations: int = 4
    vpath_max_cardinality: int = 8
    vpath_max_count: int = 20000
    accuracy_folds: int = 5

    @classmethod
    def country(cls) -> "ExperimentScale":
        """The country-scale stress preset (benchmarks only, never tier-1).

        Pairs with :func:`repro.datasets.synthetic.country_like`: one τ, one
        fine δ over long-trip budgets — so heuristic tables grow wide bands
        (large η) and the index is an order of magnitude bigger than the city
        stand-ins.  This is the scenario that motivates the columnar v2
        artifacts and the band-compressed Bellman build;
        ``benchmarks/test_artifact_v2_bench.py`` runs the preset's grid (on
        the cached city graph, so CI stays minutes not hours — the full
        country-like run is the same code path at larger V).
        """
        return cls(
            tau=30,
            taus=(30,),
            delta=10.0,
            deltas=(10.0,),
            pairs_per_bucket=1,
            budget_fractions=(0.75, 1.25),
            sample_destinations=2,
            max_explored=2000,
            heuristic_sweeps=None,
        )

    def miner_config(self, tau: int | None = None) -> TPathMinerConfig:
        return TPathMinerConfig(
            tau=tau if tau is not None else self.tau,
            max_cardinality=self.max_cardinality,
            resolution=self.resolution,
        )

    def vpath_config(self) -> VPathBuilderConfig:
        return VPathBuilderConfig(
            max_cardinality=self.vpath_max_cardinality, max_vpaths=self.vpath_max_count
        )


@dataclass(frozen=True)
class ExperimentReport:
    """Structured experiment output: a title, column headers and data rows."""

    experiment: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    notes: str = ""

    def render(self) -> str:
        text = render_report(f"{self.experiment}: {self.title}", self.headers, self.rows)
        if self.notes:
            text += f"\n{self.notes}\n"
        return text


@dataclass(frozen=True)
class RoutingRecord:
    """One measured routing query execution."""

    method: str
    regime: str
    distance_bucket: str
    budget_fraction: float
    runtime_seconds: float
    probability: float
    explored: int
    found: bool


# --------------------------------------------------------------------------- #
# Experiment context
# --------------------------------------------------------------------------- #
@dataclass
class ExperimentContext:
    """Everything the experiment drivers need, built once and cached."""

    dataset: SyntheticDataset
    scale: ExperimentScale
    edge_graphs: dict[str, EdgeGraph] = field(default_factory=dict)
    pace_graphs: dict[str, PaceGraph] = field(default_factory=dict)
    updated_graphs: dict[str, UpdatedPaceGraph] = field(default_factory=dict)
    vpath_stats: dict[str, object] = field(default_factory=dict)
    workloads: dict[str, QueryWorkload] = field(default_factory=dict)
    max_query_budget: float = 0.0
    _engines: dict[str, RoutingEngine] = field(default_factory=dict)
    _records: dict[tuple[str, str], list[RoutingRecord]] = field(default_factory=dict)

    REGIMES = ("peak", "off-peak")

    @classmethod
    def build(cls, dataset: SyntheticDataset, scale: ExperimentScale | None = None) -> "ExperimentContext":
        """Mine the models, build the V-path closures and generate the workloads."""
        scale = scale or ExperimentScale()
        context = cls(dataset=dataset, scale=scale)
        for regime in cls.REGIMES:
            trajectories = list(dataset.regime(regime))
            miner = scale.miner_config()
            context.edge_graphs[regime] = build_edge_graph(dataset.network, trajectories, miner)
            context.pace_graphs[regime] = build_pace_graph(dataset.network, trajectories, miner)
            updated, stats = UpdatedPaceGraph.build(
                context.pace_graphs[regime], scale.vpath_config()
            )
            context.updated_graphs[regime] = updated
            context.vpath_stats[regime] = stats
            context.workloads[regime] = generate_workload(
                context.edge_graphs[regime],
                trajectories,
                WorkloadConfig(
                    pairs_per_bucket=scale.pairs_per_bucket,
                    budget_fractions=scale.budget_fractions,
                ),
            )
        context.max_query_budget = max(
            (wq.query.budget for workload in context.workloads.values() for wq in workload.queries),
            default=scale.delta,
        )
        return context

    # -------------------------------------------------------------- #
    # Routers and routing records (cached, shared across figures)
    # -------------------------------------------------------------- #
    def router_settings(self) -> RouterSettings:
        # The heuristic tables only need to answer budgets up to the largest budget in the
        # workload; padding by one delta keeps grid rounding safe.
        max_budget = max(self.scale.delta * 2, self.max_query_budget + self.scale.delta)
        return RouterSettings(
            max_support=self.scale.max_support,
            max_explored=self.scale.max_explored,
            max_budget=max_budget,
            heuristic_sweeps=self.scale.heuristic_sweeps,
        )

    def engine(self, regime: str) -> RoutingEngine:
        """The (cached) batch routing engine for a regime.

        One engine per regime means every method routed in that regime shares
        the same destination-keyed heuristic cache: T-B-P and V-B-P reuse one
        reverse shortest-path tree per destination, and budget tables are
        built once per (graph, δ, destination) instead of once per router.
        """
        if regime not in self._engines:
            self._engines[regime] = RoutingEngine(
                self.pace_graphs[regime],
                self.updated_graphs[regime],
                settings=self.router_settings(),
            )
        return self._engines[regime]

    def router(self, regime: str, method: str | MethodSpec):
        return self.engine(regime).router(method)

    def routing_records(self, regime: str, method: str | MethodSpec) -> list[RoutingRecord]:
        """Run (once) and cache the full workload for a method in a regime.

        Heuristics are prewarmed before the batch so that ``runtime_seconds``
        measures the online routing phase only (the paper's offline/online
        split; pre-computation costs are reported by Figs. 11–12 and Tables
        8–9).  This also keeps per-method runtimes independent of the order
        in which methods are evaluated, since methods in a regime share the
        engine's heuristic cache.
        """
        spec = MethodSpec.coerce(method)
        method = spec.canonical_name
        key = (regime, method)
        if key not in self._records:
            engine = self.engine(regime)
            workload_queries = self.workloads[regime].queries
            if spec.supports_prewarm:
                destinations = {
                    workload_query.query.destination for workload_query in workload_queries
                }
                engine.prewarm(spec, sorted(destinations))
            # Start each method's batch with cold accelerator memos: the
            # evaluation/convolution caches are shared per graph, so without
            # this a method measured later would inherit chain walks already
            # performed by an earlier one, breaking the order independence
            # promised above.  (Queries *within* the batch still share the
            # memos, as they would in any single process.)
            for graph in (engine.pace_graph, engine.updated_graph):
                if graph is not None:
                    accelerator_for(graph).clear_evaluations()
            results = engine.route_many(
                [workload_query.query for workload_query in workload_queries], method=spec
            )
            self._records[key] = [
                RoutingRecord(
                    method=method,
                    regime=regime,
                    distance_bucket=workload_query.distance_bucket,
                    budget_fraction=workload_query.budget_fraction,
                    runtime_seconds=result.runtime_seconds,
                    probability=result.probability,
                    explored=result.explored,
                    found=result.found,
                )
                for workload_query, result in zip(workload_queries, results)
            ]
        return self._records[key]


# --------------------------------------------------------------------------- #
# Table 7 — data statistics
# --------------------------------------------------------------------------- #
def table7_data_statistics(datasets: Sequence[SyntheticDataset]) -> ExperimentReport:
    """Table 7: structural and trajectory statistics of every dataset."""
    stats = [dataset.statistics() for dataset in datasets]
    headers = ("Statistic",) + tuple(s.name for s in stats)
    metric_rows = list(zip(*[s.as_rows() for s in stats]))
    rows = []
    for per_dataset in metric_rows:
        label = per_dataset[0][0]
        rows.append((label,) + tuple(value for _, value in per_dataset))
    return ExperimentReport(
        experiment="Table 7",
        title="Data statistics",
        headers=headers,
        rows=tuple(rows),
        notes="Synthetic stand-ins for the paper's Aalborg / Xi'an data (see DESIGN.md).",
    )


# --------------------------------------------------------------------------- #
# Figure 10 — T-paths, accuracy, V-paths
# --------------------------------------------------------------------------- #
_CARDINALITY_BUCKETS = ((2, 5), (6, 10), (11, 20), (21, 10**6))


def _bucket_label(bounds: tuple[int, int]) -> str:
    low, high = bounds
    return f">{low - 1}" if high >= 10**6 else f"[{low},{high}]"


def fig10a_tpath_counts(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Fig. 10(a): number of T-paths (grouped by cardinality) when varying τ."""
    trajectories = list(context.dataset.regime(regime))
    rows = []
    for tau in context.scale.taus:
        mined = mine_tpaths(context.dataset.network, trajectories, context.scale.miner_config(tau))
        multi = [m for m in mined if m.cardinality >= 2]
        buckets = {bounds: 0 for bounds in _CARDINALITY_BUCKETS}
        for tpath in multi:
            for bounds in _CARDINALITY_BUCKETS:
                if bounds[0] <= tpath.cardinality <= bounds[1]:
                    buckets[bounds] += 1
                    break
        rows.append(
            (tau, len(multi)) + tuple(buckets[bounds] for bounds in _CARDINALITY_BUCKETS)
        )
    headers = ("tau", "#T-paths") + tuple(
        f"card {_bucket_label(bounds)}" for bounds in _CARDINALITY_BUCKETS
    )
    return ExperimentReport(
        experiment="Figure 10a",
        title=f"Number of T-paths vs tau ({context.dataset.name}, {regime})",
        headers=headers,
        rows=tuple(rows),
        notes="Expected shape: larger tau -> fewer T-paths.",
    )


def fig10b_accuracy(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Fig. 10(b): KL divergence of estimated vs. held-out path distributions per τ."""
    trajectories = list(context.dataset.regime(regime))
    rows = []
    for tau in context.scale.taus:
        result = evaluate_accuracy(
            context.dataset.network,
            trajectories,
            tau=tau,
            folds=context.scale.accuracy_folds,
            resolution=context.scale.resolution,
            max_cardinality=context.scale.max_cardinality,
        )
        rows.append(result.as_row())
    return ExperimentReport(
        experiment="Figure 10b",
        title=f"Accuracy (KL divergence, 95% CI) vs tau ({context.dataset.name}, {regime})",
        headers=("tau", "mean KL", "CI low", "CI high", "#paths"),
        rows=tuple(rows),
        notes="Expected shape: KL improves (drops) as tau grows, then degrades when too few T-paths remain.",
    )


def fig10cd_vpaths(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Fig. 10(c,d): number of V-paths, build runtime and out-degrees when varying τ."""
    trajectories = list(context.dataset.regime(regime))
    rows = []
    for tau in context.scale.taus:
        pace = build_pace_graph(context.dataset.network, trajectories, context.scale.miner_config(tau))
        updated, stats = UpdatedPaceGraph.build(pace, context.scale.vpath_config())
        histogram = stats.cardinality_histogram()
        short = sum(count for card, count in histogram.items() if card <= 4)
        long = sum(count for card, count in histogram.items() if card > 4)
        rows.append(
            (
                tau,
                pace.num_tpaths,
                stats.count,
                short,
                long,
                round(stats.build_seconds, 3),
                round(updated.average_out_degree(), 2),
                updated.max_out_degree(),
            )
        )
    return ExperimentReport(
        experiment="Figure 10c/d",
        title=f"V-paths vs tau ({context.dataset.name}, {regime})",
        headers=(
            "tau",
            "#T-paths",
            "#V-paths",
            "card<=4",
            "card>4",
            "build (s)",
            "avg out-degree",
            "max out-degree",
        ),
        rows=tuple(rows),
        notes="Expected shape: smaller tau -> more T-paths -> more V-paths and larger out-degrees.",
    )


# --------------------------------------------------------------------------- #
# Figure 11 / Table 8 — binary heuristic pre-computation
# --------------------------------------------------------------------------- #
def _sample_destinations(context: ExperimentContext, regime: str) -> list[int]:
    seen: list[int] = []
    for workload_query in context.workloads[regime].queries:
        destination = workload_query.query.destination
        if destination not in seen:
            seen.append(destination)
        if len(seen) >= context.scale.sample_destinations:
            break
    return seen


def _binary_builders(context: ExperimentContext, regime: str):
    pace = context.pace_graphs[regime]
    return {
        "T-B-EU": lambda d: EuclideanBinaryHeuristic(pace.network, d),
        "T-B-E": lambda d: EdgeOnlyBinaryHeuristic(pace, d),
        "T-B-P": lambda d: PaceBinaryHeuristic(pace, d),
    }


def fig11_binary_precompute(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Fig. 11: per-destination build time and storage of the binary heuristics."""
    destinations = _sample_destinations(context, regime)
    rows = []
    for name, builder in _binary_builders(context, regime).items():
        runtimes, storages = [], []
        for destination in destinations:
            start = time.perf_counter()
            heuristic = builder(destination)
            runtimes.append(time.perf_counter() - start)
            storages.append(heuristic.storage_bytes())
        rows.append(
            (
                name,
                round(statistics.fmean(runtimes), 4),
                round(statistics.fmean(storages) / 1024.0, 2),
            )
        )
    return ExperimentReport(
        experiment="Figure 11",
        title=f"Binary heuristic pre-computation per destination ({context.dataset.name}, {regime})",
        headers=("method", "runtime (s)", "storage (KB)"),
        rows=tuple(rows),
        notes="Expected shape: T-B-EU fastest, T-B-P slowest; storage identical across variants.",
    )


def table8_binary_precompute_total(context: ExperimentContext) -> ExperimentReport:
    """Table 8: total binary-heuristic pre-computation, extrapolated to all destinations."""
    num_vertices = context.dataset.network.num_vertices
    rows = []
    for regime in context.REGIMES:
        destinations = _sample_destinations(context, regime)
        for name, builder in _binary_builders(context, regime).items():
            runtimes, storages = [], []
            for destination in destinations:
                start = time.perf_counter()
                heuristic = builder(destination)
                runtimes.append(time.perf_counter() - start)
                storages.append(heuristic.storage_bytes())
            total_hours = statistics.fmean(runtimes) * num_vertices / 3600.0
            total_gb = statistics.fmean(storages) * num_vertices / (1024.0**3)
            rows.append((regime, name, round(total_hours, 4), round(total_gb, 5)))
    return ExperimentReport(
        experiment="Table 8",
        title=f"Binary heuristics pre-computation, all destinations ({context.dataset.name})",
        headers=("regime", "method", "run time (h)", "storage (GB)"),
        rows=tuple(rows),
        notes=(
            "Totals are extrapolated from a sample of destinations "
            f"({context.scale.sample_destinations} per regime) times |V|."
        ),
    )


# --------------------------------------------------------------------------- #
# Figure 12 / Table 9 — budget-specific heuristic pre-computation
# --------------------------------------------------------------------------- #
def _budget_heuristic_cost(
    context: ExperimentContext, regime: str, delta: float, destinations: Sequence[int]
) -> tuple[float, float, float]:
    """Mean per-destination (build seconds, storage bytes, Bellman sweeps) for one δ."""
    pace = context.pace_graphs[regime]
    settings = context.router_settings()
    runtimes, storages, sweeps = [], [], []
    for destination in destinations:
        heuristic = BudgetSpecificHeuristic(
            pace,
            destination,
            BudgetHeuristicConfig(
                delta=delta,
                max_budget=max(settings.max_budget, delta),
                sweeps=context.scale.heuristic_sweeps,
            ),
        )
        runtimes.append(heuristic.build_seconds)
        storages.append(heuristic.storage_bytes())
        sweeps.append(heuristic.sweeps_performed)
    return statistics.fmean(runtimes), statistics.fmean(storages), statistics.fmean(sweeps)


def fig12_budget_precompute(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Fig. 12: per-destination heuristic-table build time and size when varying δ."""
    destinations = _sample_destinations(context, regime)
    rows = []
    for delta in context.scale.deltas:
        runtime, storage, sweeps = _budget_heuristic_cost(context, regime, delta, destinations)
        rows.append(
            (int(delta), round(runtime, 4), round(storage / 1024.0, 2), round(sweeps, 1))
        )
    return ExperimentReport(
        experiment="Figure 12",
        title=f"Budget-specific heuristic pre-computation per destination ({context.dataset.name}, {regime})",
        headers=("delta", "runtime (s)", "storage (KB)", "sweeps"),
        rows=tuple(rows),
        notes=(
            "Expected shape: smaller delta -> larger tables and longer build times. "
            "'sweeps' counts the Bellman passes of the dirty-worklist builder."
        ),
    )


def table9_budget_precompute_total(context: ExperimentContext) -> ExperimentReport:
    """Table 9: total budget-specific pre-computation, extrapolated to all destinations."""
    num_vertices = context.dataset.network.num_vertices
    rows = []
    for regime in context.REGIMES:
        destinations = _sample_destinations(context, regime)
        for delta in context.scale.deltas:
            runtime, storage, _ = _budget_heuristic_cost(context, regime, delta, destinations)
            rows.append(
                (
                    regime,
                    int(delta),
                    round(runtime * num_vertices / 3600.0, 4),
                    round(storage * num_vertices / (1024.0**3), 5),
                )
            )
    return ExperimentReport(
        experiment="Table 9",
        title=f"Budget-specific heuristics pre-computation, all destinations ({context.dataset.name})",
        headers=("regime", "delta", "run time (h)", "storage (GB)"),
        rows=tuple(rows),
        notes="Totals extrapolated from sampled destinations times |V|.",
    )


# --------------------------------------------------------------------------- #
# Figures 13–18 — routing runtimes
# --------------------------------------------------------------------------- #
def routing_report_by_distance(
    context: ExperimentContext,
    methods: Sequence[str],
    *,
    regime: str,
    experiment: str,
    title: str,
) -> ExperimentReport:
    """Average routing runtime per method, grouped by source–destination distance bucket."""
    workload = context.workloads[regime]
    rows = []
    for bucket in workload.bucket_labels:
        row: list[object] = [bucket]
        for method in methods:
            records = [
                r for r in context.routing_records(regime, method) if r.distance_bucket == bucket
            ]
            row.append(round(statistics.fmean(r.runtime_seconds for r in records), 4) if records else "-")
        rows.append(tuple(row))
    return ExperimentReport(
        experiment=experiment,
        title=title,
        headers=("distance",) + tuple(methods),
        rows=tuple(rows),
        notes="Cells are mean routing runtimes in seconds; longer distances should cost more.",
    )


def routing_report_by_budget(
    context: ExperimentContext,
    methods: Sequence[str],
    *,
    regime: str,
    experiment: str,
    title: str,
) -> ExperimentReport:
    """Average routing runtime per method, grouped by budget level (% of least expected time)."""
    workload = context.workloads[regime]
    rows = []
    for fraction in workload.budget_fractions():
        row: list[object] = [f"{int(round(fraction * 100))}%"]
        for method in methods:
            records = [
                r
                for r in context.routing_records(regime, method)
                if abs(r.budget_fraction - fraction) < 1e-9
            ]
            row.append(round(statistics.fmean(r.runtime_seconds for r in records), 4) if records else "-")
        rows.append(tuple(row))
    return ExperimentReport(
        experiment=experiment,
        title=title,
        headers=("budget",) + tuple(methods),
        rows=tuple(rows),
        notes="Cells are mean routing runtimes in seconds; larger budgets should cost more.",
    )


# --------------------------------------------------------------------------- #
# Table 10 — overall method comparison
# --------------------------------------------------------------------------- #
def table10_method_comparison(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Table 10: storage, pre-computation and mean routing runtime of every method."""
    destinations = _sample_destinations(context, regime)
    num_vertices = context.dataset.network.num_vertices
    delta = context.scale.delta
    methods = ("T-B-EU", "T-B-E", "T-B-P", "V-B-P", f"T-BS-{int(delta)}", f"V-BS-{int(delta)}")

    binary_builders = _binary_builders(context, regime)
    rows = []
    for method in methods:
        if method in binary_builders or method == "V-B-P":
            builder = binary_builders["T-B-P"] if method == "V-B-P" else binary_builders[method]
            runtimes, storages = [], []
            for destination in destinations:
                start = time.perf_counter()
                heuristic = builder(destination)
                runtimes.append(time.perf_counter() - start)
                storages.append(heuristic.storage_bytes())
            precompute_hours = statistics.fmean(runtimes) * num_vertices / 3600.0
            storage_gb = statistics.fmean(storages) * num_vertices / (1024.0**3)
        else:
            runtime, storage, _ = _budget_heuristic_cost(context, regime, delta, destinations)
            precompute_hours = runtime * num_vertices / 3600.0
            storage_gb = storage * num_vertices / (1024.0**3)
        if method.startswith("V-"):
            # V-path methods additionally pay the (shared) V-path closure once per graph.
            precompute_hours += context.vpath_stats[regime].build_seconds / 3600.0
        records = context.routing_records(regime, method)
        routing_seconds = statistics.fmean(r.runtime_seconds for r in records)
        rows.append(
            (
                method,
                round(storage_gb, 5),
                round(precompute_hours, 4),
                round(routing_seconds, 4),
            )
        )
    return ExperimentReport(
        experiment="Table 10",
        title=f"Comparison of methods ({context.dataset.name}, {regime})",
        headers=("method", "storage (GB)", "precomputation (h)", "routing (s)"),
        rows=tuple(rows),
        notes="Expected ordering: V-BS fastest routing; budget-specific methods cost the most to pre-compute.",
    )


# --------------------------------------------------------------------------- #
# Figure 19 — case study against an expected-time (commercial-style) route
# --------------------------------------------------------------------------- #
def fig19_case_study(context: ExperimentContext, *, regime: str = "peak") -> ExperimentReport:
    """Fig. 19: arrival probabilities of the stochastic route vs. an expected-time route.

    The paper compares against Google/Baidu Maps routes; commercial routers
    optimise (expected) travel time, so the stand-in baseline is the
    least-expected-time path computed on the same uncertain graph.
    """
    workload = context.workloads[regime]
    pace = context.pace_graphs[regime]
    edge_graph = context.edge_graphs[regime]
    method = f"V-BS-{int(context.scale.delta)}"
    router = context.router(regime, method)

    # Pick medium-length queries at the 100% budget level — the regime where route choice matters.
    candidates = [
        wq
        for wq in workload.queries
        if abs(wq.budget_fraction - 1.0) < 1e-9 and wq.distance_bucket != workload.bucket_labels[0]
    ] or list(workload.queries)
    rows = []
    for workload_query in candidates[:2]:
        query = workload_query.query
        stochastic = router.route(query)
        baseline_path, _ = shortest_path(
            pace.network,
            query.source,
            query.destination,
            lambda e: edge_graph.expected_cost(e.edge_id),
        )
        baseline_distribution = pace.path_cost_distribution(baseline_path, max_support=64)
        baseline_probability = baseline_distribution.prob_at_most(query.budget)
        rows.append(
            (
                f"{query.source}->{query.destination}",
                round(query.budget / 60.0, 1),
                round(stochastic.probability, 3),
                round(baseline_probability, 3),
                len(stochastic.path.edges) if stochastic.path else 0,
                len(baseline_path.edges),
            )
        )
    return ExperimentReport(
        experiment="Figure 19",
        title=f"Case study: {method} vs expected-time route ({context.dataset.name}, {regime})",
        headers=(
            "query",
            "budget (min)",
            "P(on time) stochastic",
            "P(on time) expected-time route",
            "#edges stochastic",
            "#edges baseline",
        ),
        rows=tuple(rows),
        notes="Expected shape: the stochastic route's on-time probability is at least the baseline's.",
    )
