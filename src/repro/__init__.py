"""repro — Efficient stochastic routing in path-centric (PACE) uncertain road networks.

This package reproduces the system described in *Efficient Stochastic Routing
in Path-Centric Uncertain Road Networks* (VLDB 2024): the PACE uncertain
road-network model, the binary and budget-specific admissible search
heuristics, the virtual-path (V-path) construction that restores
stochastic-dominance pruning, the routing algorithms built on top of them, and
the full experimental harness around two synthetic city datasets.

Typical usage::

    from repro import (
        build_pace_graph, UpdatedPaceGraph, create_router, RoutingQuery,
    )

    pace = build_pace_graph(network, trajectories)
    updated, _ = UpdatedPaceGraph.build(pace)
    router = create_router("V-BS-60", pace, updated)
    result = router.route(RoutingQuery(source, destination, budget=900))
    print(result.summary())
"""

from repro.core import (
    Distribution,
    EdgeGraph,
    ElementKind,
    JointDistribution,
    PaceGraph,
    Path,
    ReproError,
    WeightedElement,
)
from repro.heuristics import (
    BudgetHeuristicConfig,
    BudgetSpecificHeuristic,
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    NoHeuristic,
    PaceBinaryHeuristic,
)
from repro.network import GridCityConfig, RoadNetwork, generate_grid_city
from repro.persistence import load_index, save_index
from repro.routing import (
    METHOD_NAMES,
    EngineSpec,
    MethodSpec,
    ProcessBackend,
    RouterSettings,
    RouteRequest,
    RouteResponse,
    RoutingEngine,
    RoutingQuery,
    RoutingResult,
    RoutingService,
    SerialBackend,
    ThreadBackend,
    create_router,
)
from repro.tpaths import TPathMinerConfig, build_edge_graph, build_pace_graph, mine_tpaths
from repro.trajectories import Trajectory, TrajectoryGeneratorConfig, generate_trajectories
from repro.vpaths import UpdatedPaceGraph, VPathBuilderConfig, build_vpaths

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Distribution",
    "JointDistribution",
    "Path",
    "EdgeGraph",
    "PaceGraph",
    "ElementKind",
    "WeightedElement",
    "ReproError",
    # network
    "RoadNetwork",
    "GridCityConfig",
    "generate_grid_city",
    # trajectories
    "Trajectory",
    "TrajectoryGeneratorConfig",
    "generate_trajectories",
    # model construction
    "TPathMinerConfig",
    "mine_tpaths",
    "build_edge_graph",
    "build_pace_graph",
    "VPathBuilderConfig",
    "build_vpaths",
    "UpdatedPaceGraph",
    # persistence
    "save_index",
    "load_index",
    # heuristics
    "NoHeuristic",
    "EuclideanBinaryHeuristic",
    "EdgeOnlyBinaryHeuristic",
    "PaceBinaryHeuristic",
    "BudgetHeuristicConfig",
    "BudgetSpecificHeuristic",
    # routing
    "RoutingQuery",
    "RoutingResult",
    "RouterSettings",
    "create_router",
    "METHOD_NAMES",
    "MethodSpec",
    "RoutingEngine",
    "EngineSpec",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "RouteRequest",
    "RouteResponse",
    "RoutingService",
]
