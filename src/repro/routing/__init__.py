"""Stochastic routing algorithms: baselines, heuristic-guided PACE routing and V-path routing."""

from repro.routing.dijkstra import (
    free_flow_costs,
    shortest_path,
    shortest_path_cost,
    single_source_costs,
)
from repro.routing.dominance import DominancePruner
from repro.routing.engine import (
    METHOD_NAMES,
    HeuristicCache,
    RouterSettings,
    RoutingEngine,
    create_router,
)
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.routing.tpath_routing import HeuristicPaceRouter, HeuristicRouterConfig
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig

__all__ = [
    "RoutingQuery",
    "RoutingResult",
    "NaivePaceRouter",
    "NaiveRouterConfig",
    "HeuristicPaceRouter",
    "HeuristicRouterConfig",
    "VPathRouter",
    "VPathRouterConfig",
    "DominancePruner",
    "create_router",
    "RouterSettings",
    "RoutingEngine",
    "HeuristicCache",
    "METHOD_NAMES",
    "shortest_path",
    "shortest_path_cost",
    "single_source_costs",
    "free_flow_costs",
]
