"""Stochastic routing algorithms: baselines, heuristic-guided PACE routing and V-path routing.

The serving stack layers as: routers (one per method) → the batch
:class:`RoutingEngine` with its shared heuristic cache → pluggable
:mod:`execution backends <repro.routing.backends>` (serial / threads /
processes) → the typed :mod:`service API <repro.routing.service>` with its
wire-format requests, responses and error taxonomy.
"""

from repro.routing.backends import (
    ArtifactRef,
    DatasetRecipe,
    EngineSpec,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.routing.dijkstra import (
    free_flow_costs,
    shortest_path,
    shortest_path_cost,
    single_source_costs,
)
from repro.routing.dominance import DominancePruner
from repro.routing.engine import (
    METHOD_NAMES,
    EngineStats,
    HeuristicCache,
    RouterSettings,
    RoutingEngine,
    create_router,
)
from repro.routing.methods import MethodSpec
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.routing.service import (
    ERROR_CODES,
    RouteError,
    RouteRequest,
    RouteResponse,
    RoutingService,
)
from repro.routing.tpath_routing import HeuristicPaceRouter, HeuristicRouterConfig
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig

__all__ = [
    "RoutingQuery",
    "RoutingResult",
    "NaivePaceRouter",
    "NaiveRouterConfig",
    "HeuristicPaceRouter",
    "HeuristicRouterConfig",
    "VPathRouter",
    "VPathRouterConfig",
    "DominancePruner",
    "MethodSpec",
    "create_router",
    "RouterSettings",
    "RoutingEngine",
    "EngineStats",
    "HeuristicCache",
    "METHOD_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "DatasetRecipe",
    "ArtifactRef",
    "EngineSpec",
    "ERROR_CODES",
    "RouteError",
    "RouteRequest",
    "RouteResponse",
    "RoutingService",
    "shortest_path",
    "shortest_path_cost",
    "single_source_costs",
    "free_flow_costs",
]
