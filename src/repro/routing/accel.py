"""Batched frontier expansion: the per-query search hot path as ndarray kernels.

The best-first routers (:mod:`repro.routing.tpath_routing`,
:mod:`repro.routing.vpath_routing`) pop one candidate at a time but then
iterate its successor elements in pure Python: cycle check, budget prune,
path-cost evaluation and one Eq. 3 ``maxProb`` call *per edge*.  This module
compiles that inner loop into bulk operations over a pre-enumerated layout:

* :class:`FrontierAccelerator` — built once per graph (cached by content
  fingerprint via :func:`accelerator_for`), it flattens every vertex's
  ``outgoing_elements`` into CSR-style ndarrays: successor targets, element
  min-costs (distribution minima and edge-graph minima), simple-path flags,
  the elements' inner vertices for cycle masking, and the concatenated
  support value/probability columns of the element distributions.  A popped
  candidate's entire successor set is one slice.

* :class:`TExpansionKernel` / :class:`VExpansionKernel` — per-query kernels
  that evaluate the budget prune (``path_min_cost + getMin > B``), the
  incremental candidate min-cost, and the ``maxProb`` priorities of *all*
  surviving successors in a handful of ndarray ops — one segmented
  :func:`~repro.heuristics.base.max_prob_segments` call per expansion
  (reduced with ``np.add.reduceat``) instead of one ``max_prob`` per edge.

* :class:`ChainTrail` — the T-kernel's PACE-evaluation cache.  The dominant
  per-expansion cost is :meth:`PaceGraph.path_cost_distribution`, which
  walks the coarsest T-path sequence (CPS) from scratch for every pushed
  successor.  Each candidate instead carries its whole CPS with the chain
  states after every milestone, and a successor reuses the longest prefix
  that provably survives the extension: when no graph element contains the
  junction edge pair (pre-indexed in ``crossing_pairs``), the parent's
  *entire* CPS survives and the child chain-steps only its own new
  elements; otherwise milestones up to ``len(parent) - L`` survive
  unconditionally (no element is long enough to reach the junction from
  there) and deeper ones are verified against the child's re-derived greedy
  choices.  Finished evaluations additionally memoize on the accelerator:
  a path's cost distribution depends only on the graph, never on the query,
  so candidates, queries and routers sharing one accelerator skip chain
  walks other searches already performed.

* :class:`ArrayChainStates` — the chain folds themselves run array-native.
  The reference fold (:meth:`PaceGraph.chain_step`) shifts and scales every
  live (outcome, total) entry through Python dicts; the kernel keeps the
  states as one flat support with per-outcome slices (CSR layout) and
  performs each fold per overlap-projection group as one grouping
  (``np.unique``) plus a 2-D broadcast and one flat segment accumulation
  (``np.bincount``, which adds repeated indices one at a time in array
  order — exactly the dict loop's accumulation order); groups too small to
  amortize numpy's fixed call costs run the reference dict loop verbatim
  instead.  Every float operation matches the reference bitwise, so batched
  and scalar expansion return identical results down to the last bit.

Every kernel decision is arithmetically identical to the scalar loop it
replaces (same float operations in the same order), so routers running with
``expansion="batched"`` return bitwise the same results as
``expansion="scalar"`` — property-tested in ``tests/test_expansion_parity.py``.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.distributions import Distribution
from repro.core.elements import WeightedElement
from repro.core.errors import PathError
from repro.core.pace_graph import DEFAULT_MAX_CHAIN_STATES, PaceGraph
from repro.core.paths import Path
from repro.heuristics.base import Heuristic, max_prob_segments
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "FrontierAccelerator",
    "accelerator_for",
    "ArrayChainStates",
    "ChainTrail",
    "TCandidate",
    "TExpansionKernel",
    "VExpansionKernel",
]

#: Chain states: (cost vector of the last CPS element) -> {total -> probability}.
ChainStates = dict[tuple[float, ...], dict[float, float]]

#: Graphs the accelerator can be built over.
GraphLike = PaceGraph | UpdatedPaceGraph


class FrontierAccelerator:
    """CSR-style flat ndarray layout over a graph's ``outgoing_elements``.

    Built once per graph content (see :func:`accelerator_for`); all arrays are
    indexed by *slot*, where the slots of vertex ``v``'s successor elements
    are the contiguous range ``offsets[row(v)] : offsets[row(v) + 1]``, in
    exactly the order ``graph.outgoing_elements(v)`` yields them (so batched
    and scalar expansion push candidates in the same heap order).
    """

    def __init__(self, graph: GraphLike) -> None:
        pace = graph.pace_graph if isinstance(graph, UpdatedPaceGraph) else graph
        self.fingerprint: str = graph.content_fingerprint()
        #: Upper bound on how many edges any CPS element can span (the
        #: trail stability window of the T-kernel).
        self.max_cardinality: int = pace.max_element_cardinality()
        #: Every consecutive edge pair occurring inside a T-path.  An element
        #: of a path's CPS can only straddle the junction where an extension
        #: was appended if its own edges contain the two junction edges
        #: back to back — single-edge elements never can, and single-edge
        #: T-paths are folded into the edge weights — so a junction pair
        #: absent from this set proves the parent's whole CPS survives the
        #: extension (the T-kernel's fast path).
        self.crossing_pairs: frozenset[tuple[int, int]] = frozenset(
            pair for tpath in pace.tpaths() for pair in itertools.pairwise(tpath.path.edges)
        )
        vertex_ids = sorted(pace.network.vertex_ids())
        self._row_of: dict[int, int] = {v: i for i, v in enumerate(vertex_ids)}
        elements: list[WeightedElement] = []
        offsets = np.zeros(len(vertex_ids) + 1, dtype=np.int64)
        for row, vertex in enumerate(vertex_ids):
            elements.extend(graph.outgoing_elements(vertex))
            offsets[row + 1] = len(elements)
        self.offsets: np.ndarray = offsets
        self.elements: list[WeightedElement] = elements
        count = len(elements)
        self.targets: np.ndarray = np.fromiter(
            (e.path.target for e in elements), dtype=np.int64, count=count
        )
        self.dist_min: np.ndarray = np.fromiter(
            (e.distribution.min() for e in elements), dtype=float, count=count
        )
        self.edge_min: np.ndarray = np.fromiter(
            (pace.path_min_cost(e.path) for e in elements), dtype=float, count=count
        )
        self.simple: np.ndarray = np.fromiter(
            (e.path.is_simple() for e in elements), dtype=bool, count=count
        )
        #: Per slot: the element's vertices past its source — what a cycle
        #: check needs to test against the candidate path's visited set.
        self.inner_vertices: list[tuple[int, ...]] = [e.path.vertices[1:] for e in elements]
        support_offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum([len(e.distribution) for e in elements], out=support_offsets[1:])
        self.support_offsets: np.ndarray = support_offsets
        self.support_values: np.ndarray = (
            np.concatenate([e.distribution.values_array for e in elements])
            if elements
            else np.empty(0)
        )
        self.support_probs: np.ndarray = (
            np.concatenate([e.distribution.probabilities_array for e in elements])
            if elements
            else np.empty(0)
        )
        self._lock = threading.Lock()
        self._target_min_costs: weakref.WeakKeyDictionary[Heuristic, np.ndarray] = (
            weakref.WeakKeyDictionary()
        )
        self._fold_plans: dict[tuple[tuple[int, ...], tuple[int, ...]], _FoldPlan] = {}
        self._evaluations: OrderedDict[
            tuple[tuple[int, ...], int], tuple[Distribution, "ChainTrail"]
        ] = OrderedDict()
        self._convolutions: OrderedDict[tuple[bytes, bytes, int, int], Distribution] = OrderedDict()

    def slot_range(self, vertex: int) -> tuple[int, int]:
        """The slot range ``[lo, hi)`` of a vertex's successor elements."""
        row = self._row_of.get(vertex)
        if row is None:
            return 0, 0
        return int(self.offsets[row]), int(self.offsets[row + 1])

    def target_min_costs(self, heuristic: Heuristic) -> np.ndarray:
        """``getMin(target)`` per slot, cached per heuristic instance.

        One vectorized ``min_cost_many`` over all slots per (graph,
        heuristic) pair; thereafter every expansion prices its successor
        slice with a plain array slice.  Keyed weakly so evicted heuristics
        release their column.
        """
        with self._lock:
            cached = self._target_min_costs.get(heuristic)
        if cached is not None:
            return cached
        values = np.asarray(heuristic.min_cost_many(self.targets), dtype=float)
        values.setflags(write=False)
        with self._lock:
            existing = self._target_min_costs.get(heuristic)
            if existing is not None:
                return existing
            self._target_min_costs[heuristic] = values
        return values

    def fold_plan(self, previous: WeightedElement, element: WeightedElement) -> "_FoldPlan":
        """The cached fold plan of one consecutive CPS element pair.

        Everything state-independent about the fold — the overlap structure,
        the conditional weights and total shifts per element outcome — is a
        pure function of the two elements' paths and joints, so it is
        computed once per pair (keyed by the edge tuples: elements are
        re-derived as fresh objects during CPS construction) and shared by
        every chain step and every query over this graph.
        """
        key = (previous.path.edges, element.path.edges)
        with self._lock:
            plan = self._fold_plans.get(key)
        if plan is not None:
            return plan
        built = _build_fold_plan(previous, element)
        with self._lock:
            return self._fold_plans.setdefault(key, built)

    def evaluation_get(
        self, key: tuple[tuple[int, ...], int]
    ) -> tuple[Distribution, "ChainTrail"] | None:
        """A memoized chain evaluation, keyed by ``(path edges, max_support)``.

        A path's cost distribution (and the chain trail behind it) is a pure
        function of the immutable graph content the accelerator was built
        over — not of any query — so evaluations memoize across candidates,
        queries and routers sharing this accelerator.  This is the path-level
        analogue of :meth:`fold_plan`: repeated queries over the same network
        re-explore largely the same frontier, and a hit skips the whole chain
        walk.  Capacity-bounded LRU (:data:`_EVALUATION_CACHE_SIZE`); trail
        states are shared tuples, so an entry's marginal footprint is one
        chain state plus one distribution.
        """
        with self._lock:
            entry = self._evaluations.get(key)
            if entry is not None:
                self._evaluations.move_to_end(key)
            return entry

    def evaluation_put(
        self, key: tuple[tuple[int, ...], int], value: tuple[Distribution, "ChainTrail"]
    ) -> None:
        """Memoize one chain evaluation (first insert wins, LRU-bounded)."""
        with self._lock:
            self._evaluations.setdefault(key, value)
            while len(self._evaluations) > _EVALUATION_CACHE_SIZE:
                self._evaluations.popitem(last=False)

    def convolution_get(self, key: tuple[bytes, bytes, int, int]) -> Distribution | None:
        """A memoized candidate convolution, the V-router analogue of
        :meth:`evaluation_get`.

        A V-path candidate's distribution is the convolution chain of its
        element decomposition (Lemma 4.1), so extending a parent distribution
        by a slot's element is a pure function of ``(parent content, slot,
        max_support)`` — the parent's support arrays serve as the content key
        (two paths with bitwise-equal distributions convolve to bitwise-equal
        results).  Repeated queries over the same network — the same
        source–destination pair at several budgets, most obviously — re-walk
        the same candidates and skip the convolution outright.
        """
        with self._lock:
            entry = self._convolutions.get(key)
            if entry is not None:
                self._convolutions.move_to_end(key)
            return entry

    def convolution_put(self, key: tuple[bytes, bytes, int, int], value: Distribution) -> None:
        """Memoize one candidate convolution (first insert wins, LRU-bounded)."""
        with self._lock:
            self._convolutions.setdefault(key, value)
            while len(self._convolutions) > _EVALUATION_CACHE_SIZE:
                self._convolutions.popitem(last=False)

    def clear_evaluations(self) -> None:
        """Drop the evaluation + convolution memos (benchmarks isolating the cold hot path)."""
        with self._lock:
            self._evaluations.clear()
            self._convolutions.clear()

    def support_segments(
        self, slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The concatenated distribution supports of the given slots.

        Returns ``(values, probabilities, offsets)`` ready for
        :func:`~repro.heuristics.base.max_prob_segments`.
        """
        starts = self.support_offsets[slots]
        counts = self.support_offsets[slots + 1] - starts
        offsets = np.zeros(len(slots) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        positions = np.arange(offsets[-1], dtype=np.int64) + np.repeat(
            starts - offsets[:-1], counts
        )
        return self.support_values[positions], self.support_probs[positions], offsets


# ---------------------------------------------------------------------- #
# Fingerprint-keyed accelerator cache (shared across routers and engines)
# ---------------------------------------------------------------------- #

#: Bound on memoized chain evaluations per accelerator.  Sized for a serving
#: tier's working set (a few thousand distinct frontier paths per workload);
#: entries share their trail-prefix arrays, so the marginal footprint per
#: entry is a few kilobytes.
_EVALUATION_CACHE_SIZE = 16384

_MAX_CACHED_ACCELERATORS = 8
_cache_lock = threading.Lock()
_accelerators: OrderedDict[str, FrontierAccelerator] = OrderedDict()


def accelerator_for(graph: GraphLike) -> FrontierAccelerator:
    """The (cached) frontier accelerator of a graph, keyed by content fingerprint.

    Routers over structurally identical graphs — every router of one engine,
    or several engines booted from the same artifact store — share one
    accelerator; graphs mutated after acceleration (``add_tpath``) get a
    fresh one because their fingerprint changes.  The cache keeps the most
    recently used few and is thread-safe (a concurrent duplicate build is
    benign: the first insert wins).
    """
    fingerprint = graph.content_fingerprint()
    with _cache_lock:
        cached = _accelerators.get(fingerprint)
        if cached is not None:
            _accelerators.move_to_end(fingerprint)
            return cached
    built = FrontierAccelerator(graph)
    with _cache_lock:
        cached = _accelerators.get(fingerprint)
        if cached is not None:
            return cached
        _accelerators[fingerprint] = built
        while len(_accelerators) > _MAX_CACHED_ACCELERATORS:
            _accelerators.popitem(last=False)
    return built


# ---------------------------------------------------------------------- #
# Array-native PACE chain folds (bitwise equal to PaceGraph's dict fold)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ArrayChainStates:
    """Chain states as one flat support with per-outcome slices (CSR layout).

    ``totals[offsets[k]:offsets[k + 1]]`` (and the same slice of ``probs``)
    holds the accumulated-total support of outcome ``outcomes[k]`` in
    *first-encounter order* — exactly the insertion order of the reference
    fold's inner dicts — and the outcomes appear in the reference's
    outer-dict order, so the flat arrays read end to end exactly as the
    reference iterates its buckets.  That makes finishing a chain (one
    segment sum over the whole support) and disjoint folds (every state
    participates) zero-copy.  Arrays are never mutated after construction,
    so one state is safely shared by every child that resumes a chain from
    it.
    """

    outcomes: tuple[tuple[float, ...], ...]
    offsets: tuple[int, ...]
    totals: np.ndarray
    probs: np.ndarray


def _states_from_dicts(states: ChainStates) -> ArrayChainStates:
    """Dict-of-dicts chain states -> flat arrays (iteration order kept)."""
    flat_totals: list[float] = []
    flat_probs: list[float] = []
    offsets = [0]
    for bucket in states.values():
        flat_totals.extend(bucket.keys())
        flat_probs.extend(bucket.values())
        offsets.append(len(flat_totals))
    return ArrayChainStates(
        tuple(states.keys()),
        tuple(offsets),
        np.asarray(flat_totals, dtype=float),
        np.asarray(flat_probs, dtype=float),
    )


def _states_to_dicts(states: ArrayChainStates) -> ChainStates:
    """Flat arrays -> dict-of-dicts (insertion order = first-encounter order)."""
    totals = states.totals.tolist()
    probs = states.probs.tolist()
    return {
        outcome: dict(zip(totals[start:stop], probs[start:stop]))
        for outcome, start, stop in zip(
            states.outcomes, states.offsets, states.offsets[1:]
        )
    }


def _seed_states(element: WeightedElement) -> ArrayChainStates:
    """The chain state after the first CPS element (mirrors ``seed_chain_states``)."""
    states: ChainStates = {}
    for costs, prob in element.joint_distribution().items():
        bucket = states.setdefault(costs, {})
        total = sum(costs)
        bucket[total] = bucket.get(total, 0.0) + prob
    return _states_from_dicts(states)


def _ordered_segment_sum(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` per distinct key, exactly like a sequential dict loop.

    Returns the distinct keys in first-encounter order with their per-key
    sums accumulated in array order — bitwise identical to
    ``d[k] = d.get(k, 0.0) + v`` over ``zip(keys, values)``: ``np.bincount``
    adds repeated bins one element at a time in array order, so every
    per-key addition chain associates exactly as the dict loop does.
    """
    unique, first_index, inverse = np.unique(keys, return_index=True, return_inverse=True)
    sums = np.bincount(inverse, weights=values, minlength=len(unique))
    order = np.argsort(first_index)
    return unique[order], sums[order]


@dataclass(frozen=True)
class _FoldGroupPlan:
    """The outcomes of a fold plan that share one overlap projection.

    ``weights[j]`` is the factor every matching state probability is scaled
    by for the group's ``j``-th outcome — the outcome's own probability for
    a disjoint fold, or its conditional probability given the overlap.
    ``added[j]`` is the constant every accumulated total is shifted by (the
    outcome's cost mass past the overlap).  Both are the exact floats the
    reference fold computes per step, cached because they only depend on
    the element pair.  ``positions`` are the outcomes' indices in the
    plan-wide emit order (the element joint's iteration order), which the
    fold must reproduce because it is the downstream accumulation order.
    """

    projection: tuple[float, ...]
    costs: tuple[tuple[float, ...], ...]
    weights: np.ndarray
    added: np.ndarray
    positions: tuple[int, ...]


@dataclass(frozen=True)
class _FoldPlan:
    """The state-independent part of one chain fold, cached per element pair.

    ``prev_positions`` is empty for a disjoint fold (all states form one
    group under the empty projection).  ``count`` is the number of surviving
    outcomes across all groups; outcomes whose overlap marginal carries no
    mass are dropped here, exactly as the reference skips them.
    """

    prev_positions: tuple[int, ...]
    count: int
    groups: tuple[_FoldGroupPlan, ...]


def _build_fold_plan(previous: WeightedElement, element: WeightedElement) -> _FoldPlan:
    """Precompute the reference fold's per-outcome constants for one element pair."""
    overlap = previous.path.overlap_with(element.path)
    joint = element.joint_distribution()
    if overlap is None:
        prev_positions: tuple[int, ...] = ()
        survivors = [((), costs, prob, sum(costs)) for costs, prob in joint.items()]
    else:
        overlap_edges = overlap.edges
        overlap_count = len(overlap_edges)
        prev_positions = tuple(previous.path.edges.index(e) for e in overlap_edges)
        marginal = joint.marginal(overlap_edges)
        survivors = []
        for costs, prob in joint.items():
            overlap_costs = costs[:overlap_count]
            denominator = marginal.probability_of(overlap_costs)
            if denominator <= 0:
                continue
            survivors.append(
                (overlap_costs, costs, prob / denominator, sum(costs[overlap_count:]))
            )
    by_projection: dict[
        tuple[float, ...], list[tuple[int, tuple[float, ...], float, float]]
    ] = {}
    for position, (projection, costs, weight, added) in enumerate(survivors):
        by_projection.setdefault(projection, []).append((position, costs, weight, added))
    groups = tuple(
        _FoldGroupPlan(
            projection=projection,
            costs=tuple(entry[1] for entry in entries),
            weights=np.array([entry[2] for entry in entries]),
            added=np.array([entry[3] for entry in entries]),
            positions=tuple(entry[0] for entry in entries),
        )
        for projection, entries in by_projection.items()
    )
    return _FoldPlan(prev_positions, len(survivors), groups)


#: Below this many (state entry x outcome) products, a fold group runs the
#: reference dict loop directly instead of the 2-D ndarray path: numpy's
#: fixed per-group cost (unique + argsort + broadcasts + bincount, ~20us)
#: dwarfs a few hundred Python float operations, and fragmented overlap
#: folds shatter into dozens of such tiny groups.  The dict loop *is* the
#: reference, so the hybrid cannot disturb parity.  Tuned on the city
#: workload's T-B-P queries (the measured crossover sits between 256 and
#: 512 entry-products).
_VECTOR_FOLD_MIN_WORK = 256


def _chain_step(
    graph: PaceGraph,
    accel: FrontierAccelerator,
    states: ArrayChainStates,
    previous: WeightedElement,
    element: WeightedElement,
    max_states: int | None,
) -> ArrayChainStates:
    """Advance the chain by one CPS element, bitwise like ``PaceGraph.chain_step``.

    The reference shifts every accumulated total by the new outcome's added
    cost and scales every probability by its (conditional) weight, merging
    equal keys as it goes.  Here all outcomes of one overlap projection fold
    together over the flat state support (for a disjoint fold that is the
    whole ``states.totals`` array, zero-copy): the matching entries are
    deduplicated once (``np.unique``), the shift/scale runs as a single 2-D
    broadcast over (outcome, entry), and the merges are one flat
    ``np.bincount`` whose row-major order adds every bucket's contributions
    exactly as the reference dict loop does.  Two escape hatches keep this
    both fast and exact: groups whose total work is tiny (see
    :data:`_VECTOR_FOLD_MIN_WORK`) run the reference dict loop verbatim
    instead of paying numpy's fixed per-call cost, and outcomes where the
    vector path could merge *differently* — two distinct totals colliding
    onto one key after a shift — are detected and replayed through the dict
    loop as well.
    """
    plan = accel.fold_plan(previous, element)
    count = plan.count
    out_outcomes: list[tuple[float, ...] | None] = [None] * count
    out_totals: list[np.ndarray | list[float] | None] = [None] * count
    out_probs: list[np.ndarray | list[float] | None] = [None] * count
    members: dict[tuple[float, ...], list[int]] | None = None
    if plan.prev_positions:
        members = {}
        for position, costs_prev in enumerate(states.outcomes):
            projection = tuple(costs_prev[i] for i in plan.prev_positions)
            members.setdefault(projection, []).append(position)
    offsets = states.offsets
    for group in plan.groups:
        if members is None:
            # Disjoint fold: every state matches every outcome, and the flat
            # layout already concatenates them in the reference's order.
            totals_flat = states.totals
            probs_flat = states.probs
        else:
            positions = members.get(group.projection)
            if positions is None:
                continue  # the reference leaves an empty, filtered bucket per outcome
            if len(positions) == 1:
                i = positions[0]
                totals_flat = states.totals[offsets[i] : offsets[i + 1]]
                probs_flat = states.probs[offsets[i] : offsets[i + 1]]
            else:
                totals_flat = np.concatenate(
                    [states.totals[offsets[i] : offsets[i + 1]] for i in positions]
                )
                probs_flat = np.concatenate(
                    [states.probs[offsets[i] : offsets[i + 1]] for i in positions]
                )
        outcome_count = len(group.costs)
        entries = len(totals_flat)
        if entries * outcome_count < _VECTOR_FOLD_MIN_WORK:
            # Tiny group: the reference dict loop beats numpy's fixed costs.
            totals_list = totals_flat.tolist()
            probs_list = probs_flat.tolist()
            added_list = group.added.tolist()
            weights_list = group.weights.tolist()
            for j in range(outcome_count):
                added = added_list[j]
                weight = weights_list[j]
                bucket: dict[float, float] = {}
                get = bucket.get
                for total, prob in zip(totals_list, probs_list):
                    key = total + added
                    bucket[key] = get(key, 0.0) + prob * weight
                position = group.positions[j]
                out_outcomes[position] = group.costs[j]
                out_totals[position] = list(bucket.keys())
                out_probs[position] = list(bucket.values())
            continue
        unique, first_index, inverse = np.unique(
            totals_flat, return_index=True, return_inverse=True
        )
        order = np.argsort(first_index)
        bins = len(unique)
        # Shifted keys stay sorted ascending unless the shift collides.
        keys = unique[None, :] + group.added[:, None]
        scaled = probs_flat[None, :] * group.weights[:, None]
        flat_bins = (
            np.arange(outcome_count, dtype=np.int64)[:, None] * bins + inverse[None, :]
        ).ravel()
        sums = np.bincount(
            flat_bins, weights=scaled.ravel(), minlength=outcome_count * bins
        ).reshape(outcome_count, bins)
        keys_ordered = keys[:, order]
        sums_ordered = sums[:, order]
        collides = (
            (keys[:, 1:] == keys[:, :-1]).any(axis=1)
            if bins > 1
            else np.zeros(outcome_count, dtype=bool)
        )
        if outcome_count == count and not collides.any():
            # One group covering every outcome with uniform support: the
            # ordered rows concatenate into the CSR arrays directly.
            total_entries = outcome_count * bins
            if max_states is None or total_entries <= max_states:
                return ArrayChainStates(
                    group.costs,
                    tuple(range(0, total_entries + 1, bins)),
                    keys_ordered.ravel(),
                    sums_ordered.ravel(),
                )
        for j in range(outcome_count):
            position = group.positions[j]
            out_outcomes[position] = group.costs[j]
            if collides[j]:
                fallback: dict[float, float] = {}
                for key, value in zip(
                    (totals_flat + group.added[j]).tolist(), scaled[j].tolist()
                ):
                    fallback[key] = fallback.get(key, 0.0) + value
                out_totals[position] = list(fallback.keys())
                out_probs[position] = list(fallback.values())
            else:
                out_totals[position] = keys_ordered[j]
                out_probs[position] = sums_ordered[j]
    survivors = [k for k in range(count) if out_totals[k] is not None]
    if not survivors:
        raise PathError(
            "path cost evaluation lost all probability mass; the T-path joints are "
            "mutually inconsistent on their overlaps"
        )
    pieces_totals = [out_totals[k] for k in survivors]
    pieces_probs = [out_probs[k] for k in survivors]
    out_offsets = [0] * (len(survivors) + 1)
    for index, piece in enumerate(pieces_totals):
        out_offsets[index + 1] = out_offsets[index] + len(piece)  # type: ignore[arg-type]
    if max_states is not None and out_offsets[-1] > max_states:
        # State pruning fires (far above any bounded workload's state count):
        # replay the reference step, which folds and prunes in dict form.
        return _states_from_dicts(
            graph.chain_step(_states_to_dicts(states), previous, element, max_states)
        )
    if len(pieces_totals) == 1:
        flat_totals = np.asarray(pieces_totals[0], dtype=float)
        flat_probs = np.asarray(pieces_probs[0], dtype=float)
    elif out_offsets[-1] < 512:
        # Fragmented steps produce dozens of tiny list pieces; extending one
        # flat list and converting once beats np.concatenate's per-piece
        # conversion overhead.
        totals_acc: list[float] = []
        probs_acc: list[float] = []
        for piece_t, piece_p in zip(pieces_totals, pieces_probs):
            totals_acc.extend(piece_t if type(piece_t) is list else piece_t.tolist())
            probs_acc.extend(piece_p if type(piece_p) is list else piece_p.tolist())
        flat_totals = np.asarray(totals_acc, dtype=float)
        flat_probs = np.asarray(probs_acc, dtype=float)
    else:
        flat_totals = np.concatenate(pieces_totals)  # type: ignore[arg-type]
        flat_probs = np.concatenate(pieces_probs)  # type: ignore[arg-type]
    return ArrayChainStates(
        tuple(out_outcomes[k] for k in survivors),  # type: ignore[misc]
        tuple(out_offsets),
        flat_totals,
        flat_probs,
    )


def _finish_states(states: ArrayChainStates, max_support: int | None) -> Distribution:
    """Collapse array chain states, bitwise like ``PaceGraph.finish_chain_states``.

    The CSR layout makes this a single segment sum over the already-flat
    support: the reference's bucket iteration order is the array order.
    """
    totals, sums = _ordered_segment_sum(states.totals, states.probs)
    result = Distribution.from_support_arrays(totals, sums, normalise=True)
    if max_support is not None and len(result) > max_support:
        result = result.compress(max_support)
    return result


# ---------------------------------------------------------------------- #
# T-router kernel: checkpointed PACE evaluation + batched expansion
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChainTrail:
    """A candidate path's full CPS with the chain states after every milestone.

    ``elements[k]`` is the ``k``-th element of the candidate's coarsest
    sequence, ``ends[k]`` the number of leading path edges covered once it is
    appended (the CPS milestone), and ``states[k]`` the
    :meth:`~repro.core.pace_graph.PaceGraph.path_cost_distribution` chain
    states after folding it in.  Successors reuse the longest trail prefix
    that provably survives the extension (see
    :meth:`TExpansionKernel._evaluate`) and chain-step only past it.  States
    are never mutated after capture (each chain step builds fresh arrays),
    so one trail is safely shared by all children.

    Seed candidates carry the empty trail: their first expansion walks the
    one- or two-element CPS from scratch, which is cheaper than eagerly
    evaluating seeds that may never be popped.
    """

    elements: tuple[WeightedElement, ...]
    ends: tuple[int, ...]
    states: tuple[ArrayChainStates, ...]


_EMPTY_TRAIL = ChainTrail((), (), ())


@dataclass(frozen=True)
class TCandidate:
    """A heap entry of the batched T-path router."""

    path: Path
    distribution: Distribution
    #: Sum of minimum edge costs of ``path``, carried incrementally
    #: (parent min + element edge-min) instead of re-summed per expansion.
    min_cost: float
    trail: ChainTrail


class TExpansionKernel:
    """Per-query batched frontier expansion for :class:`HeuristicPaceRouter`."""

    def __init__(
        self,
        graph: PaceGraph,
        accelerator: FrontierAccelerator,
        heuristic: Heuristic,
        budget: float,
        *,
        max_support: int,
    ) -> None:
        self._graph = graph
        self._accel = accelerator
        self._heuristic = heuristic
        self._budget = budget
        self._max_support = max_support
        self._target_min = accelerator.target_min_costs(heuristic)

    def seed(self, source: int) -> list[tuple[float, TCandidate]]:
        """The initial frontier: one candidate per admissible element leaving ``source``."""
        accel = self._accel
        lo, hi = accel.slot_range(source)
        if hi == lo:
            return []
        keep = accel.simple[lo:hi] & ~(
            accel.dist_min[lo:hi] + self._target_min[lo:hi] > self._budget
        )
        slots = np.flatnonzero(keep) + lo
        if len(slots) == 0:
            return []
        values, probabilities, offsets = accel.support_segments(slots)
        priorities = max_prob_segments(
            values, probabilities, offsets, accel.targets[slots], self._heuristic, self._budget
        )
        candidates: list[tuple[float, TCandidate]] = []
        for position, slot in enumerate(slots.tolist()):
            priority = float(priorities[position])
            if priority <= 0:
                continue
            element = accel.elements[slot]
            candidates.append(
                (
                    priority,
                    TCandidate(
                        path=element.path,
                        distribution=element.distribution,
                        min_cost=float(accel.edge_min[slot]),
                        trail=_EMPTY_TRAIL,
                    ),
                )
            )
        return candidates

    def expand(self, candidate: TCandidate) -> list[tuple[float, TCandidate]]:
        """All surviving successors of a popped candidate, in element order."""
        accel = self._accel
        path = candidate.path
        lo, hi = accel.slot_range(path.target)
        if hi == lo:
            return []
        visited = set(path.vertices)
        has_cycle = np.fromiter(
            (
                any(vertex in visited for vertex in accel.inner_vertices[slot])
                for slot in range(lo, hi)
            ),
            dtype=bool,
            count=hi - lo,
        )
        new_min_costs = candidate.min_cost + accel.edge_min[lo:hi]
        keep = ~has_cycle & ~(new_min_costs + self._target_min[lo:hi] > self._budget)
        slots = np.flatnonzero(keep)
        if len(slots) == 0:
            return []
        extended: list[tuple[int, Path, Distribution, ChainTrail]] = []
        for slot in (slots + lo).tolist():
            element = accel.elements[slot]
            new_path = path.concat(element.path)
            distribution, trail = self._evaluate(new_path, path, candidate.trail)
            extended.append((slot, new_path, distribution, trail))
        counts = np.fromiter(
            (len(entry[2]) for entry in extended), dtype=np.int64, count=len(extended)
        )
        offsets = np.zeros(len(extended) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        values = np.concatenate([entry[2].values_array for entry in extended])
        probabilities = np.concatenate([entry[2].probabilities_array for entry in extended])
        priorities = max_prob_segments(
            values,
            probabilities,
            offsets,
            accel.targets[slots + lo],
            self._heuristic,
            self._budget,
        )
        children: list[tuple[float, TCandidate]] = []
        for position, (slot, new_path, distribution, trail) in enumerate(extended):
            priority = float(priorities[position])
            if priority <= 0:
                continue
            children.append(
                (
                    priority,
                    TCandidate(
                        path=new_path,
                        distribution=distribution,
                        min_cost=float(new_min_costs[slot - lo]),
                        trail=trail,
                    ),
                )
            )
        return children

    def _evaluate(
        self, new_path: Path, parent: Path, trail: ChainTrail
    ) -> tuple[Distribution, ChainTrail]:
        """PACE-evaluate ``new_path`` reusing the parent's chain trail.

        Bitwise identical to
        ``graph.path_cost_distribution(new_path, max_support=...)``: the CPS
        greedy is deterministic and Markovian in ``covered``, so whenever a
        prefix of the parent's CPS is provably also the prefix of the
        child's, the child's from-scratch walk would fold exactly those
        elements into exactly those states — we resume after the prefix and
        perform the remaining chain folds verbatim.  Three reuse tiers:

        * **junction fast path** — the only way a CPS element can straddle
          the index where the extension was appended is to contain the two
          junction edges consecutively within its own path; if that pair
          occurs in no T-path (``accel.crossing_pairs``), every greedy
          choice the parent made is unaffected (including candidates the
          parent rejected for overrunning its own end — those would straddle
          too), so the parent's *whole* CPS is the child's CPS prefix;
        * **guaranteed prefix** — otherwise, the choice made at ``covered``
          edges only sees ``edges[:covered + L]``, so trail entries produced
          at ``covered <= len(parent) - L`` survive unconditionally;
        * **verified matches** — deeper entries are compared against the
          re-derived greedy tail; a choice with the same span (milestone end
          and element edges) is the *same* deterministic choice, so its
          states carry over, until the first divergence.
        """
        graph = self._graph
        accel = self._accel
        edges = new_path.edges
        memo_key = (edges, self._max_support)
        memoized = accel.evaluation_get(memo_key)
        if memoized is not None:
            return memoized
        parent_len = len(parent.edges)
        elements = trail.elements
        ends = trail.ends
        reused = -1  # deepest trail index whose milestone/states carry over
        if (
            elements
            and ends[-1] == parent_len
            and (edges[parent_len - 1], edges[parent_len]) not in accel.crossing_pairs
        ):
            reused = len(elements) - 1
        else:
            boundary = parent_len - accel.max_cardinality
            while (
                reused + 1 < len(elements)
                and (ends[reused] if reused >= 0 else 0) <= boundary
            ):
                reused += 1
        covered = ends[reused] if reused >= 0 else 0
        tail = graph.coarsest_tail(edges, covered)
        index = 0
        while (
            index < len(tail)
            and reused + 1 < len(elements)
            and tail[index][1] == ends[reused + 1]
            and tail[index][0].path.edges == elements[reused + 1].path.edges
        ):
            reused += 1
            index += 1
        new_elements = list(elements[: reused + 1])
        new_ends = list(ends[: reused + 1])
        new_states = list(trail.states[: reused + 1])
        states: ArrayChainStates | None = new_states[-1] if new_states else None
        previous = new_elements[-1] if new_elements else None
        for element, end in tail[index:]:
            if states is None:
                states = _seed_states(element)
            else:
                assert previous is not None
                states = _chain_step(
                    graph, accel, states, previous, element, DEFAULT_MAX_CHAIN_STATES
                )
            previous = element
            new_elements.append(element)
            new_ends.append(end)
            new_states.append(states)
        assert states is not None
        distribution = _finish_states(states, self._max_support)
        result = (
            distribution,
            ChainTrail(tuple(new_elements), tuple(new_ends), tuple(new_states)),
        )
        accel.evaluation_put(memo_key, result)
        return result


# ---------------------------------------------------------------------- #
# V-router kernel: batched prune + one maxProb call per expansion
# ---------------------------------------------------------------------- #


class VExpansionKernel:
    """Per-query batched frontier expansion for :class:`VPathRouter`.

    Candidate distributions stay incremental convolutions (Lemma 4.1) and
    dominance admission stays sequential (its outcome depends on admission
    order); the kernel batches everything around them — cycle masking, the
    min-cost budget prune and the Eq. 3 priorities of a whole successor
    slice.
    """

    def __init__(
        self,
        graph: UpdatedPaceGraph,
        accelerator: FrontierAccelerator,
        heuristic: Heuristic,
        budget: float,
        *,
        max_support: int,
        guided: bool,
    ) -> None:
        self._graph = graph
        self._accel = accelerator
        self._heuristic = heuristic
        self._budget = budget
        self._max_support = max_support
        self._guided = guided
        self._target_min = accelerator.target_min_costs(heuristic)

    def seed(self, source: int) -> list[tuple[Path, Distribution, float | None]]:
        """Admissible elements leaving ``source`` with their heap priorities.

        The priority is ``-maxProb`` for guided searches and ``None`` for
        unguided ones (the router orders those by expected cost).
        """
        accel = self._accel
        lo, hi = accel.slot_range(source)
        if hi == lo:
            return []
        keep = accel.simple[lo:hi] & ~(
            accel.dist_min[lo:hi] + self._target_min[lo:hi] > self._budget
        )
        slots = np.flatnonzero(keep) + lo
        if len(slots) == 0:
            return []
        if not self._guided:
            return [
                (accel.elements[slot].path, accel.elements[slot].distribution, None)
                for slot in slots.tolist()
            ]
        values, probabilities, offsets = accel.support_segments(slots)
        priorities = max_prob_segments(
            values, probabilities, offsets, accel.targets[slots], self._heuristic, self._budget
        )
        seeds: list[tuple[Path, Distribution, float | None]] = []
        for position, slot in enumerate(slots.tolist()):
            priority = float(priorities[position])
            if priority <= 0:
                continue
            element = accel.elements[slot]
            seeds.append((element.path, element.distribution, -priority))
        return seeds

    def expand(
        self, path: Path, distribution: Distribution
    ) -> list[tuple[Path, Distribution, float | None]]:
        """All surviving successors of a popped candidate, in element order."""
        accel = self._accel
        lo, hi = accel.slot_range(path.target)
        if hi == lo:
            return []
        visited = set(path.vertices)
        has_cycle = np.fromiter(
            (
                any(vertex in visited for vertex in accel.inner_vertices[slot])
                for slot in range(lo, hi)
            ),
            dtype=bool,
            count=hi - lo,
        )
        minimum = distribution.min() + accel.dist_min[lo:hi]
        keep = ~has_cycle & ~(minimum + self._target_min[lo:hi] > self._budget)
        slots = np.flatnonzero(keep) + lo
        if len(slots) == 0:
            return []
        extended: list[tuple[int, Path, Distribution]] = []
        parent_values = distribution.values_array.tobytes()
        parent_probs = distribution.probabilities_array.tobytes()
        for slot in slots.tolist():
            element = accel.elements[slot]
            new_path = path.concat(element.path)
            memo_key = (parent_values, parent_probs, slot, self._max_support)
            new_distribution = accel.convolution_get(memo_key)
            if new_distribution is None:
                new_distribution = distribution.convolve(
                    element.distribution, max_support=self._max_support
                )
                accel.convolution_put(memo_key, new_distribution)
            extended.append((slot, new_path, new_distribution))
        if not self._guided:
            return [(new_path, new_distribution, None) for _, new_path, new_distribution in extended]
        counts = np.fromiter(
            (len(entry[2]) for entry in extended), dtype=np.int64, count=len(extended)
        )
        offsets = np.zeros(len(extended) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        values = np.concatenate([entry[2].values_array for entry in extended])
        probabilities = np.concatenate([entry[2].probabilities_array for entry in extended])
        bounds = max_prob_segments(
            values, probabilities, offsets, accel.targets[slots], self._heuristic, self._budget
        )
        children: list[tuple[Path, Distribution, float | None]] = []
        for position, (_, new_path, new_distribution) in enumerate(extended):
            bound = float(bounds[position])
            if bound <= 0:
                continue
            children.append((new_path, new_distribution, -bound))
        return children
