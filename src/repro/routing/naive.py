"""The baseline stochastic router in PACE (Algorithm 1, method "T-None").

This is the routing strategy of the original PACE work that the paper sets
out to accelerate: candidate paths are explored from the source in order of
their expected cost, every candidate reaching the destination updates the
best-known arrival probability, and the search only stops when no candidate
is left.  The only pruning available is the budget test — a candidate whose
minimum possible cost already exceeds the budget can never arrive on time —
because stochastic dominance is unsound in plain PACE and no heuristic
estimates the remaining cost.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.pace_graph import PaceGraph
from repro.routing.queries import RoutingQuery, RoutingResult

__all__ = ["NaiveRouterConfig", "NaivePaceRouter"]


@dataclass(frozen=True)
class NaiveRouterConfig:
    """Safety limits for the exhaustive baseline search."""

    max_support: int = 64
    max_explored: int = 100000

    def validate(self) -> None:
        if self.max_support < 1:
            raise ConfigurationError("max_support must be positive")
        if self.max_explored < 1:
            raise ConfigurationError("max_explored must be positive")


class NaivePaceRouter:
    """Algorithm 1: expected-cost ordered exploration without heuristics or dominance."""

    method_name = "T-None"

    def __init__(self, pace_graph: PaceGraph, config: NaiveRouterConfig | None = None):
        self._graph = pace_graph
        self._config = config or NaiveRouterConfig()
        self._config.validate()

    def route(self, query: RoutingQuery) -> RoutingResult:
        """Evaluate one arriving-on-time query."""
        start = time.perf_counter()
        graph = self._graph
        budget = query.budget
        best_prob = 0.0
        best_path = None
        best_distribution = None
        explored = 0
        counter = 0

        heap: list[tuple[float, int, object]] = []
        for element in graph.outgoing_elements(query.source):
            path = element.path
            if not path.is_simple():
                continue
            distribution = element.distribution
            if distribution.min() > budget:
                continue
            counter += 1
            heapq.heappush(heap, (distribution.expectation(), counter, (path, distribution)))

        while heap and explored < self._config.max_explored:
            _, _, (path, distribution) = heapq.heappop(heap)
            explored += 1
            if path.target == query.destination:
                probability = distribution.prob_at_most(budget)
                if probability > best_prob:
                    best_prob = probability
                    best_path = path
                    best_distribution = distribution
                continue
            for element in graph.outgoing_elements(path.target):
                if any(path.visits(v) for v in element.path.vertices[1:]):
                    continue
                new_path = path.concat(element.path)
                if graph.path_min_cost(new_path) > budget:
                    continue
                new_distribution = graph.path_cost_distribution(
                    new_path, max_support=self._config.max_support
                )
                if new_distribution.min() > budget:
                    continue
                counter += 1
                heapq.heappush(
                    heap,
                    (new_distribution.expectation(), counter, (new_path, new_distribution)),
                )

        return RoutingResult(
            query=query,
            method=self.method_name,
            path=best_path,
            probability=best_prob,
            distribution=best_distribution,
            explored=explored,
            runtime_seconds=time.perf_counter() - start,
        )
