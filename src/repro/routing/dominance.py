"""Stochastic-dominance pruning of candidate paths.

Two candidate paths that reach the same intermediate vertex are comparable by
first-order stochastic dominance of their cost distributions: if one is
uniformly more likely to be cheap, the other can never end up with a higher
arrival probability once both are extended by the *same* independent
remainder, and may be pruned (Section 1 and Section 4.2).

The rule requires the remainder's cost to be independent of the candidate's
cost — which holds in the EDGE model and, thanks to V-paths, in the updated
PACE graph (Lemma 4.1), but not in the plain PACE model.  The routing
algorithms therefore only instantiate this pruner where it is sound.

Admission is batched: one new candidate is compared against *all* live
candidates at its vertex in a handful of array operations rather than a
Python loop of pairwise CDF sweeps.  The key reduction: for step CDFs the
supremum of ``F - G`` over the pair's joint support is attained at a support
point of ``F`` (between ``F``'s jumps the difference can only shrink, since
``F`` is flat there while ``G`` may rise).  Dominance of the new candidate
is therefore decided entirely on the new candidate's own support — one grid
shared by every live comparison — and dominance *by* the new candidate on
each live candidate's own support, where that candidate's CDF is already
materialised.  Both directions collapse into one ``searchsorted`` over the
vertex's concatenated live supports (kept hot in per-vertex append-only
buffers) plus segmented any-reductions, and the verdicts are exactly those
of the sequential pairwise loop — which tiny frontiers still take directly,
below a handful of live candidates the array setup costs more than the
sweeps it replaces.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import PROBABILITY_TOLERANCE, Distribution

__all__ = ["DominancePruner"]

#: Frontier entry: candidate id, distribution, and its cached expectation,
#: maximum, support array, and CDF array (the hot fields of every admission).
_Entry = tuple[int, Distribution, float, float, np.ndarray, np.ndarray]

#: Live-set size below which the sequential pairwise sweep beats the batched
#: array setup.
_SMALL_FRONTIER = 4


class _VertexBlock:
    """The live candidates at one vertex, in admission order, as flat arrays.

    Scalar fields (expectation, maximum) and the concatenation of every
    candidate's support and CDF live in amortised-doubling buffers so an
    admission reads them as slices instead of rebuilding them from Python
    tuples; a prune rebuilds the block from the survivors (rare — most
    admissions either append or reject the newcomer).
    """

    __slots__ = ("entries", "exps", "maxs", "starts", "stops", "merged", "cdfs", "tail")

    def __init__(self) -> None:
        self.entries: list[_Entry] = []
        self.exps = np.empty(8, dtype=float)
        self.maxs = np.empty(8, dtype=float)
        self.starts = np.empty(8, dtype=np.intp)
        self.stops = np.empty(8, dtype=np.intp)
        self.merged = np.empty(512, dtype=float)
        self.cdfs = np.empty(512, dtype=float)
        self.tail = 0

    def append(self, entry: _Entry) -> None:
        count = len(self.entries)
        if count == self.exps.size:
            for name in ("exps", "maxs", "starts", "stops"):
                old = getattr(self, name)
                new = np.empty(count * 2, dtype=old.dtype)
                new[:count] = old
                setattr(self, name, new)
        values = entry[4]
        size = values.size
        if self.tail + size > self.merged.size:
            capacity = max(self.merged.size * 2, self.tail + size)
            for name in ("merged", "cdfs"):
                old = getattr(self, name)
                new = np.empty(capacity, dtype=float)
                new[: self.tail] = old[: self.tail]
                setattr(self, name, new)
        self.exps[count] = entry[2]
        self.maxs[count] = entry[3]
        self.starts[count] = self.tail
        self.stops[count] = self.tail + size - 1
        self.merged[self.tail : self.tail + size] = values
        self.cdfs[self.tail : self.tail + size] = entry[5]
        self.tail += size
        self.entries.append(entry)

    def rebuild(self, survivors: list[_Entry]) -> None:
        self.entries = []
        self.tail = 0
        for entry in survivors:
            self.append(entry)


class DominancePruner:
    """Tracks, per frontier vertex, the cost distributions of live candidates.

    Each frontier entry caches the candidate's expectation and maximum cost:
    dominance with the CDF slack of
    :meth:`~repro.core.distributions.Distribution.stochastically_dominates`
    implies ``E[dominator] <= E[dominated] + tol * span`` (integrate
    ``1 - cdf`` over the union of both supports), so a pair whose
    expectations are separated by more than that provably cannot dominate in
    the tested direction and is excluded from the CDF comparison.  The
    prefilter only skips comparisons whose outcome is ``False``; admission
    decisions and counters are unchanged.
    """

    def __init__(self) -> None:
        self._frontier: dict[int, _VertexBlock] = {}
        self._pruned: set[int] = set()
        self._checks = 0
        self._prunes = 0

    @property
    def checks(self) -> int:
        """Number of pairwise dominance checks performed."""
        return self._checks

    @property
    def prunes(self) -> int:
        """Number of candidates discarded by dominance."""
        return self._prunes

    def is_pruned(self, candidate_id: int) -> bool:
        """True when a previously admitted candidate has since been dominated."""
        return candidate_id in self._pruned

    def admit(self, candidate_id: int, vertex: int, distribution: Distribution) -> bool:
        """Try to admit a new candidate that currently ends at ``vertex``.

        Returns ``False`` (and counts a prune) when an existing live candidate
        at the same vertex stochastically dominates the new one.  Existing
        candidates dominated by the new one are marked pruned so the routing
        loop can skip them when they surface from its priority queue.
        """
        entry: _Entry = (
            candidate_id,
            distribution,
            distribution.expectation(),
            distribution.max(),
            distribution.values_array,
            distribution.cdf_array,
        )
        block = self._frontier.get(vertex)
        if block is None:
            block = _VertexBlock()
            self._frontier[vertex] = block
        if not block.entries:
            block.append(entry)
            return True
        if len(block.entries) <= _SMALL_FRONTIER:
            return self._admit_sequential(block, entry)
        return self._admit_batched(block, entry)

    def _admit_sequential(self, block: _VertexBlock, entry: _Entry) -> bool:
        """The pairwise reference sweep; the batched path replicates it."""
        live = block.entries
        _, distribution, expectation, maximum, _, _ = entry
        for index, other in enumerate(live):
            span = other[3] if other[3] > maximum else maximum
            if other[2] - expectation > 2.0 * PROBABILITY_TOLERANCE * span:
                continue
            if other[1].stochastically_dominates(distribution):
                self._checks += index + 1
                self._prunes += 1
                return False
        self._checks += len(live)
        survivors = []
        for other in live:
            span = other[3] if other[3] > maximum else maximum
            if expectation - other[2] <= 2.0 * PROBABILITY_TOLERANCE * span and (
                distribution.stochastically_dominates(other[1], strict=True)
            ):
                self._pruned.add(other[0])
                self._prunes += 1
            else:
                survivors.append(other)
        self._checks += len(live)
        if len(survivors) < len(live):
            block.rebuild(survivors)
        block.append(entry)
        return True

    def _admit_batched(self, block: _VertexBlock, entry: _Entry) -> bool:
        live = block.entries
        count = len(live)
        _, distribution, expectation, maximum, new_values, new_cdf = entry
        slack = 2.0 * PROBABILITY_TOLERANCE * np.maximum(block.maxs[:count], maximum)
        deltas = block.exps[:count] - expectation
        can_dominate_new = deltas <= slack
        can_be_dominated = -deltas <= slack

        merged = block.merged[: block.tail]
        cdfs = block.cdfs[: block.tail]
        offsets = block.starts[:count]

        # Pass 1 — is the new candidate dominated?  ``other`` dominates it
        # unless other's CDF drops more than the tolerance below the new
        # one's somewhere; for step CDFs that deficit peaks at a new-support
        # point, and within each flat run of ``other`` at the *last*
        # new-support point of the run.  So per live segment we compare each
        # cumulative mass against the new CDF just below the segment's next
        # support value — plus the run before other's support (CDF zero) and
        # the run after it (CDF = total mass).
        if can_dominate_new.any():
            stops = block.stops[:count]
            thresholds = distribution.cdf_before_many(merged) - PROBABILITY_TOLERANCE
            fail = np.empty(merged.size, dtype=bool)
            fail[:-1] = cdfs[:-1] < thresholds[1:]
            fail[stops] = cdfs[stops] < new_cdf[-1] - PROBABILITY_TOLERANCE
            row_fail = np.logical_or.reduceat(fail, offsets)
            row_fail |= thresholds[offsets] > 0.0
            winners = np.flatnonzero(can_dominate_new & ~row_fail)
            if winners.size:
                # The sequential loop would have stopped at the first
                # dominator.
                self._checks += int(winners[0]) + 1
                self._prunes += 1
                return False
        self._checks += count

        # Pass 2 — which live candidates does the new one dominate?  Same
        # reduction with the roles swapped: the deficit of the new CDF below
        # a live one peaks at that live candidate's own support, where its
        # CDF needs no lookup at all.  Survivors of the any-deficit test are
        # rare and get the full strict pairwise verdict.
        dominated: set[int] = set()
        if can_be_dominated.any():
            fail = distribution.cdf_many(merged) < cdfs - PROBABILITY_TOLERANCE
            row_fail = np.logical_or.reduceat(fail, offsets)
            for index in np.flatnonzero(can_be_dominated & ~row_fail).tolist():
                if distribution.stochastically_dominates(live[index][1], strict=True):
                    dominated.add(index)
        self._checks += count
        if dominated:
            survivors = []
            for position, other in enumerate(live):
                if position in dominated:
                    self._pruned.add(other[0])
                    self._prunes += 1
                else:
                    survivors.append(other)
            block.rebuild(survivors)
        block.append(entry)
        return True
