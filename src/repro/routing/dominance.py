"""Stochastic-dominance pruning of candidate paths.

Two candidate paths that reach the same intermediate vertex are comparable by
first-order stochastic dominance of their cost distributions: if one is
uniformly more likely to be cheap, the other can never end up with a higher
arrival probability once both are extended by the *same* independent
remainder, and may be pruned (Section 1 and Section 4.2).

The rule requires the remainder's cost to be independent of the candidate's
cost — which holds in the EDGE model and, thanks to V-paths, in the updated
PACE graph (Lemma 4.1), but not in the plain PACE model.  The routing
algorithms therefore only instantiate this pruner where it is sound.
"""

from __future__ import annotations

from repro.core.distributions import Distribution

__all__ = ["DominancePruner"]


class DominancePruner:
    """Tracks, per frontier vertex, the cost distributions of live candidates."""

    def __init__(self) -> None:
        self._frontier: dict[int, list[tuple[int, Distribution]]] = {}
        self._pruned: set[int] = set()
        self._checks = 0
        self._prunes = 0

    @property
    def checks(self) -> int:
        """Number of pairwise dominance checks performed."""
        return self._checks

    @property
    def prunes(self) -> int:
        """Number of candidates discarded by dominance."""
        return self._prunes

    def is_pruned(self, candidate_id: int) -> bool:
        """True when a previously admitted candidate has since been dominated."""
        return candidate_id in self._pruned

    def admit(self, candidate_id: int, vertex: int, distribution: Distribution) -> bool:
        """Try to admit a new candidate that currently ends at ``vertex``.

        Returns ``False`` (and counts a prune) when an existing live candidate
        at the same vertex stochastically dominates the new one.  Existing
        candidates dominated by the new one are marked pruned so the routing
        loop can skip them when they surface from its priority queue.
        """
        live = [
            (other_id, other)
            for other_id, other in self._frontier.get(vertex, [])
            if other_id not in self._pruned
        ]
        for _other_id, other in live:
            self._checks += 1
            if other.stochastically_dominates(distribution):
                self._prunes += 1
                return False
        survivors = []
        for other_id, other in live:
            self._checks += 1
            if distribution.stochastically_dominates(other, strict=True):
                self._pruned.add(other_id)
                self._prunes += 1
            else:
                survivors.append((other_id, other))
        survivors.append((candidate_id, distribution))
        self._frontier[vertex] = survivors
        return True
