"""V-path based stochastic routing (Algorithm 5: V-None, V-B-P, V-BS-δ).

Routing on the updated PACE graph ``G_p+`` differs from the plain PACE
routers in two ways that together give the paper's largest speed-ups:

* candidate cost distributions are maintained *incrementally by convolution*
  — extending a candidate with an edge, T-path or V-path convolves the
  candidate's distribution with the element's total-cost distribution, which
  Lemma 4.1 shows is exact, and
* because the pieces are independent, **stochastic-dominance pruning** among
  candidates ending at the same vertex becomes sound again and is applied on
  every extension.

With a heuristic (V-B-P, V-BS-δ) the search is best-first on ``maxProb`` and
stops when the top of the queue reaches the destination; without one (V-None)
it explores exhaustively in expected-cost order, exactly like the T-None
baseline but with convolution and dominance pruning.

Like the T-path routers, the frontier can be expanded in two result-identical
modes (see :mod:`repro.routing.accel`): ``"batched"`` (the default) masks
cycles, applies the budget prune and prices Eq. 3 for a popped candidate's
whole successor slice in bulk ndarray ops, while ``"scalar"`` keeps the
per-element loop.  Dominance admission stays sequential in both modes — its
outcome depends on admission order — and candidate distributions stay
incremental convolutions either way.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.distributions import Distribution
from repro.core.errors import ConfigurationError
from repro.core.paths import Path
from repro.heuristics.base import Heuristic, NoHeuristic, max_prob
from repro.routing.accel import VExpansionKernel, accelerator_for
from repro.routing.dominance import DominancePruner
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = ["VPathRouterConfig", "VPathRouter"]

VPathHeuristicFactory = Callable[[UpdatedPaceGraph, int], Heuristic]

_EXPANSION_MODES = ("batched", "scalar")


@dataclass(frozen=True)
class VPathRouterConfig:
    """Limits and knobs of the V-path router.

    ``reevaluate_with_pace`` controls whether the returned path's distribution
    and probability are re-computed under exact PACE semantics (coarsest
    T-path assembly) before being reported.  The search itself always follows
    Algorithm 5 — candidates are maintained by convolution of element weights
    — but a candidate may correspond to a finer-than-coarsest decomposition of
    its underlying road path, in which case the convolution estimate differs
    slightly from the PACE cost of that path; re-evaluating makes the reported
    numbers directly comparable with the T-path routers.
    """

    max_support: int = 64
    max_explored: int = 100000
    use_dominance: bool = True
    reevaluate_with_pace: bool = True
    expansion: str = "batched"

    def validate(self) -> None:
        if self.max_support < 1:
            raise ConfigurationError("max_support must be positive")
        if self.max_explored < 1:
            raise ConfigurationError("max_explored must be positive")
        if self.expansion not in _EXPANSION_MODES:
            raise ConfigurationError(
                f"expansion must be one of {_EXPANSION_MODES}, got {self.expansion!r}"
            )


class VPathRouter:
    """Algorithm 5 on the updated PACE graph, with optional heuristic guidance."""

    def __init__(
        self,
        graph: UpdatedPaceGraph,
        heuristic_factory: VPathHeuristicFactory | None = None,
        *,
        method_name: str | None = None,
        config: VPathRouterConfig | None = None,
        pin_heuristics: bool = True,
    ):
        self._graph = graph
        self._factory = heuristic_factory
        self.method_name = method_name or ("V-None" if heuristic_factory is None else "V-heuristic")
        self._config = config or VPathRouterConfig()
        self._config.validate()
        self._pin_heuristics = pin_heuristics
        self._heuristics: dict[int, Heuristic] = {}

    # ------------------------------------------------------------------ #
    # Heuristic management
    # ------------------------------------------------------------------ #
    def heuristic_for(self, destination: int) -> Heuristic:
        """The cached destination-specific heuristic (trivial for V-None).

        With ``pin_heuristics=False`` a guided router holds no references of
        its own and consults the factory every time — the mode a
        byte-budgeted engine cache uses, so an evicted table's memory is
        actually reclaimed instead of staying pinned here.  V-None's trivial
        heuristics are always pinned; they hold no tables.
        """
        if self._factory is None:
            if destination not in self._heuristics:
                self._heuristics[destination] = NoHeuristic(destination)
            return self._heuristics[destination]
        if not self._pin_heuristics:
            return self._factory(self._graph, destination)
        if destination not in self._heuristics:
            self._heuristics[destination] = self._factory(self._graph, destination)
        return self._heuristics[destination]

    @property
    def guided(self) -> bool:
        """True when an informative heuristic guides the search (early stop allowed)."""
        return self._factory is not None

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, query: RoutingQuery) -> RoutingResult:
        """Evaluate one arriving-on-time query on the updated PACE graph."""
        start = time.perf_counter()
        graph = self._graph
        budget = query.budget
        heuristic = self.heuristic_for(query.destination)
        pruner = DominancePruner() if self._config.use_dominance else None
        candidate_ids = itertools.count()
        explored = 0
        heap: list[tuple[float, int, Path, Distribution]] = []
        kernel: VExpansionKernel | None = None
        if self._config.expansion == "batched":
            kernel = VExpansionKernel(
                graph,
                accelerator_for(graph),
                heuristic,
                budget,
                max_support=self._config.max_support,
                guided=self.guided,
            )

        def priority_of(path: Path, distribution: Distribution) -> float:
            if self.guided:
                return -max_prob(distribution, heuristic, path.target, budget)
            return distribution.expectation()

        def push(path: Path, distribution: Distribution, priority: float | None = None) -> None:
            candidate_id = next(candidate_ids)
            if pruner is not None and not pruner.admit(candidate_id, path.target, distribution):
                return
            if priority is None:
                priority = priority_of(path, distribution)
            heapq.heappush(heap, (priority, candidate_id, path, distribution))

        if kernel is not None:
            for path, distribution, priority in kernel.seed(query.source):
                push(path, distribution, priority)
        else:
            for element in graph.outgoing_elements(query.source):
                path = element.path
                if not path.is_simple():
                    continue
                if element.distribution.min() + heuristic.min_cost(path.target) > budget:
                    continue
                if (
                    self.guided
                    and max_prob(element.distribution, heuristic, path.target, budget) <= 0
                ):
                    continue
                push(path, element.distribution)

        best_path = None
        best_prob = 0.0
        best_distribution = None
        while heap and explored < self._config.max_explored:
            _, candidate_id, path, distribution = heapq.heappop(heap)
            if pruner is not None and pruner.is_pruned(candidate_id):
                continue
            explored += 1
            if path.target == query.destination:
                probability = distribution.prob_at_most(budget)
                if self.guided:
                    best_path, best_prob, best_distribution = path, probability, distribution
                    break
                if probability > best_prob:
                    best_path, best_prob, best_distribution = path, probability, distribution
                continue
            if kernel is not None:
                for new_path, new_distribution, priority in kernel.expand(path, distribution):
                    push(new_path, new_distribution, priority)
                continue
            for element in graph.outgoing_elements(path.target):
                if any(path.visits(v) for v in element.path.vertices[1:]):
                    continue
                minimum = distribution.min() + element.distribution.min()
                if minimum + heuristic.min_cost(element.target) > budget:
                    continue
                new_path = path.concat(element.path)
                new_distribution = distribution.convolve(
                    element.distribution, max_support=self._config.max_support
                )
                if self.guided:
                    bound = max_prob(new_distribution, heuristic, new_path.target, budget)
                    if bound <= 0:
                        continue
                push(new_path, new_distribution)

        if best_path is not None and self._config.reevaluate_with_pace:
            best_distribution = graph.pace_graph.path_cost_distribution(
                best_path, max_support=self._config.max_support
            )
            best_prob = best_distribution.prob_at_most(budget)

        runtime = time.perf_counter() - start
        return RoutingResult(
            query=query,
            method=self.method_name,
            path=best_path,
            probability=best_prob,
            distribution=best_distribution,
            explored=explored,
            runtime_seconds=runtime,
        )
