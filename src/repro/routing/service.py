"""The typed serving API: wire-format requests/responses and the service facade.

A :class:`~repro.routing.engine.RoutingEngine` answers with rich in-process
objects (:class:`~repro.routing.queries.RoutingResult` holding live
:class:`~repro.core.paths.Path` / :class:`~repro.core.distributions.Distribution`
instances) and signals problems with exceptions — the right shape *inside* a
process, and the wrong one at a service boundary.  This module is that
boundary:

* :class:`RouteRequest` / :class:`RouteResponse` — frozen dataclasses with
  strict-JSON ``to_dict`` / ``from_dict`` round-trips (same conventions as
  :mod:`repro.persistence.codecs`: plain floats, no NaN, unknown keys
  rejected), the batch format of the CLI's ``route-batch`` JSONL command,
* a structured error taxonomy (:data:`ERROR_CODES`) replacing bare
  exceptions and ``found`` flags: every failure mode a caller can act on has
  a stable code, and
* :class:`RoutingService` — the request/response facade over an engine; it
  validates, routes (optionally batched over any execution backend), and maps
  every outcome onto a response instead of leaking exceptions.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.core.distributions import Distribution
from repro.core.errors import (
    ConfigurationError,
    DataError,
    NoPathError,
    UnknownVertexError,
)
from repro.persistence.codecs import distribution_from_dict, distribution_to_dict
from repro.routing.backends import ExecutionBackend
from repro.routing.dijkstra import shortest_path_cost
from repro.routing.engine import EngineStats, RoutingEngine
from repro.routing.methods import MethodSpec
from repro.routing.queries import RoutingQuery, RoutingResult

__all__ = [
    "ERROR_CODES",
    "RouteError",
    "RouteRequest",
    "RouteResponse",
    "RoutingService",
]

#: The stable error taxonomy of the serving API.
#:
#: ``invalid_request``  — the payload is malformed or the query parameters are
#:                        inconsistent (equal endpoints, non-positive budget),
#: ``invalid_method``   — the routing method name/spec does not exist,
#: ``unknown_vertex``   — source or destination is not in the served graph,
#: ``not_found``        — the destination is unreachable from the source,
#: ``budget_exceeded``  — the destination is reachable, but no path arrived
#:                        within the requested budget,
#: ``overloaded``       — the server's admission queue is full; the request was
#:                        rejected *before* routing and should be retried after
#:                        the ``retry_after_ms`` hint,
#: ``deadline_exceeded``— the request's deadline budget expired before a result
#:                        was produced; any late result is discarded,
#: ``internal``         — an unexpected failure while routing.
ERROR_CODES = (
    "invalid_request",
    "invalid_method",
    "unknown_vertex",
    "not_found",
    "budget_exceeded",
    "overloaded",
    "deadline_exceeded",
    "internal",
)


@dataclass(frozen=True)
class RouteError:
    """A structured serving failure: a taxonomy code plus a human-readable message.

    ``retry_after_ms`` is the backpressure hint attached to ``overloaded``
    rejections: how long a well-behaved caller should wait before retrying.
    It is ``None`` (and omitted from the wire form) for every other code.
    """

    code: str
    message: str
    retry_after_ms: int | None = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ConfigurationError(
                f"unknown error code {self.code!r}; choose from {ERROR_CODES}"
            )
        if self.retry_after_ms is not None and (
            isinstance(self.retry_after_ms, bool)
            or not isinstance(self.retry_after_ms, int)
            or self.retry_after_ms < 0
        ):
            raise ConfigurationError(
                f"retry_after_ms must be a non-negative integer, got {self.retry_after_ms!r}"
            )

    def to_dict(self) -> dict:
        payload: dict[str, object] = {"code": self.code, "message": self.message}
        if self.retry_after_ms is not None:
            payload["retry_after_ms"] = self.retry_after_ms
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RouteError":
        try:
            retry_after = payload.get("retry_after_ms")
            if retry_after is not None and (
                isinstance(retry_after, bool) or not isinstance(retry_after, int)
            ):
                raise DataError(
                    f"route error 'retry_after_ms' must be an integer, got {retry_after!r}"
                )
            return cls(
                code=payload["code"],
                message=str(payload["message"]),
                retry_after_ms=retry_after,
            )
        except (KeyError, TypeError) as exc:
            raise DataError(f"malformed route error payload: {exc}") from exc


def _strict_vertex(name: str, value: object) -> int:
    """A JSON vertex id must be an actual integer — no floats, bools or strings.

    ``int(4.9)`` would silently route from vertex 4; a strict boundary
    rejects the request instead.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise DataError(f"route request {name!r} must be an integer vertex id, got {value!r}")
    return value


def _strict_number(name: str, value: object) -> float:
    """A JSON number (int or float), finite; bools and numeric strings rejected."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DataError(f"route request {name!r} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise DataError(f"route request {name!r} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class RouteRequest:
    """One arriving-on-time request as it crosses the service boundary.

    The semantic fields mirror :class:`~repro.routing.queries.RoutingQuery`;
    ``method`` optionally overrides the service's default method for this
    request, and ``request_id`` is an opaque caller token echoed back on the
    response (how JSONL batch callers correlate answers).  ``deadline_ms``
    optionally caps how long the *server* may spend on this request (the
    serving tier enforces it; see :mod:`repro.serving`) — expired requests
    answer ``deadline_exceeded`` instead of arriving late.
    """

    source: int
    destination: int
    budget: float
    departure_time: float = 8 * 3600.0
    method: str | None = None
    request_id: str | None = None
    deadline_ms: float | None = None

    _FIELDS = (
        "source",
        "destination",
        "budget",
        "departure_time",
        "method",
        "request_id",
        "deadline_ms",
    )

    def to_query(self) -> RoutingQuery:
        """The in-process query; raises ``ConfigurationError`` on invalid parameters."""
        return RoutingQuery(
            source=self.source,
            destination=self.destination,
            budget=self.budget,
            departure_time=self.departure_time,
        )

    def to_dict(self) -> dict:
        payload: dict[str, object] = {
            "source": self.source,
            "destination": self.destination,
            "budget": self.budget,
            "departure_time": self.departure_time,
        }
        if self.method is not None:
            payload["method"] = self.method
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RouteRequest":
        """Strict decode: unknown keys, wrong types and non-finite numbers are rejected."""
        if not isinstance(payload, dict):
            raise DataError(
                f"route request must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise DataError(f"unknown route request fields: {sorted(unknown)}")
        try:
            source = _strict_vertex("source", payload["source"])
            destination = _strict_vertex("destination", payload["destination"])
            budget = _strict_number("budget", payload["budget"])
            departure_time = _strict_number(
                "departure_time", payload.get("departure_time", 8 * 3600.0)
            )
        except KeyError as exc:
            raise DataError(f"route request is missing field {exc}") from exc
        method = payload.get("method")
        if method is not None and not isinstance(method, str):
            raise DataError("route request 'method' must be a string")
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            raise DataError("route request 'request_id' must be a string")
        deadline_ms: float | None = None
        if payload.get("deadline_ms") is not None:
            deadline_ms = _strict_number("deadline_ms", payload["deadline_ms"])
            if deadline_ms <= 0:
                raise DataError(
                    f"route request 'deadline_ms' must be positive, got {deadline_ms!r}"
                )
        return cls(
            source=source,
            destination=destination,
            budget=budget,
            departure_time=departure_time,
            method=method,
            request_id=request_id,
            deadline_ms=deadline_ms,
        )


@dataclass(frozen=True)
class RouteResponse:
    """The wire form of one routing outcome.

    Exactly one of the two shapes holds: ``ok`` with the route payload
    (vertices, edges, arrival probability, optional cost distribution), or
    ``not ok`` with a structured :class:`RouteError`.  ``request_id`` echoes
    the request's token; ``method`` is always the canonical method name that
    was (or would have been) used.
    """

    ok: bool
    method: str | None = None
    request_id: str | None = None
    error: RouteError | None = None
    probability: float = 0.0
    path_vertices: tuple[int, ...] | None = None
    path_edges: tuple[int, ...] | None = None
    distribution: Distribution | None = None
    explored: int = 0
    runtime_seconds: float = 0.0

    @classmethod
    def from_result(
        cls,
        result: RoutingResult,
        *,
        request_id: str | None = None,
        error: RouteError | None = None,
    ) -> "RouteResponse":
        """Wrap an in-process :class:`RoutingResult` (found or not) for the wire."""
        if result.path is None:
            if error is None:
                error = RouteError(
                    code="not_found",
                    message=(
                        f"no path from {result.query.source} to {result.query.destination} "
                        f"within budget {result.query.budget:g}"
                    ),
                )
            return cls(
                ok=False,
                method=result.method,
                request_id=request_id,
                error=error,
                explored=result.explored,
                runtime_seconds=result.runtime_seconds,
            )
        return cls(
            ok=True,
            method=result.method,
            request_id=request_id,
            probability=result.probability,
            path_vertices=result.path.vertices,
            path_edges=result.path.edges,
            distribution=result.distribution,
            explored=result.explored,
            runtime_seconds=result.runtime_seconds,
        )

    @classmethod
    def failure(
        cls, code: str, message: str, *, method: str | None = None, request_id: str | None = None
    ) -> "RouteResponse":
        """A response for a request that never produced a routing result."""
        return cls(
            ok=False, method=method, request_id=request_id, error=RouteError(code, message)
        )

    def to_dict(self) -> dict:
        payload: dict = {"ok": self.ok, "method": self.method}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.ok:
            payload.update(
                {
                    "probability": float(self.probability),
                    "path_vertices": list(self.path_vertices or ()),
                    "path_edges": list(self.path_edges or ()),
                    "explored": self.explored,
                    "runtime_seconds": float(self.runtime_seconds),
                }
            )
            if self.distribution is not None:
                payload["distribution"] = distribution_to_dict(self.distribution)
        else:
            assert self.error is not None
            payload["error"] = self.error.to_dict()
            payload["explored"] = self.explored
            payload["runtime_seconds"] = float(self.runtime_seconds)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RouteResponse":
        """Strict decode of :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise DataError(
                f"route response must be a JSON object, got {type(payload).__name__}"
            )
        try:
            ok = bool(payload["ok"])
            if ok:
                return cls(
                    ok=True,
                    method=payload.get("method"),
                    request_id=payload.get("request_id"),
                    probability=float(payload["probability"]),
                    path_vertices=tuple(int(v) for v in payload["path_vertices"]),
                    path_edges=tuple(int(e) for e in payload["path_edges"]),
                    distribution=(
                        distribution_from_dict(payload["distribution"])
                        if "distribution" in payload
                        else None
                    ),
                    explored=int(payload.get("explored", 0)),
                    runtime_seconds=float(payload.get("runtime_seconds", 0.0)),
                )
            return cls(
                ok=False,
                method=payload.get("method"),
                request_id=payload.get("request_id"),
                error=RouteError.from_dict(payload["error"]),
                explored=int(payload.get("explored", 0)),
                runtime_seconds=float(payload.get("runtime_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed route response: {exc}") from exc


@dataclass
class _Prepared:
    """One request after validation: either a routable query or an early error."""

    request: RouteRequest
    method: MethodSpec | None = None
    query: RoutingQuery | None = None
    error: RouteError | None = None
    method_name: str | None = None


class RoutingService:
    """Request/response serving facade over one :class:`RoutingEngine`.

    The service is the layer a transport (CLI batch file, HTTP handler, queue
    consumer) talks to: it accepts :class:`RouteRequest` objects or raw
    payload dicts, validates them against the engine's graph, routes them —
    in batches over any :mod:`execution backend <repro.routing.backends>` —
    and always answers with a :class:`RouteResponse`, never an exception.
    """

    def __init__(
        self, engine: RoutingEngine, *, default_method: str | MethodSpec = "V-BS-60"
    ) -> None:
        self._engine = engine
        self._default_method = MethodSpec.coerce(default_method)
        # Degradation counters: how often a batch backend failed as a unit and
        # how many requests were re-routed through the in-process fallback.
        # Without these a dying worker pool is invisible to operators — the
        # fallback keeps answering, just slower (the PR 3 silent-degradation
        # gap).  Guarded by the stats lock; see stats().
        self._stats_lock = threading.Lock()
        self._backend_failures = 0
        self._fallback_queries = 0

    @property
    def engine(self) -> RoutingEngine:
        return self._engine

    @property
    def default_method(self) -> MethodSpec:
        return self._default_method

    def stats(self) -> EngineStats:
        """The engine's serving counters and provenance.

        The returned :class:`~repro.routing.engine.EngineStats` includes the
        engine's origin record (``provenance``) — for an artifact-booted
        engine, the store path, the graph content fingerprints and the build
        metadata — so an operator can always answer *which* offline build a
        service is serving from.  ``backend_failures`` / ``fallback_queries``
        are this service's degradation counters: batches whose execution
        backend failed as a unit (e.g. a ``BrokenProcessPool``) and the
        requests that were re-routed through the in-process fallback — the
        signal that a worker pool is dying even though every request still
        gets an answer.
        """
        with self._stats_lock:
            backend_failures = self._backend_failures
            fallback_queries = self._fallback_queries
        return replace(
            self._engine.stats(),
            backend_failures=backend_failures,
            fallback_queries=fallback_queries,
        )

    def _count_fallback(self, queries: int) -> None:
        with self._stats_lock:
            self._backend_failures += 1
            self._fallback_queries += queries

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _prepare(self, raw: RouteRequest | dict) -> _Prepared:
        if isinstance(raw, RouteRequest):
            request = raw
        else:
            try:
                request = RouteRequest.from_dict(raw)
            except DataError as exc:
                request_id = raw.get("request_id") if isinstance(raw, dict) else None
                placeholder = RouteRequest(
                    source=0,
                    destination=0,
                    budget=0.0,
                    request_id=request_id if isinstance(request_id, str) else None,
                )
                return _Prepared(
                    request=placeholder,
                    error=RouteError("invalid_request", str(exc)),
                )
        prepared = _Prepared(request=request)
        try:
            prepared.method = (
                MethodSpec.coerce(request.method)
                if request.method is not None
                else self._default_method
            )
        except ConfigurationError as exc:
            prepared.error = RouteError("invalid_method", str(exc))
            return prepared
        prepared.method_name = prepared.method.canonical_name
        network = self._engine.pace_graph.network
        for role, vertex in (("source", request.source), ("destination", request.destination)):
            if not network.has_vertex(vertex):
                prepared.error = RouteError(
                    "unknown_vertex", f"{role} vertex {vertex} is not in the served network"
                )
                return prepared
        try:
            prepared.query = request.to_query()
        except ConfigurationError as exc:
            prepared.error = RouteError("invalid_request", str(exc))
            return prepared
        # Budget-table methods can only answer budgets their Eq. 5 tables
        # cover; beyond max_budget the residual-budget lookup would clamp to
        # the table's last column and under-estimate (inadmissible bounds),
        # silently degrading the answer.  Reject instead of serving wrong.
        max_budget = self._engine.settings.max_budget
        if prepared.method.heuristic == "budget" and request.budget > max_budget:
            prepared.error = RouteError(
                "invalid_request",
                f"budget {request.budget:g} exceeds this engine's heuristic-table "
                f"coverage (max_budget {max_budget:g}); serve with a larger "
                "max_budget or use a binary-heuristic method",
            )
        return prepared

    def _classify_miss(self, result: RoutingResult) -> RouteError:
        """Why did the search return no path?  Distinguish unreachable from over-budget."""
        query = result.query
        network = self._engine.pace_graph.network
        edge_graph = self._engine.pace_graph.edge_graph
        try:
            min_cost = shortest_path_cost(
                network,
                query.source,
                query.destination,
                lambda edge: edge_graph.min_cost(edge.edge_id),
            )
        except NoPathError:
            return RouteError(
                "not_found",
                f"destination {query.destination} is unreachable from source {query.source}",
            )
        if min_cost > query.budget:
            message = (
                f"even the cheapest possible path costs at least {min_cost:g}, "
                f"above the budget {query.budget:g}"
            )
        else:
            message = (
                f"no explored path arrived within budget {query.budget:g} "
                f"({result.explored} candidates searched)"
            )
        return RouteError("budget_exceeded", message)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def handle(self, request: RouteRequest | dict) -> RouteResponse:
        """Answer one request; every failure mode becomes a structured response."""
        return self.handle_batch([request])[0]

    def handle_batch(
        self,
        requests: Sequence[RouteRequest | dict],
        *,
        backend: ExecutionBackend | None = None,
    ) -> list[RouteResponse]:
        """Answer a batch, in input order, optionally over an execution backend.

        Valid requests are routed together (grouped per method so each
        :meth:`RoutingEngine.route_many` batch stays destination-coherent);
        invalid ones answer immediately with their taxonomy error and never
        reach the engine.
        """
        prepared = [self._prepare(raw) for raw in requests]
        responses: list[RouteResponse | None] = [None] * len(prepared)
        # Grouped as (input position, query) pairs so the batch below carries
        # its own non-optional queries instead of re-indexing into `prepared`.
        routable: dict[str, list[tuple[int, RoutingQuery]]] = {}
        for index, item in enumerate(prepared):
            if item.error is None and item.method_name is not None and item.query is not None:
                routable.setdefault(item.method_name, []).append((index, item.query))
            else:
                responses[index] = RouteResponse(
                    ok=False,
                    method=item.method_name,
                    request_id=item.request.request_id,
                    error=item.error,
                )
        for method_name, batch in routable.items():
            indices = [index for index, _ in batch]
            queries = [query for _, query in batch]
            try:
                results = self._engine.route_many(queries, method=method_name, backend=backend)
            except UnknownVertexError as exc:
                # Vertices were validated up front, but a worker may race a
                # graph swap; degrade to per-request errors rather than raise.
                for i in indices:
                    responses[i] = RouteResponse.failure(
                        "unknown_vertex", str(exc),
                        method=method_name, request_id=prepared[i].request.request_id,
                    )
                continue
            except Exception:  # noqa: BLE001 - service boundary: never leak exceptions
                # The batch failed as a unit — one poisoned query, or an
                # infrastructure failure such as a BrokenProcessPool from a
                # worker that died initialising.  Re-route each request
                # individually in-process so only the culprit answers with an
                # error; the contract is a response per request.  Count the
                # failure and the fallback volume so the degradation shows up
                # in stats() instead of passing silently.
                self._count_fallback(len(batch))
                for i, query in batch:
                    try:
                        result = self._engine.route(query, method=method_name)
                    except Exception as exc:  # noqa: BLE001
                        responses[i] = RouteResponse.failure(
                            "internal", f"routing failed: {exc}",
                            method=method_name, request_id=prepared[i].request.request_id,
                        )
                    else:
                        error = (
                            None if result.path is not None else self._classify_miss(result)
                        )
                        responses[i] = RouteResponse.from_result(
                            result,
                            request_id=prepared[i].request.request_id,
                            error=error,
                        )
                continue
            for i, result in zip(indices, results):
                error = None if result.path is not None else self._classify_miss(result)
                responses[i] = RouteResponse.from_result(
                    result, request_id=prepared[i].request.request_id, error=error
                )
        return responses  # type: ignore[return-value]
